//! Server bench — streaming ingest and loopback HTTP query throughput.
//!
//! For every size in `SERVER_SIZES` (default `10000,100000`) this boots a
//! real daemon (ephemeral port, long tick interval so the recompute thread
//! stays out of the timed windows) and measures:
//!
//! 1. `ingest_{n}_seconds`: wall time for the ingest thread to tail,
//!    parse, and apply a pre-rendered JSONL batch (edge/profile bootstrap
//!    plus five ratings per sampled rater) appended to the log in one
//!    write — the daemon's end-to-end ingest path. The informational
//!    `ingest_{n}_events_per_sec` is the same number as a rate.
//!
//! 2. `query_{n}_seconds`: wall time for `QUERIES` sequential
//!    `GET /score/{node}` requests over **one keep-alive connection**
//!    (reconnecting transparently if the server retires it at the
//!    per-connection request cap), after one forced tick published a
//!    board. This is the primary query-plane cell the ISSUE's ≥10×
//!    target applies to; `query_{n}_requests_per_sec` is informational.
//!
//! 3. `query_close_{n}_seconds`: the PR-8 shape — one fresh connection
//!    per request (`Connection: close`) — kept as the comparison cell
//!    for the keep-alive win.
//!
//! 4. `query_c4_{n}_seconds` / `query_c16_{n}_seconds`: `CONC_QUERIES`
//!    requests spread over 4 / 16 concurrent keep-alive connections
//!    (one thread each), exercising the workers' `poll(2)` loops with
//!    many live sockets.
//!
//! 5. `query_norec_{n}_seconds`: the recorder-overhead pair. The same
//!    keep-alive loop runs against the primary daemon (default 250 ms
//!    flight recorder) and against a second daemon whose recorder is
//!    effectively off (1-hour sampling interval), warmed to the same
//!    substrate via `--replay`. Because the bound being checked is
//!    small (< 5%), this pair uses its own longer window —
//!    `OVERHEAD_QUERIES` requests, warmed up, best of
//!    `OVERHEAD_ROUNDS` — instead of the short cell-2 loop. The
//!    reported key is the recorder-off side; the informational
//!    `recorder_overhead_{n}_percent` is the relative cost of the
//!    recorder on the query plane (the PR-10 acceptance bound is < 5%).
//!
//! Results land in `BENCH_server.json` (override with `BENCH_SERVER_OUT`);
//! `_seconds` keys are gated by `scripts/bench_diff.sh`. `--test` is
//! accepted for CLI uniformity; CI smoke shrinks via `SERVER_SIZES=10000`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use socialtrust_server::event::{render_event, RelKind, ServerEvent};
use socialtrust_server::service::ServiceConfig;
use socialtrust_server::{start, ServerConfig};

const QUERIES: usize = 2000;
const CONC_QUERIES: usize = 8000;
/// The recorder-overhead pair discriminates a < 5% delta, so it gets a
/// much longer timed window than the throughput cells (~200 ms per
/// round at loopback rates) plus warmup and best-of-rounds.
const OVERHEAD_QUERIES: usize = 20_000;
const OVERHEAD_WARMUP: usize = 2_000;
const OVERHEAD_ROUNDS: usize = 3;

/// Deterministic event batch: a ring of friendships, sparse interest
/// profiles, and five ratings per sampled rater.
fn event_batch(n: usize) -> Vec<ServerEvent> {
    let mut events = Vec::new();
    for k in 0..n {
        events.push(ServerEvent::EdgeAdd {
            a: k as u32,
            b: ((k + 1) % n) as u32,
            rel: match k % 3 {
                0 => RelKind::Friend,
                1 => RelKind::Colleague,
                _ => RelKind::Kin,
            },
        });
    }
    for k in (0..n).step_by(16) {
        events.push(ServerEvent::Profile {
            node: k as u32,
            declare: vec![(k % 40) as u16, ((k + 11) % 40) as u16],
            requests: vec![((k % 40) as u16, 3)],
        });
    }
    let raters = (n / 500).clamp(50, 2000).min(n);
    let stride = (n / raters).max(1);
    for r in 0..raters {
        let rater = (r * stride) % n;
        for j in 1..=5 {
            let ratee = (rater + j * 17 + 1) % n;
            if ratee == rater {
                continue;
            }
            events.push(ServerEvent::Rating {
                rater: rater as u32,
                ratee: ratee as u32,
                value: if (rater + j).is_multiple_of(10) {
                    -1.0
                } else {
                    1.0
                },
                interest: Some(((rater + j) % 40) as u16),
            });
        }
    }
    events
}

/// One-shot client: fresh connection, explicit `Connection: close`.
fn http_get_close(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// A keep-alive client: sequential requests on one persistent
/// connection, parsing `Content-Length` to frame responses, and
/// reconnecting transparently when the server retires the connection
/// (idle timeout or per-connection request cap).
struct KeepAliveClient {
    addr: SocketAddr,
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect keep-alive client");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        KeepAliveClient {
            addr,
            stream,
            buf: Vec::new(),
        }
    }

    fn reconnect(&mut self) {
        *self = KeepAliveClient::connect(self.addr);
    }

    /// Issue one GET and return the full response (head + body). Panics
    /// on malformed responses; reconnects and retries once if the server
    /// closed the connection between requests.
    fn get(&mut self, target: &str) -> String {
        match self.try_get(target) {
            Some(response) => response,
            None => {
                self.reconnect();
                self.try_get(target).expect("request after reconnect")
            }
        }
    }

    fn try_get(&mut self, target: &str) -> Option<String> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n");
        if self.stream.write_all(request.as_bytes()).is_err() {
            return None;
        }
        // Read until the head terminator, then exactly the body.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // server closed (cap/idle); caller reconnects
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .expect("utf-8 head")
            .to_owned();
        let content_length: usize = head
            .split("\r\n")
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("content-length"))
            })
            .expect("response has content-length");
        while self.buf.len() < head_end + content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        }
        let response: Vec<u8> = self.buf.drain(..head_end + content_length).collect();
        let closing = head
            .split("\r\n")
            .any(|l| l.eq_ignore_ascii_case("connection: close"));
        if closing {
            self.reconnect();
        }
        Some(String::from_utf8(response).expect("utf-8 response"))
    }
}

struct SizeReport {
    n: usize,
    events: usize,
    ingest: f64,
    query: f64,
    query_close: f64,
    query_c4: f64,
    query_c16: f64,
    query_rec: f64,
    query_norec: f64,
}

/// The recorder-overhead measurement loop: one keep-alive connection,
/// `OVERHEAD_WARMUP` untimed requests, then the best (minimum) of
/// `OVERHEAD_ROUNDS` timed rounds of `OVERHEAD_QUERIES` requests each.
/// Min-of-rounds suppresses scheduler noise, which would otherwise
/// swamp a single-digit-percent delta.
fn overhead_cell(addr: SocketAddr, n: usize) -> f64 {
    let mut client = KeepAliveClient::connect(addr);
    for k in 0..OVERHEAD_WARMUP {
        let node = (k * 37) % n;
        let response = client.get(&format!("/score/{node}"));
        std::hint::black_box(&response);
    }
    let mut best = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        let started = Instant::now();
        for k in 0..OVERHEAD_QUERIES {
            let node = (k * 37) % n;
            let response = client.get(&format!("/score/{node}"));
            std::hint::black_box(&response);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// `total` sequential keep-alive requests spread over `clients` threads.
fn run_concurrent(addr: SocketAddr, n: usize, clients: usize, total: usize) -> f64 {
    let per_client = total / clients;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                for k in 0..per_client {
                    let node = (c * 7919 + k * 37) % n;
                    let response = client.get(&format!("/score/{node}"));
                    std::hint::black_box(&response);
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

fn bench_size(n: usize) -> SizeReport {
    let dir = std::env::temp_dir().join(format!("st-server-bench-{n}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let log_path = dir.join("events.jsonl");
    std::fs::write(&log_path, b"").expect("create log");

    let events = event_batch(n);
    let mut payload = String::with_capacity(events.len() * 48);
    for event in &events {
        payload.push_str(&render_event(event));
        payload.push('\n');
    }

    let handle = start(ServerConfig {
        log_path: log_path.clone(),
        listen: "127.0.0.1:0".to_owned(),
        service: ServiceConfig {
            nodes: n,
            interests: 40,
            pretrusted: 32.min(n),
            ..ServiceConfig::default()
        },
        // Keep the periodic recompute out of the timed windows; the bench
        // forces its tick explicitly.
        tick_interval: Duration::from_secs(3600),
        workers: 4,
        replay: false,
        ..ServerConfig::default()
    })
    .expect("bench server boots");
    let state = handle.state().clone();

    // 1. Ingest: append the whole batch, then wait for the tail thread to
    //    parse and apply every event.
    let total = events.len() as u64;
    let started = Instant::now();
    {
        use std::io::Write as _;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(&log_path)
            .expect("open log for append");
        log.write_all(payload.as_bytes()).expect("append events");
        log.flush().expect("flush log");
    }
    while state.events_ingested().get() < total {
        assert!(
            started.elapsed() < Duration::from_secs(600),
            "ingest stalled at {}/{total}",
            state.events_ingested().get()
        );
        std::thread::yield_now();
    }
    let ingest = started.elapsed().as_secs_f64();

    // 2. Queries against a published board: keep-alive sequential (the
    //    primary cell), close-per-request (the PR-8 comparison), then
    //    the 4/16-connection concurrency cells.
    assert!(state.force_tick(), "tick covers the ingested batch");
    let mut client = KeepAliveClient::connect(handle.addr());
    let probe = client.get("/score/0");
    assert!(probe.contains("\"score\":"), "probe response: {probe}");
    let started = Instant::now();
    for k in 0..QUERIES {
        let node = (k * 37) % n;
        let response = client.get(&format!("/score/{node}"));
        std::hint::black_box(&response);
    }
    let query = started.elapsed().as_secs_f64();

    let started = Instant::now();
    for k in 0..QUERIES {
        let node = (k * 37) % n;
        let response = http_get_close(handle.addr(), &format!("/score/{node}"));
        std::hint::black_box(&response);
    }
    let query_close = started.elapsed().as_secs_f64();

    let query_c4 = run_concurrent(handle.addr(), n, 4, CONC_QUERIES);
    let query_c16 = run_concurrent(handle.addr(), n, 16, CONC_QUERIES);

    // 3. Recorder-overhead pair: the long warmed loop against the
    //    primary daemon (recorder at the default 250 ms) ...
    let query_rec = overhead_cell(handle.addr(), n);
    handle.shutdown();

    //    ... and against a second daemon over the same log (warmed via
    //    replay) with an hour-long sampling interval, so the delta
    //    isolates the flight recorder.
    let norec = start(ServerConfig {
        log_path: log_path.clone(),
        listen: "127.0.0.1:0".to_owned(),
        service: ServiceConfig {
            nodes: n,
            interests: 40,
            pretrusted: 32.min(n),
            ..ServiceConfig::default()
        },
        tick_interval: Duration::from_secs(3600),
        workers: 4,
        replay: true,
        record_interval: Duration::from_secs(3600),
        ..ServerConfig::default()
    })
    .expect("recorder-off bench server boots");
    let mut client = KeepAliveClient::connect(norec.addr());
    let probe = client.get("/score/0");
    assert!(probe.contains("\"score\":"), "norec probe: {probe}");
    let query_norec = overhead_cell(norec.addr(), n);
    norec.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[server {n}] ingest {ingest:.4}s ({:.0} ev/s over {} events), \
         keep-alive {query:.4}s ({:.0} req/s), close {query_close:.4}s ({:.0} req/s), \
         c4 {query_c4:.4}s ({:.0} req/s), c16 {query_c16:.4}s ({:.0} req/s), \
         recorder pair {query_rec:.4}s vs {query_norec:.4}s (overhead {:+.2}%)",
        total as f64 / ingest,
        events.len(),
        QUERIES as f64 / query,
        QUERIES as f64 / query_close,
        CONC_QUERIES as f64 / query_c4,
        CONC_QUERIES as f64 / query_c16,
        (query_rec / query_norec - 1.0) * 100.0,
    );
    SizeReport {
        n,
        events: events.len(),
        ingest,
        query,
        query_close,
        query_c4,
        query_c16,
        query_rec,
        query_norec,
    }
}

/// Hand-assembled report (the vendored serde_json has no dynamic maps).
/// Keys ending in `_seconds` gate regressions; rates are informational.
fn write_report(reports: &[SizeReport], sizes: &str) {
    let mut fields: Vec<String> = vec![
        "\"bench\": \"server\"".to_owned(),
        format!("\"sizes\": \"{sizes}\""),
        format!("\"queries\": {QUERIES}"),
        format!("\"concurrent_queries\": {CONC_QUERIES}"),
        format!("\"overhead_queries\": {OVERHEAD_QUERIES}"),
    ];
    for r in reports {
        fields.push(format!("\"ingest_{}_seconds\": {:.9}", r.n, r.ingest));
        fields.push(format!("\"query_{}_seconds\": {:.9}", r.n, r.query));
        fields.push(format!(
            "\"query_close_{}_seconds\": {:.9}",
            r.n, r.query_close
        ));
        fields.push(format!("\"query_c4_{}_seconds\": {:.9}", r.n, r.query_c4));
        fields.push(format!("\"query_c16_{}_seconds\": {:.9}", r.n, r.query_c16));
        fields.push(format!(
            "\"query_norec_{}_seconds\": {:.9}",
            r.n, r.query_norec
        ));
        fields.push(format!(
            "\"recorder_overhead_{}_percent\": {:.3}",
            r.n,
            (r.query_rec / r.query_norec - 1.0) * 100.0
        ));
        fields.push(format!("\"ingest_{}_events\": {}", r.n, r.events));
        fields.push(format!(
            "\"ingest_{}_events_per_sec\": {:.1}",
            r.n,
            r.events as f64 / r.ingest
        ));
        fields.push(format!(
            "\"query_{}_requests_per_sec\": {:.1}",
            r.n,
            QUERIES as f64 / r.query
        ));
        fields.push(format!(
            "\"query_close_{}_requests_per_sec\": {:.1}",
            r.n,
            QUERIES as f64 / r.query_close
        ));
        fields.push(format!(
            "\"query_c4_{}_requests_per_sec\": {:.1}",
            r.n,
            CONC_QUERIES as f64 / r.query_c4
        ));
        fields.push(format!(
            "\"query_c16_{}_requests_per_sec\": {:.1}",
            r.n,
            CONC_QUERIES as f64 / r.query_c16
        ));
        fields.push(format!(
            "\"query_norec_{}_requests_per_sec\": {:.1}",
            r.n,
            OVERHEAD_QUERIES as f64 / r.query_norec
        ));
    }
    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));
    let path = std::env::var("BENCH_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".to_owned());
    std::fs::write(&path, json).expect("bench report is writable");
    println!("[server json] {} size(s) -> {path}", reports.len());
}

fn main() {
    let _ = std::env::args().any(|a| a == "--test");
    let sizes = std::env::var("SERVER_SIZES").unwrap_or_else(|_| "10000,100000".to_owned());
    let parsed: Vec<usize> = sizes
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n: &usize| n >= 2)
        .collect();
    assert!(
        !parsed.is_empty(),
        "SERVER_SIZES has no valid sizes: {sizes}"
    );
    let reports: Vec<SizeReport> = parsed.iter().map(|&n| bench_size(n)).collect();
    write_report(&reports, &sizes);
}
