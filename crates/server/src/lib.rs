//! # socialtrust-server
//!
//! A long-running reputation daemon over the SocialTrust pipeline,
//! mirroring the staged-service shape of production EigenTrust
//! deployments: an append-only JSONL event log is tailed by an **ingest
//! thread**, applied through `DirtyLog` into the live social substrate, a
//! **tick thread** recomputes warm-started blocked EigenTrust behind the
//! B1–B4 detector on a configurable interval, and a small **HTTP worker
//! pool** (keep-alive HTTP/1.1 over a `poll(2)` event loop, see
//! [`http`]) serves scores, audit explanations, and Prometheus metrics
//! from immutable published [`ScoreBoard`]s.
//!
//! Threading model (no async runtime, no HTTP/signal dependencies):
//!
//! ```text
//!  events.jsonl ──tail── ingest thread ──apply──▶ Mutex<ReputationService>
//!                                                    │ end_cycle() per tick
//!  tick thread ──every --tick-ms, skip when idle─────┘
//!       │ publish Arc<ScoreBoard>
//!       ▼
//!  RwLock<Arc<ScoreBoard>> ◀──read── HTTP workers (/score /scores /explain
//!                                       /journal /healthz /metrics)
//! ```
//!
//! Consistency: queries see exactly the last completed tick. Ticks with
//! no newly applied events are skipped, so the tick journal (cumulative
//! events per tick, served at `/journal`) stays finite and the daemon's
//! entire output is reproducible offline via
//! [`service::replay_offline`] — bit for bit, which the integration
//! tests assert over real sockets.

pub mod event;
pub mod http;
pub mod service;

use std::io::Read;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use socialtrust::prelude::*;
use socialtrust::telemetry::{Counter, Gauge, Histogram};

use service::{ReputationService, ScoreBoard, ServiceConfig};

/// Daemon configuration: where the log lives, where to listen, pipeline
/// capacity, and the tick/worker knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The append-only JSONL event log to tail (created if absent).
    pub log_path: PathBuf,
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub listen: String,
    /// Pipeline capacity and SocialTrust thresholds.
    pub service: ServiceConfig,
    /// Wall-clock interval between recompute ticks.
    pub tick_interval: Duration,
    /// HTTP worker threads.
    pub workers: usize,
    /// Keep-alive: close a connection after this much idle time.
    pub http_idle_timeout: Duration,
    /// Keep-alive: retire a connection after this many requests.
    pub http_max_requests: usize,
    /// Bootstrap mode: apply the log's existing backlog and run one tick
    /// *before* binding the listener, so the daemon goes live warm.
    pub replay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            log_path: PathBuf::from("events.jsonl"),
            listen: "127.0.0.1:8080".to_string(),
            service: ServiceConfig::default(),
            tick_interval: Duration::from_millis(200),
            workers: 4,
            http_idle_timeout: Duration::from_secs(5),
            http_max_requests: 1000,
            replay: false,
        }
    }
}

/// Shared daemon state: the pipeline behind a mutex, the published board
/// behind an rwlock, and the telemetry handles every thread updates.
pub struct ServerState {
    pub(crate) service: Mutex<ReputationService>,
    board: RwLock<Arc<ScoreBoard>>,
    pub(crate) telemetry: Telemetry,
    pub(crate) shutdown: AtomicBool,
    pub(crate) start: Instant,
    // Ingest-side telemetry.
    pub(crate) events_ingested: Counter,
    pub(crate) events_malformed: Counter,
    pub(crate) events_rejected: Counter,
    queue_depth: Gauge,
    ingest_lag: Gauge,
    ingest_apply_seconds: Histogram,
    /// When the oldest event not yet covered by a completed tick was
    /// applied (drives the `server_ingest_lag_seconds` gauge).
    oldest_pending: Mutex<Option<Instant>>,
    // Tick-side telemetry.
    ticks_total: Counter,
    ticks_skipped: Counter,
    tick_seconds: Histogram,
    // HTTP-side telemetry. `http_requests` counts parsed requests (a
    // keep-alive connection contributes one per request it carries);
    // `http_connections` counts accepted connections.
    pub(crate) http_requests: Counter,
    pub(crate) http_connections: Counter,
    pub(crate) http_seconds: Histogram,
    // HTTP keep-alive tuning (from `ServerConfig`).
    pub(crate) http_idle_timeout: Duration,
    pub(crate) http_max_requests: usize,
    /// Rendered `/metrics` body, shared until its short TTL lapses.
    pub(crate) metrics_cache: Mutex<Option<(Instant, Arc<str>)>>,
}

impl ServerState {
    fn new(service: ReputationService, telemetry: Telemetry, config: &ServerConfig) -> ServerState {
        let board = service.boot_board();
        board.ranking(); // warm the boot board's score index
        let r = telemetry.registry();
        ServerState {
            service: Mutex::new(service),
            board: RwLock::new(board),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            events_ingested: r.counter("server_events_ingested_total"),
            events_malformed: r.counter("server_events_malformed_total"),
            events_rejected: r.counter("server_events_rejected_total"),
            queue_depth: r.gauge("server_ingest_queue_depth"),
            ingest_lag: r.gauge("server_ingest_lag_seconds"),
            ingest_apply_seconds: r.histogram("server_ingest_apply_seconds"),
            ticks_total: r.counter("server_ticks_total"),
            ticks_skipped: r.counter("server_ticks_skipped_total"),
            tick_seconds: r.histogram("server_tick_seconds"),
            http_requests: r.counter("server_http_requests_total"),
            http_connections: r.counter("server_http_connections_total"),
            http_seconds: r.histogram("server_http_request_seconds"),
            http_idle_timeout: config.http_idle_timeout,
            http_max_requests: config.http_max_requests.max(1),
            metrics_cache: Mutex::new(None),
            oldest_pending: Mutex::new(None),
            telemetry,
        }
    }

    /// The last completed tick's published board.
    pub fn board(&self) -> Arc<ScoreBoard> {
        self.board.read().expect("board lock").clone()
    }

    /// The daemon's telemetry bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Counter of events the ingest thread has applied (benches and tests
    /// poll this to detect when an appended batch has landed).
    pub fn events_ingested(&self) -> &Counter {
        &self.events_ingested
    }

    /// Run one recompute tick immediately if any events are pending,
    /// instead of waiting out the tick interval. Benches and tests use
    /// this to get deterministic tick boundaries; the daemon itself only
    /// ticks from the tick thread and the shutdown drain.
    pub fn force_tick(&self) -> bool {
        self.maybe_tick()
    }

    /// Apply a batch of parsed events under one service lock. Returns the
    /// number applied (rejections are counted, not applied).
    fn apply_batch(&self, events: &[event::ServerEvent]) -> usize {
        if events.is_empty() {
            return 0;
        }
        let started = Instant::now();
        let mut applied = 0usize;
        {
            let mut service = self.service.lock().expect("service lock");
            for ev in events {
                match service.apply(ev) {
                    Ok(()) => applied += 1,
                    Err(reason) => {
                        self.events_rejected.inc();
                        eprintln!("socialtrust-server: rejected event: {reason}");
                    }
                }
            }
            self.queue_depth.set(service.pending_events() as f64);
        }
        self.events_ingested.add(applied as u64);
        self.ingest_apply_seconds
            .observe(started.elapsed().as_secs_f64());
        if applied > 0 {
            let mut oldest = self.oldest_pending.lock().expect("oldest lock");
            oldest.get_or_insert(started);
        }
        applied
    }

    /// Run one tick if any events arrived since the last one; publish the
    /// new board. Returns whether a tick ran.
    fn maybe_tick(&self) -> bool {
        let mut service = self.service.lock().expect("service lock");
        if service.pending_events() == 0 {
            self.ticks_skipped.inc();
            return false;
        }
        let started = Instant::now();
        let board = service.tick();
        self.tick_seconds.observe(started.elapsed().as_secs_f64());
        self.ticks_total.inc();
        self.queue_depth.set(service.pending_events() as f64);
        drop(service);
        if let Some(oldest) = self.oldest_pending.lock().expect("oldest lock").take() {
            self.ingest_lag.set(oldest.elapsed().as_secs_f64());
        }
        // Precompute the per-tick score index here, on the tick thread,
        // so `/scores` requests slice a warm shared ranking.
        board.ranking();
        *self.board.write().expect("board lock") = board;
        true
    }
}

/// Tail the log file: parse complete lines into events, apply them in
/// batches, count malformed lines, and — once shutdown is signalled —
/// drain whatever the log still holds before returning.
fn ingest_loop(state: Arc<ServerState>, path: PathBuf, start_offset: u64) {
    use std::io::Seek;
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("socialtrust-server: cannot open {}: {e}", path.display());
            return;
        }
    };
    if file.seek(std::io::SeekFrom::Start(start_offset)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match file.read(&mut chunk) {
            Ok(0) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // fully drained
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                let batch = drain_lines(&mut pending, &state);
                state.apply_batch(&batch);
            }
            Err(e) => {
                eprintln!("socialtrust-server: ingest read error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Split complete `\n`-terminated lines out of `pending` and parse them.
/// A trailing partial line stays buffered until its newline arrives.
/// Malformed lines are counted and logged, never fatal.
fn drain_lines(pending: &mut Vec<u8>, state: &ServerState) -> Vec<event::ServerEvent> {
    let mut events = Vec::new();
    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = pending.drain(..=pos).collect();
        let line = match std::str::from_utf8(&line[..line.len() - 1]) {
            Ok(s) => s.trim(),
            Err(_) => {
                state.events_malformed.inc();
                eprintln!("socialtrust-server: skipped non-UTF-8 log line");
                continue;
            }
        };
        if line.is_empty() {
            continue;
        }
        match event::parse_event(line) {
            Ok(ev) => events.push(ev),
            Err(reason) => {
                state.events_malformed.inc();
                eprintln!("socialtrust-server: skipped malformed event: {reason}");
            }
        }
    }
    events
}

/// The tick thread: one `maybe_tick` per interval until shutdown.
fn tick_loop(state: Arc<ServerState>, interval: Duration) {
    // Sleep in small slices so shutdown is honored promptly even with
    // multi-second tick intervals.
    let slice = Duration::from_millis(10).min(interval);
    let mut next = Instant::now() + interval;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next {
            state.maybe_tick();
            next = Instant::now() + interval;
        }
        std::thread::sleep(slice);
    }
}

/// A running daemon: bound address, shared state, and the threads to
/// join on shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    ingest: Option<JoinHandle<()>>,
    tick: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared daemon state (boards, telemetry, counters).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Graceful shutdown: stop tailing after a final drain of the log,
    /// run one last tick over whatever the drain applied, stop the HTTP
    /// workers, and return the state for a final metrics dump. The
    /// sequence mirrors SIGTERM handling in the binary.
    pub fn shutdown(mut self) -> Arc<ServerState> {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join(); // drains the log to EOF first
        }
        if let Some(tick) = self.tick.take() {
            let _ = tick.join();
        }
        self.state.maybe_tick(); // cover events applied by the drain
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.state.sink_flush();
        Arc::clone(&self.state)
    }
}

impl ServerState {
    fn sink_flush(&self) {
        // EventSink file backends flush+fsync on last drop; the in-memory
        // sink has nothing to flush. Nothing to do beyond dropping guards,
        // but keep the hook so a future file sink slots in here.
    }
}

/// Start the daemon: open (or create) the log, optionally replay the
/// backlog, bind the listener, and spawn the ingest/tick/worker threads.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // The log must exist to be tailed; create it empty on first boot so
    // `--log fresh.jsonl` works out of the box.
    if !config.log_path.exists() {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&config.log_path)?;
    }
    let telemetry = Telemetry::with_parts(
        EventSink::in_memory(),
        Tracer::new(TracerConfig::with_sample(SampleMode::Full)),
    );
    let service = ReputationService::new(config.service, &telemetry);
    let state = Arc::new(ServerState::new(service, telemetry, &config));

    // --replay: consume the existing backlog and tick once before going
    // live, so first queries see a warm trust vector.
    let mut start_offset = 0u64;
    if config.replay {
        let mut buffer = std::fs::read(&config.log_path)?;
        // A trailing partial line (writer mid-append) is left for the
        // tailer: rewind the offset to its start.
        if let Some(last_newline) = buffer.iter().rposition(|&b| b == b'\n') {
            start_offset = (last_newline + 1) as u64;
            buffer.truncate(last_newline + 1);
        } else {
            start_offset = 0;
            buffer.clear();
        }
        let batch = drain_lines(&mut buffer, &state);
        let applied = state.apply_batch(&batch);
        state.maybe_tick();
        eprintln!(
            "socialtrust-server: replayed {applied} event(s) from {}",
            config.log_path.display()
        );
    }

    let listener = TcpListener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);

    let ingest = {
        let state = Arc::clone(&state);
        let path = config.log_path.clone();
        std::thread::Builder::new()
            .name("st-ingest".into())
            .spawn(move || ingest_loop(state, path, start_offset))?
    };
    let tick = {
        let state = Arc::clone(&state);
        let interval = config.tick_interval.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("st-tick".into())
            .spawn(move || tick_loop(state, interval))?
    };
    let workers = (0..config.workers.max(1))
        .map(|k| {
            let listener = Arc::clone(&listener);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("st-http-{k}"))
                .spawn(move || http::worker_loop(listener, state))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        state,
        ingest: Some(ingest),
        tick: Some(tick),
        workers,
    })
}
