//! # socialtrust-server
//!
//! A long-running reputation daemon over the SocialTrust pipeline,
//! mirroring the staged-service shape of production EigenTrust
//! deployments: an append-only JSONL event log is tailed by an **ingest
//! thread**, applied through `DirtyLog` into the live social substrate, a
//! **tick thread** recomputes warm-started blocked EigenTrust behind the
//! B1–B4 detector on a configurable interval, and a small **HTTP worker
//! pool** (keep-alive HTTP/1.1 over a `poll(2)` event loop, see
//! [`http`]) serves scores, audit explanations, and Prometheus metrics
//! from immutable published [`ScoreBoard`]s.
//!
//! Threading model (no async runtime, no HTTP/signal dependencies):
//!
//! ```text
//!  events.jsonl ──tail── ingest thread ──apply──▶ Mutex<ReputationService>
//!                                                    │ end_cycle() per tick
//!  tick thread ──every --tick-ms, skip when idle─────┘
//!       │ publish Arc<ScoreBoard>
//!       ▼
//!  RwLock<Arc<ScoreBoard>> ◀──read── HTTP workers (/score /scores /explain
//!                                       /journal /healthz /metrics)
//! ```
//!
//! Consistency: queries see exactly the last completed tick. Ticks with
//! no newly applied events are skipped, so the tick journal (cumulative
//! events per tick, served at `/journal`) stays finite and the daemon's
//! entire output is reproducible offline via
//! [`service::replay_offline`] — bit for bit, which the integration
//! tests assert over real sockets.

pub mod event;
pub mod http;
pub mod service;

use std::io::Read;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use socialtrust::prelude::*;
use socialtrust::telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, Level, Logger, RecorderConfig,
};

use service::{HealthMachine, HealthState, ReputationService, ScoreBoard, ServiceConfig};

/// Daemon configuration: where the log lives, where to listen, pipeline
/// capacity, and the tick/worker knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The append-only JSONL event log to tail (created if absent).
    pub log_path: PathBuf,
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub listen: String,
    /// Pipeline capacity and SocialTrust thresholds.
    pub service: ServiceConfig,
    /// Wall-clock interval between recompute ticks.
    pub tick_interval: Duration,
    /// HTTP worker threads.
    pub workers: usize,
    /// Keep-alive: close a connection after this much idle time.
    pub http_idle_timeout: Duration,
    /// Keep-alive: retire a connection after this many requests.
    pub http_max_requests: usize,
    /// Bootstrap mode: apply the log's existing backlog and run one tick
    /// *before* binding the listener, so the daemon goes live warm.
    pub replay: bool,
    /// Minimum severity the structured logger emits.
    pub log_level: Level,
    /// Emit JSONL log records instead of human-readable text.
    pub log_json: bool,
    /// Flight-recorder sampling interval (also the watchdog cadence).
    pub record_interval: Duration,
    /// Flight-recorder ring capacity, in frames.
    pub record_capacity: usize,
    /// Requests at or above this latency land in the `/debug/slow` ring.
    pub slow_threshold: Duration,
    /// Where the flight-recorder window is dumped on shutdown or on a
    /// watchdog-detected stall (`None` disables the blackbox).
    pub blackbox_out: Option<PathBuf>,
    /// Tick-heartbeat age at which `/healthz` reports `stalled` (503).
    /// `None` derives `max(8 × tick_interval, 2s)`.
    pub stall_after: Option<Duration>,
    /// Live ingest lag at which `/healthz` reports `degraded`.
    pub degraded_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            log_path: PathBuf::from("events.jsonl"),
            listen: "127.0.0.1:8080".to_string(),
            service: ServiceConfig::default(),
            tick_interval: Duration::from_millis(200),
            workers: 4,
            http_idle_timeout: Duration::from_secs(5),
            http_max_requests: 1000,
            replay: false,
            log_level: Level::Info,
            log_json: false,
            record_interval: Duration::from_millis(250),
            record_capacity: 256,
            slow_threshold: Duration::from_millis(100),
            blackbox_out: None,
            stall_after: None,
            degraded_after: Duration::from_secs(5),
        }
    }
}

/// Shared daemon state: the pipeline behind a mutex, the published board
/// behind an rwlock, and the telemetry handles every thread updates.
pub struct ServerState {
    pub(crate) service: Mutex<ReputationService>,
    board: RwLock<Arc<ScoreBoard>>,
    pub(crate) telemetry: Telemetry,
    pub(crate) shutdown: AtomicBool,
    pub(crate) start: Instant,
    // Ingest-side telemetry.
    pub(crate) events_ingested: Counter,
    pub(crate) events_malformed: Counter,
    pub(crate) events_rejected: Counter,
    queue_depth: Gauge,
    ingest_lag: Gauge,
    ingest_apply_seconds: Histogram,
    /// When the oldest event not yet covered by a completed tick was
    /// applied (drives the `server_ingest_lag_seconds` gauge).
    oldest_pending: Mutex<Option<Instant>>,
    // Tick-side telemetry.
    ticks_total: Counter,
    ticks_skipped: Counter,
    tick_seconds: Histogram,
    // HTTP-side telemetry. `http_requests` counts parsed requests (a
    // keep-alive connection contributes one per request it carries);
    // `http_connections` counts accepted connections.
    pub(crate) http_requests: Counter,
    pub(crate) http_connections: Counter,
    pub(crate) http_seconds: Histogram,
    // HTTP keep-alive tuning (from `ServerConfig`).
    pub(crate) http_idle_timeout: Duration,
    pub(crate) http_max_requests: usize,
    /// Rendered `/metrics` body, shared until its short TTL lapses.
    pub(crate) metrics_cache: Mutex<Option<(Instant, Arc<str>)>>,
    // Observability plane (PR 10).
    /// Structured leveled logger every thread writes through.
    pub(crate) log: Logger,
    /// Flight recorder the watchdog samples on `record_interval`.
    pub(crate) recorder: FlightRecorder,
    /// Heartbeat-driven health derivation (beaten by the tick thread).
    pub(crate) health: HealthMachine,
    /// `server_health_state` gauge (0 ok / 1 degraded / 2 stalled).
    health_gauge: Gauge,
    /// Ingest lines dropped for invalid UTF-8 (kept separate from
    /// `server_events_malformed_total`, which counts parse failures).
    pub(crate) events_invalid_utf8: Counter,
    /// HTTP worker threads that died panicking (degrades health).
    pub(crate) worker_panics: Counter,
    /// Per-endpoint × status-class request counters and latency
    /// histograms (labeled views of the two aggregate families above).
    pub(crate) http_classes: http::HttpClassMetrics,
    /// Ring of the slowest recent requests, served at `/debug/slow`.
    pub(crate) slow: Mutex<SlowRing>,
    pub(crate) slow_threshold: Duration,
    pub(crate) blackbox_out: Option<PathBuf>,
    /// Test hook: while set, the tick thread neither ticks nor beats the
    /// heartbeat, simulating a wedged recompute.
    tick_frozen: AtomicBool,
}

/// One `/debug/slow` record: which endpoint class, how slow, and which
/// published tick was current when it was served.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlowEntry {
    pub(crate) endpoint: &'static str,
    pub(crate) seconds: f64,
    pub(crate) tick: u64,
}

/// Fixed-capacity ring of [`SlowEntry`] — no allocation after the first
/// `SLOW_RING_CAP` pushes; oldest entries are overwritten.
#[derive(Debug)]
pub(crate) struct SlowRing {
    entries: Vec<SlowEntry>,
    head: usize,
    total: u64,
}

pub(crate) const SLOW_RING_CAP: usize = 64;

impl SlowRing {
    fn new() -> SlowRing {
        SlowRing {
            entries: Vec::with_capacity(SLOW_RING_CAP),
            head: 0,
            total: 0,
        }
    }

    pub(crate) fn push(&mut self, entry: SlowEntry) {
        self.total = self.total.saturating_add(1);
        if self.entries.len() < SLOW_RING_CAP {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % SLOW_RING_CAP;
        }
    }

    /// Entries oldest-first.
    pub(crate) fn iter_chrono(&self) -> impl Iterator<Item = &SlowEntry> {
        self.entries[self.head..]
            .iter()
            .chain(self.entries[..self.head].iter())
    }

    /// Lifetime count of slow requests (including overwritten ones).
    pub(crate) fn total(&self) -> u64 {
        self.total
    }
}

impl ServerState {
    fn new(service: ReputationService, telemetry: Telemetry, config: &ServerConfig) -> ServerState {
        let board = service.boot_board();
        board.ranking(); // warm the boot board's score index
        let r = telemetry.registry();
        let stall_after = config
            .stall_after
            .unwrap_or_else(|| (config.tick_interval * 8).max(Duration::from_secs(2)));
        let recorder = FlightRecorder::new(
            r.clone(),
            RecorderConfig {
                interval: config.record_interval,
                capacity: config.record_capacity,
            },
        );
        ServerState {
            log: Logger::stderr(config.log_level, config.log_json),
            recorder,
            health: HealthMachine::new(stall_after, config.degraded_after),
            health_gauge: r.gauge("server_health_state"),
            events_invalid_utf8: r.counter("server_events_invalid_utf8_total"),
            worker_panics: r.counter("server_worker_panics_total"),
            http_classes: http::HttpClassMetrics::new(r),
            slow: Mutex::new(SlowRing::new()),
            slow_threshold: config.slow_threshold,
            blackbox_out: config.blackbox_out.clone(),
            tick_frozen: AtomicBool::new(false),
            service: Mutex::new(service),
            board: RwLock::new(board),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            events_ingested: r.counter("server_events_ingested_total"),
            events_malformed: r.counter("server_events_malformed_total"),
            events_rejected: r.counter("server_events_rejected_total"),
            queue_depth: r.gauge("server_ingest_queue_depth"),
            ingest_lag: r.gauge("server_ingest_lag_seconds"),
            ingest_apply_seconds: r.histogram("server_ingest_apply_seconds"),
            ticks_total: r.counter("server_ticks_total"),
            ticks_skipped: r.counter("server_ticks_skipped_total"),
            tick_seconds: r.histogram("server_tick_seconds"),
            http_requests: r.counter("server_http_requests_total"),
            http_connections: r.counter("server_http_connections_total"),
            http_seconds: r.histogram("server_http_request_seconds"),
            http_idle_timeout: config.http_idle_timeout,
            http_max_requests: config.http_max_requests.max(1),
            metrics_cache: Mutex::new(None),
            oldest_pending: Mutex::new(None),
            telemetry,
        }
    }

    /// The last completed tick's published board.
    pub fn board(&self) -> Arc<ScoreBoard> {
        self.board.read().expect("board lock").clone()
    }

    /// The daemon's telemetry bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Counter of events the ingest thread has applied (benches and tests
    /// poll this to detect when an appended batch has landed).
    pub fn events_ingested(&self) -> &Counter {
        &self.events_ingested
    }

    /// Run one recompute tick immediately if any events are pending,
    /// instead of waiting out the tick interval. Benches and tests use
    /// this to get deterministic tick boundaries; the daemon itself only
    /// ticks from the tick thread and the shutdown drain.
    pub fn force_tick(&self) -> bool {
        self.maybe_tick()
    }

    /// Apply a batch of parsed events under one service lock. Returns the
    /// number applied (rejections are counted, not applied).
    fn apply_batch(&self, events: &[event::ServerEvent]) -> usize {
        if events.is_empty() {
            return 0;
        }
        let started = Instant::now();
        let mut applied = 0usize;
        {
            let mut service = self.service.lock().expect("service lock");
            for ev in events {
                match service.apply(ev) {
                    Ok(()) => applied += 1,
                    Err(reason) => {
                        self.events_rejected.inc();
                        self.log.warn(
                            "ingest",
                            "rejected event",
                            &[("reason", reason.as_str().into())],
                        );
                    }
                }
            }
            self.queue_depth.set(service.pending_events() as f64);
        }
        self.events_ingested.add(applied as u64);
        self.ingest_apply_seconds
            .observe(started.elapsed().as_secs_f64());
        if applied > 0 {
            let mut oldest = self.oldest_pending.lock().expect("oldest lock");
            oldest.get_or_insert(started);
        }
        applied
    }

    /// Run one tick if any events arrived since the last one; publish the
    /// new board. Returns whether a tick ran.
    fn maybe_tick(&self) -> bool {
        let mut service = self.service.lock().expect("service lock");
        if service.pending_events() == 0 {
            self.ticks_skipped.inc();
            return false;
        }
        let started = Instant::now();
        let board = service.tick();
        self.tick_seconds.observe(started.elapsed().as_secs_f64());
        self.ticks_total.inc();
        self.queue_depth.set(service.pending_events() as f64);
        drop(service);
        if let Some(oldest) = self.oldest_pending.lock().expect("oldest lock").take() {
            self.ingest_lag.set(oldest.elapsed().as_secs_f64());
        }
        // Precompute the per-tick score index here, on the tick thread,
        // so `/scores` requests slice a warm shared ranking.
        board.ranking();
        *self.board.write().expect("board lock") = board;
        true
    }

    /// The daemon's structured logger.
    pub fn logger(&self) -> &Logger {
        &self.log
    }

    /// Derive the current health plus the inputs it was derived from:
    /// `(state, heartbeat_age_seconds, ingest_lag_seconds)`. The lag is
    /// the **live** wait of the oldest event not yet covered by a tick
    /// (0 when nothing is pending), not the per-tick gauge.
    pub fn assess_health(&self) -> (HealthState, f64, f64) {
        let lag = self
            .oldest_pending
            .lock()
            .expect("oldest lock")
            .map(|t| t.elapsed());
        let state = self.health.assess(lag, self.worker_panics.get());
        (
            state,
            self.health.heartbeat_age().as_secs_f64(),
            lag.map_or(0.0, |d| d.as_secs_f64()),
        )
    }

    /// Record one served request into the labeled counter/histogram
    /// matrix, and into the `/debug/slow` ring when it crossed the
    /// threshold. The board read (for the tick stamp) only happens on
    /// the slow path.
    pub(crate) fn record_request(&self, endpoint: http::Endpoint, status: u16, seconds: f64) {
        self.http_classes.record(endpoint, status, seconds);
        if seconds >= self.slow_threshold.as_secs_f64() {
            let tick = self.board().tick;
            self.slow.lock().expect("slow lock").push(SlowEntry {
                endpoint: endpoint.label(),
                seconds,
                tick,
            });
        }
    }

    /// Dump the flight-recorder window to `blackbox_out` (no-op when the
    /// blackbox is disabled). Forces samples until the ring holds at
    /// least two frames so even an immediately-terminated daemon leaves
    /// a usable rate window.
    pub(crate) fn dump_blackbox(&self, reason: &str) {
        let Some(path) = &self.blackbox_out else {
            return;
        };
        while self.recorder.frames() < 2 {
            self.recorder.sample();
        }
        let (health, _, _) = self.assess_health();
        let body = format!(
            "{{\"reason\":\"{reason}\",\"health\":\"{}\",\"uptime_seconds\":{:.3},\"window\":{}}}\n",
            health.as_str(),
            self.start.elapsed().as_secs_f64(),
            self.recorder.window_json(usize::MAX)
        );
        match std::fs::write(path, &body) {
            Ok(()) => self.log.info(
                "blackbox",
                "wrote flight-recorder blackbox",
                &[
                    ("path", path.display().to_string().into()),
                    ("reason", reason.into()),
                    ("frames", self.recorder.frames().into()),
                ],
            ),
            Err(e) => self.log.error(
                "blackbox",
                "failed to write blackbox",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            ),
        }
    }

    /// Test hook: freeze (or thaw) the tick thread. While frozen it
    /// neither runs `maybe_tick` nor beats the health heartbeat, so the
    /// watchdog and `/healthz` observe a genuine stall.
    #[doc(hidden)]
    pub fn set_tick_frozen(&self, frozen: bool) {
        self.tick_frozen.store(frozen, Ordering::SeqCst);
    }
}

/// Tail the log file: parse complete lines into events, apply them in
/// batches, count malformed lines, and — once shutdown is signalled —
/// drain whatever the log still holds before returning.
fn ingest_loop(state: Arc<ServerState>, path: PathBuf, start_offset: u64) {
    use std::io::Seek;
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            state.log.error(
                "ingest",
                "cannot open event log",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
            return;
        }
    };
    if file.seek(std::io::SeekFrom::Start(start_offset)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match file.read(&mut chunk) {
            Ok(0) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // fully drained
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                let batch = drain_lines(&mut pending, &state);
                state.apply_batch(&batch);
            }
            Err(e) => {
                state.log.error(
                    "ingest",
                    "ingest read error",
                    &[("error", e.to_string().into())],
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Split complete `\n`-terminated lines out of `pending` and parse them.
/// A trailing partial line stays buffered until its newline arrives.
/// Bad lines are counted and logged, never fatal — invalid UTF-8 under
/// `server_events_invalid_utf8_total` (encoding damage, e.g. a torn
/// write or binary garbage in the log), parse failures under
/// `server_events_malformed_total` (valid text that isn't an event).
fn drain_lines(pending: &mut Vec<u8>, state: &ServerState) -> Vec<event::ServerEvent> {
    let mut events = Vec::new();
    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = pending.drain(..=pos).collect();
        let line = match std::str::from_utf8(&line[..line.len() - 1]) {
            Ok(s) => s.trim(),
            Err(_) => {
                state.events_invalid_utf8.inc();
                state.log.warn(
                    "ingest",
                    "skipped non-UTF-8 log line",
                    &[("bytes", (line.len() - 1).into())],
                );
                continue;
            }
        };
        if line.is_empty() {
            continue;
        }
        match event::parse_event(line) {
            Ok(ev) => events.push(ev),
            Err(reason) => {
                state.events_malformed.inc();
                state.log.warn(
                    "ingest",
                    "skipped malformed event",
                    &[("reason", reason.as_str().into())],
                );
            }
        }
    }
    events
}

/// The tick thread: one `maybe_tick` per interval until shutdown. Every
/// slice (not just completed ticks) beats the health heartbeat, so a
/// long-but-running tick interval never reads as a stall — only a thread
/// that stopped scheduling does.
fn tick_loop(state: Arc<ServerState>, interval: Duration) {
    // Sleep in small slices so shutdown is honored promptly even with
    // multi-second tick intervals.
    let slice = Duration::from_millis(10).min(interval);
    let mut next = Instant::now() + interval;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if state.tick_frozen.load(Ordering::SeqCst) {
            // Frozen (test hook): simulate a wedged recompute — no
            // heartbeat, no ticks, but shutdown stays honored.
            std::thread::sleep(slice);
            continue;
        }
        state.health.beat();
        if Instant::now() >= next {
            state.maybe_tick();
            next = Instant::now() + interval;
        }
        std::thread::sleep(slice);
    }
}

/// The watchdog thread: on every recorder interval, sample the flight
/// recorder, publish the derived health on `server_health_state`, log
/// transitions, and dump the blackbox the moment a stall is detected
/// (the post-mortem window is written while the evidence is fresh, not
/// at whatever later point the process dies).
fn watch_loop(state: Arc<ServerState>, interval: Duration) {
    let slice = Duration::from_millis(10).min(interval);
    let mut next = Instant::now();
    let mut last = HealthState::Ok;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next {
            state.recorder.sample();
            let (health, heartbeat_age, ingest_lag) = state.assess_health();
            state.health_gauge.set(health.gauge_value());
            if health != last {
                state.log.warn(
                    "health",
                    "health transition",
                    &[
                        ("from", last.as_str().into()),
                        ("to", health.as_str().into()),
                        ("heartbeat_age_seconds", heartbeat_age.into()),
                        ("ingest_lag_seconds", ingest_lag.into()),
                    ],
                );
                if health == HealthState::Stalled {
                    state.dump_blackbox("stall");
                }
                last = health;
            }
            next = Instant::now() + interval;
        }
        std::thread::sleep(slice);
    }
}

/// A running daemon: bound address, shared state, and the threads to
/// join on shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    ingest: Option<JoinHandle<()>>,
    tick: Option<JoinHandle<()>>,
    watch: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared daemon state (boards, telemetry, counters).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Graceful shutdown: stop tailing after a final drain of the log,
    /// run one last tick over whatever the drain applied, stop the HTTP
    /// workers, and return the state for a final metrics dump. The
    /// sequence mirrors SIGTERM handling in the binary.
    pub fn shutdown(mut self) -> Arc<ServerState> {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join(); // drains the log to EOF first
        }
        if let Some(tick) = self.tick.take() {
            let _ = tick.join();
        }
        self.state.maybe_tick(); // cover events applied by the drain
        if let Some(watch) = self.watch.take() {
            let _ = watch.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Post-drain flight-recorder dump: the blackbox captures the
        // final state of every counter after the last tick.
        self.state.dump_blackbox("shutdown");
        self.state.sink_flush();
        Arc::clone(&self.state)
    }
}

impl ServerState {
    fn sink_flush(&self) {
        // EventSink file backends flush+fsync on last drop; the in-memory
        // sink has nothing to flush. Nothing to do beyond dropping guards,
        // but keep the hook so a future file sink slots in here.
    }
}

/// Start the daemon: open (or create) the log, optionally replay the
/// backlog, bind the listener, and spawn the ingest/tick/worker threads.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // The log must exist to be tailed; create it empty on first boot so
    // `--log fresh.jsonl` works out of the box.
    if !config.log_path.exists() {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&config.log_path)?;
    }
    let telemetry = Telemetry::with_parts(
        EventSink::in_memory(),
        Tracer::new(TracerConfig::with_sample(SampleMode::Full)),
    );
    let service = ReputationService::new(config.service, &telemetry);
    let state = Arc::new(ServerState::new(service, telemetry, &config));

    // --replay: consume the existing backlog and tick once before going
    // live, so first queries see a warm trust vector.
    let mut start_offset = 0u64;
    if config.replay {
        let mut buffer = std::fs::read(&config.log_path)?;
        // A trailing partial line (writer mid-append) is left for the
        // tailer: rewind the offset to its start.
        if let Some(last_newline) = buffer.iter().rposition(|&b| b == b'\n') {
            start_offset = (last_newline + 1) as u64;
            buffer.truncate(last_newline + 1);
        } else {
            start_offset = 0;
            buffer.clear();
        }
        let batch = drain_lines(&mut buffer, &state);
        let applied = state.apply_batch(&batch);
        state.maybe_tick();
        state.log.info(
            "server",
            "replayed backlog",
            &[
                ("events", applied.into()),
                ("path", config.log_path.display().to_string().into()),
            ],
        );
    }

    let listener = TcpListener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);

    let ingest = {
        let state = Arc::clone(&state);
        let path = config.log_path.clone();
        std::thread::Builder::new()
            .name("st-ingest".into())
            .spawn(move || ingest_loop(state, path, start_offset))?
    };
    let tick = {
        let state = Arc::clone(&state);
        let interval = config.tick_interval.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("st-tick".into())
            .spawn(move || tick_loop(state, interval))?
    };
    let watch = {
        let state = Arc::clone(&state);
        let interval = config.record_interval.max(Duration::from_millis(10));
        std::thread::Builder::new()
            .name("st-watch".into())
            .spawn(move || watch_loop(state, interval))?
    };
    let workers = (0..config.workers.max(1))
        .map(|k| {
            let listener = Arc::clone(&listener);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("st-http-{k}"))
                .spawn(move || {
                    let guard = PanicGuard {
                        state: Arc::clone(&state),
                    };
                    http::worker_loop(listener, state);
                    drop(guard);
                })
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        state,
        ingest: Some(ingest),
        tick: Some(tick),
        watch: Some(watch),
        workers,
    })
}

/// Armed on every HTTP worker: if the worker unwinds, the drop runs
/// during the panic and records it on `server_worker_panics_total`, which
/// degrades `/healthz` (the pool does not self-heal, so a dead worker is
/// a permanent capacity loss worth surfacing).
struct PanicGuard {
    state: Arc<ServerState>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.state.worker_panics.inc();
            self.state.log.error("http", "worker thread panicked", &[]);
        }
    }
}
