//! A minimal hand-rolled HTTP/1.1 listener (the workspace carries no
//! HTTP dependency).
//!
//! The accept path is a small worker pool: every worker owns a clone of
//! the shared non-blocking `TcpListener` and loops accept → handle →
//! close. Connections are `Connection: close` one-shots — the endpoints
//! are tiny JSON/text documents, and one-request connections keep the
//! parser honest (no pipelining, no chunked bodies, no keep-alive
//! bookkeeping). Workers poll the shutdown flag between accepts, so a
//! drain completes within a few milliseconds of the flag flipping.
//!
//! Endpoints (all `GET`):
//!
//! * `/healthz` — liveness + tick/ingest counters.
//! * `/score/{node}` — one node's trust score as of the last completed
//!   tick.
//! * `/scores?top=N` — the N highest-scored nodes (score-descending,
//!   node-ascending tie-break).
//! * `/explain/{node}` — audit entries for the node's rescaled ratings in
//!   the last completed tick, joined from the decision-provenance trace.
//! * `/journal` — the tick journal (cumulative applied-event count per
//!   tick), which lets a client replay the daemon's exact tick
//!   boundaries offline.
//! * `/metrics` — Prometheus text exposition of the whole registry.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use socialtrust::explain::explain_entries;
use socialtrust::telemetry::prometheus_text;

use crate::ServerState;

/// Sleep between empty non-blocking accept polls. Accept latency is
/// bounded by this, so it is kept well under a millisecond; the idle cost
/// is a few thousand wakeups per second per worker.
const ACCEPT_POLL: Duration = Duration::from_micros(300);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Largest request head (request line + headers) the parser accepts.
const MAX_HEAD: usize = 16 * 1024;

/// One worker's accept loop. Returns when the shutdown flag flips.
pub(crate) fn worker_loop(listener: Arc<TcpListener>, state: Arc<ServerState>) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let started = Instant::now();
                state.http_requests.inc();
                // Ignore per-connection I/O errors: a client hanging up
                // mid-response must never take a worker down.
                let _ = handle_connection(stream, &state);
                state.http_seconds.observe(started.elapsed().as_secs_f64());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            return respond(
                &mut stream,
                400,
                "application/json",
                "{\"error\":\"bad request\"}",
            )
        }
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if !version.starts_with("HTTP/1.") || target.is_empty() {
        return respond(
            &mut stream,
            400,
            "application/json",
            "{\"error\":\"bad request line\"}",
        );
    }
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "application/json",
            "{\"error\":\"only GET is served\"}",
        );
    }
    let (status, content_type, body) = route(state, target);
    respond(&mut stream, status, content_type, &body)
}

/// Read up to the `\r\n\r\n` head terminator (bodies are ignored: every
/// endpoint is a GET).
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_HEAD {
            return Err(std::io::Error::other("request head too large"));
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    String::from_utf8(buf).map_err(std::io::Error::other)
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Format an `f64` as a JSON number. Rust's shortest round-trip `Display`
/// keeps the full bit pattern, which is what the bit-for-bit `/score`
/// contract (and its offline-replay test) relies on.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn route(state: &ServerState, target: &str) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (200, "application/json", healthz_json(state)),
        "/journal" => (200, "application/json", journal_json(state)),
        "/metrics" => {
            let text = prometheus_text(&state.telemetry.registry().snapshot());
            (200, "text/plain; version=0.0.4", text)
        }
        "/scores" => scores_json(state, query),
        _ => {
            if let Some(raw) = path.strip_prefix("/score/") {
                return score_json(state, raw);
            }
            if let Some(raw) = path.strip_prefix("/explain/") {
                return explain_json(state, raw);
            }
            (
                404,
                "application/json",
                format!("{{\"error\":\"no route {path}\"}}"),
            )
        }
    }
}

fn healthz_json(state: &ServerState) -> String {
    let board = state.board();
    format!(
        "{{\"status\":\"ok\",\"tick\":{},\"events_applied\":{},\"events_malformed\":{},\"events_rejected\":{},\"nodes\":{},\"uptime_seconds\":{:.3}}}",
        board.tick,
        board.events_applied,
        state.events_malformed.get(),
        state.events_rejected.get(),
        board.scores.len(),
        state.start.elapsed().as_secs_f64(),
    )
}

fn journal_json(state: &ServerState) -> String {
    let journal = state
        .service
        .lock()
        .expect("service lock")
        .journal()
        .to_vec();
    let cells: Vec<String> = journal.iter().map(u64::to_string).collect();
    format!("{{\"journal\":[{}]}}", cells.join(","))
}

fn score_json(state: &ServerState, raw: &str) -> (u16, &'static str, String) {
    let Ok(node) = raw.parse::<usize>() else {
        return (
            400,
            "application/json",
            format!("{{\"error\":\"bad node id {raw:?}\"}}"),
        );
    };
    let board = state.board();
    match board.scores.get(node) {
        Some(&score) => (
            200,
            "application/json",
            format!(
                "{{\"node\":{node},\"score\":{},\"tick\":{},\"events_applied\":{}}}",
                json_f64(score),
                board.tick,
                board.events_applied
            ),
        ),
        None => (
            404,
            "application/json",
            format!("{{\"error\":\"node {node} out of range\"}}"),
        ),
    }
}

fn scores_json(state: &ServerState, query: &str) -> (u16, &'static str, String) {
    let mut top = 10usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("top", raw)) => match raw.parse::<usize>() {
                Ok(n) => top = n,
                Err(_) => {
                    return (
                        400,
                        "application/json",
                        format!("{{\"error\":\"bad top value {raw:?}\"}}"),
                    )
                }
            },
            _ => {
                return (
                    400,
                    "application/json",
                    format!("{{\"error\":\"unknown query parameter {pair:?}\"}}"),
                )
            }
        }
    }
    let board = state.board();
    let mut order: Vec<usize> = (0..board.scores.len()).collect();
    // Deterministic ranking: score descending, node id ascending on ties.
    order.sort_by(|&a, &b| {
        board.scores[b]
            .partial_cmp(&board.scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(top);
    let rows: Vec<String> = order
        .iter()
        .map(|&node| {
            format!(
                "{{\"node\":{node},\"score\":{}}}",
                json_f64(board.scores[node])
            )
        })
        .collect();
    (
        200,
        "application/json",
        format!(
            "{{\"tick\":{},\"events_applied\":{},\"scores\":[{}]}}",
            board.tick,
            board.events_applied,
            rows.join(",")
        ),
    )
}

fn explain_json(state: &ServerState, raw: &str) -> (u16, &'static str, String) {
    let Ok(node) = raw.parse::<u64>() else {
        return (
            400,
            "application/json",
            format!("{{\"error\":\"bad node id {raw:?}\"}}"),
        );
    };
    let board = state.board();
    if node >= board.scores.len() as u64 {
        return (
            404,
            "application/json",
            format!("{{\"error\":\"node {node} out of range\"}}"),
        );
    }
    let entries = explain_entries(&board.trace, Some(node), Some(board.cycle));
    match serde_json::to_string(&entries) {
        Ok(body) => (
            200,
            "application/json",
            format!(
                "{{\"node\":{node},\"tick\":{},\"entries\":{body}}}",
                board.tick
            ),
        ),
        Err(e) => (
            500,
            "application/json",
            format!("{{\"error\":\"explain serialization: {e:?}\"}}"),
        ),
    }
}
