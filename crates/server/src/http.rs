//! A high-throughput hand-rolled HTTP/1.1 query plane (the workspace
//! carries no HTTP dependency).
//!
//! Three layers replace the PR-8 one-shot accept→close path:
//!
//! * **Keep-alive + pipelining** — each connection runs a request loop:
//!   requests are parsed out of a growing input buffer (so pipelined
//!   requests buffered in one segment are answered back-to-back, in
//!   order), responses honor the `Connection:` header (HTTP/1.1 defaults
//!   to keep-alive, HTTP/1.0 to close), and a connection is retired after
//!   [`ServerConfig::http_max_requests`] requests or
//!   [`ServerConfig::http_idle_timeout`] of silence.
//! * **Readiness-based event loop** — workers block in `poll(2)` (direct
//!   FFI, mirroring the `signal(2)` FFI in `main.rs`) on the shared
//!   listener plus their live connections, instead of the old 300µs
//!   sleep-poll accept loop. Sockets are non-blocking; a worker wakes
//!   only when there is a connection to accept, bytes to read, or buffer
//!   space to finish a stalled write. The poll timeout doubles as the
//!   shutdown/idle sweep granularity.
//! * **Per-tick response caching** — every published [`ScoreBoard`]
//!   carries a lazily-built score-descending index prefix (warmed by the
//!   tick thread), so `/scores?top=N` is an O(top) slice instead of an
//!   O(n log n) sort per request; the default `/scores` body and the
//!   `/journal` body render once per board into shared `Arc<str>`s, and
//!   `/metrics` is cached for a short TTL. Each response is assembled
//!   into the connection's output buffer and usually leaves in a single
//!   `write(2)`.
//!
//! Endpoints (all `GET`):
//!
//! * `/healthz` — liveness + tick/ingest counters.
//! * `/score/{node}` — one node's trust score as of the last completed
//!   tick.
//! * `/scores?top=N` — the N highest-scored nodes (score-descending,
//!   node-ascending tie-break).
//! * `/explain/{node}` — audit entries for the node's rescaled ratings in
//!   the last completed tick, joined from the decision-provenance trace.
//! * `/journal` — the tick journal (cumulative applied-event count per
//!   tick), published on the immutable board so serving it never touches
//!   the service mutex.
//! * `/metrics` — Prometheus text exposition of the whole registry,
//!   cached for [`METRICS_TTL`].
//! * `/debug/vars` — instantaneous JSON dump of every metric in the
//!   registry (the expvar idiom), uncached.
//! * `/debug/timeseries?window=N` — the last N flight-recorder frames
//!   with per-family rates (the whole ring without `window`).
//! * `/debug/slow` — the ring of recent requests slower than the
//!   `--slow-ms` threshold.
//!
//! Every response is classified into a per-endpoint × status-class
//! labeled counter/histogram pair ([`HttpClassMetrics`]) alongside the
//! aggregate `server_http_request_seconds` histogram.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use socialtrust::explain::explain_entries;
use socialtrust::telemetry::{prometheus_text, Counter, Histogram, Registry};

use crate::ServerState;

/// `poll(2)` timeout: bounds shutdown latency and the idle-connection
/// sweep granularity. Workers otherwise sleep in the kernel.
const POLL_TICK: Duration = Duration::from_millis(100);
/// Largest request head (request line + headers) the parser accepts.
const MAX_HEAD: usize = 16 * 1024;
/// `/metrics` renders the whole registry; cache the rendered body this
/// long so metric scrapes under load stay O(1).
const METRICS_TTL: Duration = Duration::from_millis(250);
/// Per-worker live-connection cap; beyond it the worker stops accepting
/// and leaves new connections in the listen backlog.
const MAX_CONNS_PER_WORKER: usize = 1024;
/// Grace period for flushing in-flight responses during shutdown drain.
const DRAIN_FLUSH_TIMEOUT: Duration = Duration::from_millis(500);

/// Minimal `poll(2)` FFI. Linux/macOS share the event bit values used
/// here; `nfds_t` differs (`c_ulong` vs `c_uint`).
#[cfg(unix)]
mod sys {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "macos")]
    type Nfds = std::os::raw::c_uint;
    #[cfg(not(target_os = "macos"))]
    type Nfds = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// Block until any registered fd is ready or `timeout_ms` elapses.
    /// On error (e.g. EINTR from the daemon's signal handlers) the
    /// zeroed `revents` are left untouched, so callers simply see an
    /// empty readiness set and re-check the shutdown flag.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) }
    }

    pub fn raw_fd(stream: &impl std::os::unix::io::AsRawFd) -> i32 {
        stream.as_raw_fd()
    }
}

/// Portability fallback: no readiness notification, so report every fd
/// ready after a short sleep and let the non-blocking reads/writes
/// return `WouldBlock`. Costs ~1k wakeups/s per worker, like the old
/// sleep-poll loop; only the FFI path is exercised on unix.
#[cfg(not(unix))]
mod sys {
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(1, 10) as u64
        ));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        fds.len() as i32
    }

    pub fn raw_fd(_stream: &impl Sized) -> i32 {
        -1
    }
}

/// Endpoint class a request resolved to, used as the `endpoint` label on
/// the per-class request metrics and as the `/debug/slow` tag. A static
/// class (not the raw target) keeps label cardinality bounded and the
/// hot path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Healthz = 0,
    Score = 1,
    Scores = 2,
    Explain = 3,
    Journal = 4,
    Metrics = 5,
    DebugVars = 6,
    DebugTimeseries = 7,
    DebugSlow = 8,
    /// Unroutable targets and protocol-level rejections (bad request
    /// line, bodies, non-GET).
    Other = 9,
}

impl Endpoint {
    pub(crate) const ALL: [Endpoint; 10] = [
        Endpoint::Healthz,
        Endpoint::Score,
        Endpoint::Scores,
        Endpoint::Explain,
        Endpoint::Journal,
        Endpoint::Metrics,
        Endpoint::DebugVars,
        Endpoint::DebugTimeseries,
        Endpoint::DebugSlow,
        Endpoint::Other,
    ];

    pub(crate) fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Score => "score",
            Endpoint::Scores => "scores",
            Endpoint::Explain => "explain",
            Endpoint::Journal => "journal",
            Endpoint::Metrics => "metrics",
            Endpoint::DebugVars => "debug_vars",
            Endpoint::DebugTimeseries => "debug_timeseries",
            Endpoint::DebugSlow => "debug_slow",
            Endpoint::Other => "other",
        }
    }
}

/// Status classes the per-endpoint metrics distinguish. 1xx/3xx never
/// leave this server; they fold into the success class defensively.
const STATUS_CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

fn status_class_index(status: u16) -> usize {
    match status / 100 {
        4 => 1,
        5 => 2,
        _ => 0,
    }
}

/// Pre-registered per-endpoint × status-class views of
/// `server_http_requests_total` and `server_http_request_seconds`. The
/// whole matrix is built once at boot, so the request path is two array
/// indexes and two atomic updates — no label formatting, no registry
/// lock.
pub(crate) struct HttpClassMetrics {
    requests: [[Counter; 3]; 10],
    seconds: [[Histogram; 3]; 10],
}

impl HttpClassMetrics {
    pub(crate) fn new(registry: &Registry) -> HttpClassMetrics {
        HttpClassMetrics {
            requests: std::array::from_fn(|e| {
                std::array::from_fn(|s| {
                    registry.counter_labeled(
                        "server_http_requests_total",
                        &[
                            ("endpoint", Endpoint::ALL[e].label()),
                            ("status", STATUS_CLASSES[s]),
                        ],
                    )
                })
            }),
            seconds: std::array::from_fn(|e| {
                std::array::from_fn(|s| {
                    registry.histogram_labeled(
                        "server_http_request_seconds",
                        &[
                            ("endpoint", Endpoint::ALL[e].label()),
                            ("status", STATUS_CLASSES[s]),
                        ],
                    )
                })
            }),
        }
    }

    pub(crate) fn record(&self, endpoint: Endpoint, status: u16, seconds: f64) {
        let (e, s) = (endpoint as usize, status_class_index(status));
        self.requests[e][s].inc();
        self.seconds[e][s].observe(seconds);
    }
}

/// A response body: either rendered for this request or shared from a
/// per-board / TTL cache.
enum Body {
    Owned(String),
    Shared(Arc<str>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Owned(s) => s.as_bytes(),
            Body::Shared(s) => s.as_bytes(),
        }
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Owned(s)
    }
}

impl From<Arc<str>> for Body {
    fn from(s: Arc<str>) -> Body {
        Body::Shared(s)
    }
}

/// Why a connection decided to stop serving further requests.
#[derive(PartialEq)]
enum Outcome {
    KeepGoing,
    /// Flush what is buffered, then close.
    Close,
}

/// One live keep-alive connection owned by a worker.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by the request parser.
    inbuf: Vec<u8>,
    /// How far `inbuf` has been scanned for the head terminator, so each
    /// new chunk rescans only the last 3 carried-over bytes (the old
    /// `windows(4).any` rescan of the whole buffer was O(n²)).
    scanned: usize,
    /// Bytes waiting to go out, from `outpos` onward.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Requests served on this connection (drives the per-connection cap).
    served: usize,
    last_active: Instant,
    /// Stop parsing; close once `outbuf` drains.
    closing: bool,
    /// Peer half-closed its write side (read returned 0).
    saw_eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            inbuf: Vec::with_capacity(512),
            scanned: 0,
            outbuf: Vec::with_capacity(512),
            outpos: 0,
            served: 0,
            last_active: now,
            closing: false,
            saw_eof: false,
        }
    }

    fn wants_write(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Drain the socket into `inbuf` until `WouldBlock`/EOF. `Err` means
    /// the connection is unusable.
    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.saw_eof = true;
                    return Ok(());
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Write `outbuf` until done or `WouldBlock`. `Err` means the
    /// connection is unusable.
    fn flush_some(&mut self) -> std::io::Result<()> {
        while self.wants_write() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return Err(std::io::Error::other("zero-length write")),
                Ok(n) => {
                    self.outpos += n;
                    self.last_active = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.outbuf.clear();
        self.outpos = 0;
        Ok(())
    }

    /// Find the end (exclusive, past `\r\n\r\n`) of the first complete
    /// request head in `inbuf`, scanning only bytes not already scanned.
    fn head_end(&mut self) -> Option<usize> {
        let start = self.scanned.saturating_sub(3);
        match self.inbuf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
        {
            Some(pos) => Some(start + pos + 4),
            None => {
                self.scanned = self.inbuf.len();
                None
            }
        }
    }

    /// Parse and answer every complete request currently buffered. With
    /// `force_close` (shutdown drain) each response advertises
    /// `Connection: close` and parsing stops after the buffered tail.
    fn serve_buffered(&mut self, state: &ServerState, force_close: bool) {
        while !self.closing {
            let Some(end) = self.head_end() else {
                if self.inbuf.len() > MAX_HEAD {
                    self.bad_request(state, "{\"error\":\"request head too large\"}");
                }
                return;
            };
            let started = Instant::now();
            state.http_requests.inc();
            let head: Vec<u8> = self.inbuf.drain(..end).collect();
            self.scanned = 0;
            let Ok(head) = std::str::from_utf8(&head) else {
                self.bad_request(state, "{\"error\":\"bad request\"}");
                return;
            };
            let (outcome, endpoint, status) = self.serve_one(state, head, force_close);
            let elapsed = started.elapsed().as_secs_f64();
            state.http_seconds.observe(elapsed);
            state.record_request(endpoint, status, elapsed);
            if outcome == Outcome::Close {
                self.closing = true;
            }
        }
    }

    /// Answer one parsed request head. Returns whether the connection
    /// may serve another request afterwards, plus the endpoint class and
    /// status it resolved to (for the per-class metrics).
    fn serve_one(
        &mut self,
        state: &ServerState,
        head: &str,
        force_close: bool,
    ) -> (Outcome, Endpoint, u16) {
        let request_line = head.split("\r\n").next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) = (
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
        );
        if !version.starts_with("HTTP/1.") || target.is_empty() {
            self.push_response(
                400,
                "application/json",
                &Body::Owned("{\"error\":\"bad request line\"}".to_owned()),
                false,
            );
            return (Outcome::Close, Endpoint::Other, 400);
        }
        // Every endpoint is a bodyless GET; a request that carries a body
        // would desynchronize the pipelined parser, so refuse and close.
        let has_body = header_value(head, "content-length")
            .is_some_and(|v| v.trim().parse::<u64>().map_or(true, |n| n > 0))
            || header_value(head, "transfer-encoding").is_some();
        if has_body {
            self.push_response(
                400,
                "application/json",
                &Body::Owned("{\"error\":\"request bodies are not supported\"}".to_owned()),
                false,
            );
            return (Outcome::Close, Endpoint::Other, 400);
        }
        if method != "GET" {
            self.push_response(
                405,
                "application/json",
                &Body::Owned("{\"error\":\"only GET is served\"}".to_owned()),
                false,
            );
            return (Outcome::Close, Endpoint::Other, 405);
        }
        // Connection lifecycle: HTTP/1.1 keeps alive unless told to
        // close; HTTP/1.0 closes unless told to keep alive; the
        // per-connection request cap retires long-lived connections.
        let connection = header_value(head, "connection").unwrap_or("");
        let wants_keep_alive = if version == "HTTP/1.0" {
            connection_token(connection, "keep-alive")
        } else {
            !connection_token(connection, "close")
        };
        self.served += 1;
        let keep_alive = wants_keep_alive && !force_close && self.served < state.http_max_requests;
        let (endpoint, status, content_type, body) = route(state, target);
        self.push_response(status, content_type, &body, keep_alive);
        let outcome = if keep_alive {
            Outcome::KeepGoing
        } else {
            Outcome::Close
        };
        (outcome, endpoint, status)
    }

    fn bad_request(&mut self, state: &ServerState, body: &str) {
        state.http_requests.inc();
        state.record_request(Endpoint::Other, 400, 0.0);
        self.push_response(
            400,
            "application/json",
            &Body::Owned(body.to_owned()),
            false,
        );
        self.closing = true;
    }

    /// Assemble head + body into the output buffer; the caller's flush
    /// usually moves the whole response in one `write(2)`.
    fn push_response(&mut self, status: u16, content_type: &str, body: &Body, keep_alive: bool) {
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let bytes = body.as_bytes();
        let connection = if keep_alive { "keep-alive" } else { "close" };
        self.outbuf.extend_from_slice(
            format!(
                "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                bytes.len()
            )
            .as_bytes(),
        );
        self.outbuf.extend_from_slice(bytes);
    }

    /// One scheduling round for this connection. Returns `false` when
    /// the connection should be dropped.
    fn step(&mut self, revents: i16, now: Instant, state: &ServerState) -> bool {
        if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
            return false;
        }
        if revents & (sys::POLLIN | sys::POLLHUP) != 0 {
            if self.fill().is_err() {
                return false;
            }
            self.last_active = now;
            if !self.closing {
                self.serve_buffered(state, false);
            }
        }
        if self.wants_write() && self.flush_some().is_err() {
            return false;
        }
        if (self.closing || self.saw_eof) && !self.wants_write() {
            return false;
        }
        now.duration_since(self.last_active) <= state.http_idle_timeout
    }

    /// Shutdown drain: answer whatever complete requests the peer has
    /// already sent (marked `Connection: close`), flush with a bounded
    /// blocking write, and close.
    fn drain(mut self, state: &ServerState) {
        let _ = self.fill();
        if !self.closing {
            self.serve_buffered(state, true);
        }
        if self.wants_write() {
            let _ = self.stream.set_nonblocking(false);
            let _ = self.stream.set_write_timeout(Some(DRAIN_FLUSH_TIMEOUT));
            let _ = self.stream.write_all(&self.outbuf[self.outpos..]);
            let _ = self.stream.flush();
        }
    }
}

/// The value of the first header named `name` (ASCII case-insensitive),
/// trimmed.
fn header_value<'h>(head: &'h str, name: &str) -> Option<&'h str> {
    head.split("\r\n").skip(1).find_map(|line| {
        let (field, value) = line.split_once(':')?;
        field
            .trim()
            .eq_ignore_ascii_case(name)
            .then(|| value.trim())
    })
}

/// Whether a `Connection:` header value lists `token` (comma-separated,
/// case-insensitive).
fn connection_token(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// One worker's event loop: block in `poll(2)` on the shared listener
/// plus this worker's live connections; accept, read, serve, and flush
/// whatever became ready. Returns after the shutdown flag flips, once
/// in-flight requests are drained.
pub(crate) fn worker_loop(listener: Arc<TcpListener>, state: Arc<ServerState>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<sys::PollFd> = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            for conn in conns.drain(..) {
                conn.drain(&state);
            }
            return;
        }
        fds.clear();
        let accepting = conns.len() < MAX_CONNS_PER_WORKER;
        fds.push(sys::PollFd {
            fd: sys::raw_fd(&*listener),
            events: if accepting { sys::POLLIN } else { 0 },
            revents: 0,
        });
        for conn in &conns {
            let mut events = sys::POLLIN;
            if conn.wants_write() {
                events |= sys::POLLOUT;
            }
            fds.push(sys::PollFd {
                fd: sys::raw_fd(&conn.stream),
                events,
                revents: 0,
            });
        }
        sys::wait(&mut fds, POLL_TICK.as_millis() as i32);

        let polled = conns.len();
        if accepting && fds[0].revents != 0 {
            accept_ready(&listener, &state, &mut conns);
        }
        let now = Instant::now();
        for i in (0..conns.len()).rev() {
            // Freshly accepted connections (index >= polled) were not in
            // this round's poll set; treat them as readable so a request
            // already sitting in the socket buffer is answered now.
            let revents = if i < polled {
                fds[i + 1].revents
            } else {
                sys::POLLIN
            };
            if !conns[i].step(revents, now, &state) {
                conns.swap_remove(i);
            }
        }
    }
}

/// Accept every pending connection (the listener is non-blocking and
/// level-triggered, so drain it) up to the per-worker cap.
fn accept_ready(listener: &TcpListener, state: &ServerState, conns: &mut Vec<Conn>) {
    let now = Instant::now();
    while conns.len() < MAX_CONNS_PER_WORKER {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Non-blocking for the event loop; NODELAY because the
                // request/response ping-pong is latency-bound.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                state.http_connections.inc();
                conns.push(Conn::new(stream, now));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock (drained) or transient accept error
        }
    }
}

/// Format an `f64` as a JSON number. Rust's shortest round-trip `Display`
/// keeps the full bit pattern, which is what the bit-for-bit `/score`
/// contract (and its offline-replay test) relies on.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn route(state: &ServerState, target: &str) -> (Endpoint, u16, &'static str, Body) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => {
            let (status, body) = healthz_json(state);
            (Endpoint::Healthz, status, "application/json", body.into())
        }
        "/journal" => (
            Endpoint::Journal,
            200,
            "application/json",
            journal_body(state),
        ),
        "/metrics" => (
            Endpoint::Metrics,
            200,
            "text/plain; version=0.0.4",
            metrics_body(state),
        ),
        "/scores" => {
            let (status, ct, body) = scores_json(state, query);
            (Endpoint::Scores, status, ct, body)
        }
        "/debug/vars" => {
            let (status, ct, body) = debug_vars_json(state);
            (Endpoint::DebugVars, status, ct, body)
        }
        "/debug/timeseries" => {
            let (status, ct, body) = debug_timeseries_json(state, query);
            (Endpoint::DebugTimeseries, status, ct, body)
        }
        "/debug/slow" => (
            Endpoint::DebugSlow,
            200,
            "application/json",
            debug_slow_json(state).into(),
        ),
        _ => {
            if let Some(raw) = path.strip_prefix("/score/") {
                let (status, ct, body) = score_json(state, raw);
                return (Endpoint::Score, status, ct, body);
            }
            if let Some(raw) = path.strip_prefix("/explain/") {
                let (status, ct, body) = explain_json(state, raw);
                return (Endpoint::Explain, status, ct, body);
            }
            (
                Endpoint::Other,
                404,
                "application/json",
                format!("{{\"error\":\"no route {path}\"}}").into(),
            )
        }
    }
}

/// `/healthz`: liveness counters plus the derived health state. The
/// status code follows the state — 503 when stalled so load balancers
/// eject the instance, 200 otherwise (degraded instances still serve
/// correct, if lagging, answers).
fn healthz_json(state: &ServerState) -> (u16, String) {
    let board = state.board();
    let (health, heartbeat_age, ingest_lag) = state.assess_health();
    let body = format!(
        "{{\"status\":\"{}\",\"tick\":{},\"events_applied\":{},\"events_malformed\":{},\"events_invalid_utf8\":{},\"events_rejected\":{},\"worker_panics\":{},\"nodes\":{},\"uptime_seconds\":{:.3},\"heartbeat_age_seconds\":{:.3},\"ingest_lag_seconds\":{:.3}}}",
        health.as_str(),
        board.tick,
        board.events_applied,
        state.events_malformed.get(),
        state.events_invalid_utf8.get(),
        state.events_rejected.get(),
        state.worker_panics.get(),
        board.scores.len(),
        state.start.elapsed().as_secs_f64(),
        heartbeat_age,
        ingest_lag,
    );
    (health.http_status(), body)
}

/// `/debug/vars`: instantaneous JSON dump of the whole registry (the
/// expvar idiom — no TTL cache, every hit is a fresh snapshot).
fn debug_vars_json(state: &ServerState) -> (u16, &'static str, Body) {
    let snap = state.telemetry.registry().snapshot();
    match serde_json::to_string(&snap) {
        Ok(metrics) => (
            200,
            "application/json",
            format!(
                "{{\"uptime_seconds\":{:.3},\"tick\":{},\"metrics\":{metrics}}}",
                state.start.elapsed().as_secs_f64(),
                state.board().tick,
            )
            .into(),
        ),
        Err(e) => (
            500,
            "application/json",
            format!("{{\"error\":\"snapshot serialization: {e:?}\"}}").into(),
        ),
    }
}

/// `/debug/timeseries?window=N`: the last N flight-recorder frames with
/// per-family rates; without `window`, the whole ring.
fn debug_timeseries_json(state: &ServerState, query: &str) -> (u16, &'static str, Body) {
    let mut window = usize::MAX;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("window", raw)) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => window = n,
                _ => {
                    return (
                        400,
                        "application/json",
                        format!("{{\"error\":\"bad window value {raw:?}\"}}").into(),
                    )
                }
            },
            _ => {
                return (
                    400,
                    "application/json",
                    format!("{{\"error\":\"unknown query parameter {pair:?}\"}}").into(),
                )
            }
        }
    }
    (
        200,
        "application/json",
        state.recorder.window_json(window).into(),
    )
}

/// `/debug/slow`: the ring of recent requests at or above the slow
/// threshold, oldest first, plus the lifetime slow-request count.
fn debug_slow_json(state: &ServerState) -> String {
    let ring = state.slow.lock().expect("slow lock");
    let rows: Vec<String> = ring
        .iter_chrono()
        .map(|e| {
            format!(
                "{{\"endpoint\":\"{}\",\"seconds\":{},\"tick\":{}}}",
                e.endpoint,
                json_f64(e.seconds),
                e.tick
            )
        })
        .collect();
    format!(
        "{{\"slow_threshold_seconds\":{},\"recorded_total\":{},\"capacity\":{},\"entries\":[{}]}}",
        json_f64(state.slow_threshold.as_secs_f64()),
        ring.total(),
        crate::SLOW_RING_CAP,
        rows.join(",")
    )
}

/// `/journal` renders once per published board — the journal is a field
/// of the immutable [`ScoreBoard`], so serving it never contends with
/// the tick thread on the service mutex.
fn journal_body(state: &ServerState) -> Body {
    let board = state.board();
    board
        .cached_journal_body
        .get_or_init(|| {
            let cells: Vec<String> = board.journal.iter().map(u64::to_string).collect();
            format!("{{\"journal\":[{}]}}", cells.join(",")).into()
        })
        .clone()
        .into()
}

/// `/metrics` snapshots and renders the whole registry; under load that
/// dominated, so the rendered body is shared for [`METRICS_TTL`].
fn metrics_body(state: &ServerState) -> Body {
    let mut cache = state.metrics_cache.lock().expect("metrics cache lock");
    if let Some((at, body)) = cache.as_ref() {
        if at.elapsed() < METRICS_TTL {
            return body.clone().into();
        }
    }
    let body: Arc<str> = prometheus_text(&state.telemetry.registry().snapshot()).into();
    *cache = Some((Instant::now(), body.clone()));
    body.into()
}

fn score_json(state: &ServerState, raw: &str) -> (u16, &'static str, Body) {
    let Ok(node) = raw.parse::<usize>() else {
        return (
            400,
            "application/json",
            format!("{{\"error\":\"bad node id {raw:?}\"}}").into(),
        );
    };
    let board = state.board();
    match board.scores.get(node) {
        Some(&score) => (
            200,
            "application/json",
            format!(
                "{{\"node\":{node},\"score\":{},\"tick\":{},\"events_applied\":{}}}",
                json_f64(score),
                board.tick,
                board.events_applied
            )
            .into(),
        ),
        None => (
            404,
            "application/json",
            format!("{{\"error\":\"node {node} out of range\"}}").into(),
        ),
    }
}

/// The `top` value `/scores` serves without an explicit query.
const DEFAULT_TOP: usize = 10;

fn render_scores(board: &crate::service::ScoreBoard, order: &[u32]) -> String {
    let rows: Vec<String> = order
        .iter()
        .map(|&node| {
            format!(
                "{{\"node\":{node},\"score\":{}}}",
                json_f64(board.scores[node as usize])
            )
        })
        .collect();
    format!(
        "{{\"tick\":{},\"events_applied\":{},\"scores\":[{}]}}",
        board.tick,
        board.events_applied,
        rows.join(",")
    )
}

fn scores_json(state: &ServerState, query: &str) -> (u16, &'static str, Body) {
    let mut top = DEFAULT_TOP;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("top", raw)) => match raw.parse::<usize>() {
                Ok(n) => top = n,
                Err(_) => {
                    return (
                        400,
                        "application/json",
                        format!("{{\"error\":\"bad top value {raw:?}\"}}").into(),
                    )
                }
            },
            _ => {
                return (
                    400,
                    "application/json",
                    format!("{{\"error\":\"unknown query parameter {pair:?}\"}}").into(),
                )
            }
        }
    }
    let board = state.board();
    if top == DEFAULT_TOP {
        // The hot default renders once per tick into a shared body.
        let body = board
            .cached_scores_body
            .get_or_init(|| render_scores(&board, &board.top_nodes(DEFAULT_TOP)).into())
            .clone();
        return (200, "application/json", body.into());
    }
    let body = render_scores(&board, &board.top_nodes(top));
    (200, "application/json", body.into())
}

fn explain_json(state: &ServerState, raw: &str) -> (u16, &'static str, Body) {
    let Ok(node) = raw.parse::<u64>() else {
        return (
            400,
            "application/json",
            format!("{{\"error\":\"bad node id {raw:?}\"}}").into(),
        );
    };
    let board = state.board();
    if node >= board.scores.len() as u64 {
        return (
            404,
            "application/json",
            format!("{{\"error\":\"node {node} out of range\"}}").into(),
        );
    }
    let entries = explain_entries(&board.trace, Some(node), Some(board.cycle));
    match serde_json::to_string(&entries) {
        Ok(body) => (
            200,
            "application/json",
            format!(
                "{{\"node\":{node},\"tick\":{},\"entries\":{body}}}",
                board.tick
            )
            .into(),
        ),
        Err(e) => (
            500,
            "application/json",
            format!("{{\"error\":\"explain serialization: {e:?}\"}}").into(),
        ),
    }
}
