//! `socialtrust-server` — the long-running reputation daemon.
//!
//! ```text
//! socialtrust-server --log events.jsonl --listen 127.0.0.1:8080
//! ```
//!
//! Flags (hand-parsed; the workspace carries no CLI dependency):
//!
//! * `--log PATH` — append-only JSONL event log to tail (required;
//!   created empty if absent).
//! * `--listen ADDR` — listen address, default `127.0.0.1:8080`
//!   (port 0 picks an ephemeral port, printed on boot).
//! * `--nodes N` / `--interests N` / `--pretrusted N` — pipeline
//!   capacity (defaults 1024 / 64 / 16).
//! * `--tick-ms MS` — recompute interval, default 200.
//! * `--workers N` — HTTP worker threads, default 4.
//! * `--http-idle-ms MS` — close keep-alive connections idle longer than
//!   this, default 5000.
//! * `--http-max-requests N` — retire a keep-alive connection after N
//!   requests, default 1000.
//! * `--replay` — apply the log's existing backlog and tick once before
//!   binding, so the daemon goes live warm.
//! * `--metrics-out PATH` — write a final `MetricsExport` JSON document
//!   on shutdown.
//! * `--max-runtime-secs S` — exit cleanly after S seconds (CI smoke
//!   harnesses use this as a belt-and-braces bound alongside SIGTERM).
//! * `--log-level LEVEL` — minimum log severity
//!   (`error|warn|info|debug|trace`), default `info`.
//! * `--log-json` — emit JSONL log records instead of text.
//! * `--record-ms MS` — flight-recorder sampling interval, default 250.
//! * `--slow-ms MS` — requests at or above this latency land in the
//!   `/debug/slow` ring, default 100.
//! * `--blackbox-out PATH` — dump the flight-recorder window as JSON on
//!   shutdown or on a watchdog-detected stall.
//!
//! On SIGTERM/SIGINT the daemon drains: the ingest thread reads the log
//! to EOF, one final tick covers whatever the drain applied, HTTP
//! workers stop, the optional metrics document and blackbox are
//! written, and a one-line summary goes to stderr before a clean
//! exit 0.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use socialtrust::telemetry::{Level, Logger, MetricsExport};
use socialtrust_server::service::ServiceConfig;
use socialtrust_server::ServerConfig;

/// Flipped by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // Direct signal(2) FFI: the workspace vendors no libc crate, and the
    // handler only touches an AtomicBool (async-signal-safe).
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    config: ServerConfig,
    metrics_out: Option<PathBuf>,
    max_runtime: Option<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: socialtrust-server --log events.jsonl [--listen 127.0.0.1:8080] \
         [--nodes 1024] [--interests 64] [--pretrusted 16] [--tick-ms 200] \
         [--workers 4] [--http-idle-ms 5000] [--http-max-requests 1000] \
         [--replay] [--metrics-out PATH] [--max-runtime-secs S] \
         [--log-level info] [--log-json] [--record-ms 250] [--slow-ms 100] \
         [--blackbox-out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut log_path: Option<PathBuf> = None;
    let mut config = ServerConfig::default();
    let mut service = ServiceConfig::default();
    let mut metrics_out = None;
    let mut max_runtime = None;
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next().unwrap_or_else(|| {
            eprintln!("socialtrust-server: {flag} needs a value");
            usage();
        })
    };
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("socialtrust-server: bad value {raw:?} for {flag}");
            usage();
        })
    }
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--log" => log_path = Some(PathBuf::from(value(&mut argv, "--log"))),
            "--listen" => config.listen = value(&mut argv, "--listen"),
            "--nodes" => service.nodes = number(&value(&mut argv, "--nodes"), "--nodes"),
            "--interests" => {
                service.interests = number(&value(&mut argv, "--interests"), "--interests")
            }
            "--pretrusted" => {
                service.pretrusted = number(&value(&mut argv, "--pretrusted"), "--pretrusted")
            }
            "--tick-ms" => {
                let ms: u64 = number(&value(&mut argv, "--tick-ms"), "--tick-ms");
                config.tick_interval = Duration::from_millis(ms.max(1));
            }
            "--workers" => config.workers = number(&value(&mut argv, "--workers"), "--workers"),
            "--http-idle-ms" => {
                let ms: u64 = number(&value(&mut argv, "--http-idle-ms"), "--http-idle-ms");
                config.http_idle_timeout = Duration::from_millis(ms.max(1));
            }
            "--http-max-requests" => {
                let n: usize = number(
                    &value(&mut argv, "--http-max-requests"),
                    "--http-max-requests",
                );
                config.http_max_requests = n.max(1);
            }
            "--replay" => config.replay = true,
            "--log-level" => {
                config.log_level = number::<Level>(&value(&mut argv, "--log-level"), "--log-level")
            }
            "--log-json" => config.log_json = true,
            "--record-ms" => {
                let ms: u64 = number(&value(&mut argv, "--record-ms"), "--record-ms");
                config.record_interval = Duration::from_millis(ms.max(10));
            }
            "--slow-ms" => {
                let ms: u64 = number(&value(&mut argv, "--slow-ms"), "--slow-ms");
                config.slow_threshold = Duration::from_millis(ms);
            }
            "--blackbox-out" => {
                config.blackbox_out = Some(PathBuf::from(value(&mut argv, "--blackbox-out")))
            }
            "--metrics-out" => metrics_out = Some(PathBuf::from(value(&mut argv, "--metrics-out"))),
            "--max-runtime-secs" => {
                let secs: u64 = number(
                    &value(&mut argv, "--max-runtime-secs"),
                    "--max-runtime-secs",
                );
                max_runtime = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("socialtrust-server: unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(log_path) = log_path else {
        eprintln!("socialtrust-server: --log is required");
        usage();
    };
    config.log_path = log_path;
    config.service = service;
    Args {
        config,
        metrics_out,
        max_runtime,
    }
}

fn main() {
    let args = parse_args();
    // The binary's own logger: same level/format as the daemon's, so
    // boot and shutdown lines interleave consistently with thread logs.
    let log = Logger::stderr(args.config.log_level, args.config.log_json);
    install_signal_handlers();
    let started = Instant::now();
    let handle = match socialtrust_server::start(args.config) {
        Ok(handle) => handle,
        Err(e) => {
            log.error(
                "server",
                "failed to start",
                &[("error", e.to_string().into())],
            );
            std::process::exit(1);
        }
    };
    log.info(
        "server",
        &format!("listening on http://{}", handle.addr()),
        &[],
    );

    // The threads do all the work; the main loop just waits for a stop
    // condition (signal or runtime bound).
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            log.info("server", "signal received, draining", &[]);
            break;
        }
        if let Some(bound) = args.max_runtime {
            if started.elapsed() >= bound {
                log.info("server", "max runtime reached, draining", &[]);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let state = handle.shutdown();
    if let Some(path) = &args.metrics_out {
        let export = MetricsExport::collect(state.telemetry());
        match export.write_to(path) {
            Ok(()) => log.info(
                "server",
                "metrics written",
                &[("path", path.display().to_string().into())],
            ),
            Err(e) => log.error(
                "server",
                "failed to write metrics",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            ),
        }
    }
    let board = state.board();
    log.info(
        "server",
        &format!(
            "clean shutdown after {:.1}s — {} tick(s), {} event(s) applied",
            started.elapsed().as_secs_f64(),
            board.tick,
            board.events_applied,
        ),
        &[],
    );
}
