//! The append-only event-log schema.
//!
//! One JSON object per line, discriminated by a `"type"` field. The
//! vendored serde shim's derive cannot express data-carrying enums, so
//! events are interpreted by hand from the parsed [`Value`] tree — which
//! also gives precise, line-oriented error messages for the
//! malformed-event counters.
//!
//! ```json
//! {"type":"rating","rater":3,"ratee":9,"value":1.0,"interest":2}
//! {"type":"edge_add","a":3,"b":9,"rel":"friend"}
//! {"type":"edge_remove","a":3,"b":9}
//! {"type":"profile","node":3,"declare":[1,2],"requests":[[2,5]]}
//! ```
//!
//! * `rating` — a reputation rating `rater → ratee` in `[-1, 1]`; the
//!   optional `interest` category also records a service request (the
//!   interaction substrate Eq. (2)/(11) read). Without it, a plain
//!   interaction of weight 1 is recorded.
//! * `edge_add` / `edge_remove` — social-relationship churn; `rel` is
//!   `"friend"` (default), `"colleague"`, or `"kin"`.
//! * `profile` — interest-profile update: `declare` inserts declared
//!   categories, `requests` adds `[category, count]` request weight.

use serde::Value;
use socialtrust::socnet::relationship::Relationship;

/// One parsed event-log line.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerEvent {
    /// `rater` rates `ratee` with `value`, optionally under an interest
    /// category (which also logs a service request).
    Rating {
        rater: u32,
        ratee: u32,
        value: f64,
        interest: Option<u16>,
    },
    /// Add one social relationship between `a` and `b`.
    EdgeAdd { a: u32, b: u32, rel: RelKind },
    /// Remove the `a`–`b` edge entirely (all relationships).
    EdgeRemove { a: u32, b: u32 },
    /// Update `node`'s interest profile.
    Profile {
        node: u32,
        declare: Vec<u16>,
        requests: Vec<(u16, u64)>,
    },
}

/// Relationship kind carried by an `edge_add` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    Friend,
    Colleague,
    Kin,
}

impl RelKind {
    /// The socnet relationship this kind maps to.
    pub fn relationship(self) -> Relationship {
        match self {
            RelKind::Friend => Relationship::friendship(),
            RelKind::Colleague => Relationship::colleague(),
            RelKind::Kin => Relationship::kinship(),
        }
    }

    fn parse(raw: &str) -> Result<RelKind, String> {
        match raw {
            "friend" | "friendship" => Ok(RelKind::Friend),
            "colleague" => Ok(RelKind::Colleague),
            "kin" | "kinship" => Ok(RelKind::Kin),
            other => Err(format!("unknown rel {other:?} (friend|colleague|kin)")),
        }
    }
}

fn field<'v>(obj: &'v Value, key: &str) -> Result<&'v Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn node_field(obj: &Value, key: &str) -> Result<u32, String> {
    let v = field(obj, key)?;
    let id = v
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))?;
    u32::try_from(id).map_err(|_| format!("field {key:?} out of node range"))
}

fn interest_id(v: &Value, what: &str) -> Result<u16, String> {
    let id = v
        .as_u64()
        .ok_or_else(|| format!("{what} is not a non-negative integer"))?;
    u16::try_from(id).map_err(|_| format!("{what} out of interest range"))
}

/// Parse one event-log line. Errors name the offending field so the
/// ingest loop can log a useful skip message.
pub fn parse_event(line: &str) -> Result<ServerEvent, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e:?}"))?;
    if !value.is_object() {
        return Err("event line is not a JSON object".into());
    }
    let kind = field(&value, "type")?
        .as_str()
        .ok_or("field \"type\" is not a string")?;
    match kind {
        "rating" => {
            let rater = node_field(&value, "rater")?;
            let ratee = node_field(&value, "ratee")?;
            if rater == ratee {
                return Err("self-rating is not allowed".into());
            }
            let raw = field(&value, "value")?
                .as_f64()
                .ok_or("field \"value\" is not a number")?;
            if !raw.is_finite() || !(-1.0..=1.0).contains(&raw) {
                return Err(format!("rating value {raw} outside [-1, 1]"));
            }
            let interest = match value.get("interest") {
                None | Some(Value::Null) => None,
                Some(v) => Some(interest_id(v, "field \"interest\"")?),
            };
            Ok(ServerEvent::Rating {
                rater,
                ratee,
                value: raw,
                interest,
            })
        }
        "edge_add" => {
            let a = node_field(&value, "a")?;
            let b = node_field(&value, "b")?;
            if a == b {
                return Err("self-edge is not allowed".into());
            }
            let rel = match value.get("rel") {
                None | Some(Value::Null) => RelKind::Friend,
                Some(v) => RelKind::parse(v.as_str().ok_or("field \"rel\" is not a string")?)?,
            };
            Ok(ServerEvent::EdgeAdd { a, b, rel })
        }
        "edge_remove" => {
            let a = node_field(&value, "a")?;
            let b = node_field(&value, "b")?;
            if a == b {
                return Err("self-edge is not allowed".into());
            }
            Ok(ServerEvent::EdgeRemove { a, b })
        }
        "profile" => {
            let node = node_field(&value, "node")?;
            let mut declare = Vec::new();
            if let Some(v) = value.get("declare") {
                let items = v.as_array().ok_or("field \"declare\" is not an array")?;
                for item in items {
                    declare.push(interest_id(item, "declare entry")?);
                }
            }
            let mut requests = Vec::new();
            if let Some(v) = value.get("requests") {
                let items = v.as_array().ok_or("field \"requests\" is not an array")?;
                for item in items {
                    let pair = item
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or("requests entry is not a [category, count] pair")?;
                    let id = interest_id(&pair[0], "requests category")?;
                    let count = pair[1]
                        .as_u64()
                        .ok_or("requests count is not a non-negative integer")?;
                    requests.push((id, count));
                }
            }
            if declare.is_empty() && requests.is_empty() {
                return Err("profile event updates nothing".into());
            }
            Ok(ServerEvent::Profile {
                node,
                declare,
                requests,
            })
        }
        other => Err(format!(
            "unknown event type {other:?} (rating|edge_add|edge_remove|profile)"
        )),
    }
}

/// Render `event` back as one canonical log line (used by tests, benches,
/// and fixture generation — hand-built because the serde shim's derive
/// cannot emit tagged enums).
pub fn render_event(event: &ServerEvent) -> String {
    match event {
        ServerEvent::Rating {
            rater,
            ratee,
            value,
            interest,
        } => match interest {
            Some(i) => format!(
                "{{\"type\":\"rating\",\"rater\":{rater},\"ratee\":{ratee},\"value\":{value},\"interest\":{i}}}"
            ),
            None => format!(
                "{{\"type\":\"rating\",\"rater\":{rater},\"ratee\":{ratee},\"value\":{value}}}"
            ),
        },
        ServerEvent::EdgeAdd { a, b, rel } => {
            let rel = match rel {
                RelKind::Friend => "friend",
                RelKind::Colleague => "colleague",
                RelKind::Kin => "kin",
            };
            format!("{{\"type\":\"edge_add\",\"a\":{a},\"b\":{b},\"rel\":\"{rel}\"}}")
        }
        ServerEvent::EdgeRemove { a, b } => {
            format!("{{\"type\":\"edge_remove\",\"a\":{a},\"b\":{b}}}")
        }
        ServerEvent::Profile {
            node,
            declare,
            requests,
        } => {
            let declare: Vec<String> = declare.iter().map(u16::to_string).collect();
            let requests: Vec<String> = requests
                .iter()
                .map(|(id, count)| format!("[{id},{count}]"))
                .collect();
            format!(
                "{{\"type\":\"profile\",\"node\":{node},\"declare\":[{}],\"requests\":[{}]}}",
                declare.join(","),
                requests.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_event_kind() {
        let cases = [
            (
                r#"{"type":"rating","rater":3,"ratee":9,"value":1.0,"interest":2}"#,
                ServerEvent::Rating {
                    rater: 3,
                    ratee: 9,
                    value: 1.0,
                    interest: Some(2),
                },
            ),
            (
                r#"{"type":"rating","rater":3,"ratee":9,"value":-0.5}"#,
                ServerEvent::Rating {
                    rater: 3,
                    ratee: 9,
                    value: -0.5,
                    interest: None,
                },
            ),
            (
                r#"{"type":"edge_add","a":1,"b":2,"rel":"kin"}"#,
                ServerEvent::EdgeAdd {
                    a: 1,
                    b: 2,
                    rel: RelKind::Kin,
                },
            ),
            (
                r#"{"type":"edge_add","a":1,"b":2}"#,
                ServerEvent::EdgeAdd {
                    a: 1,
                    b: 2,
                    rel: RelKind::Friend,
                },
            ),
            (
                r#"{"type":"edge_remove","a":1,"b":2}"#,
                ServerEvent::EdgeRemove { a: 1, b: 2 },
            ),
            (
                r#"{"type":"profile","node":4,"declare":[1,2],"requests":[[2,5]]}"#,
                ServerEvent::Profile {
                    node: 4,
                    declare: vec![1, 2],
                    requests: vec![(2, 5)],
                },
            ),
        ];
        for (line, expected) in cases {
            assert_eq!(parse_event(line).as_ref(), Ok(&expected), "{line}");
        }
    }

    #[test]
    fn render_round_trips() {
        let events = [
            ServerEvent::Rating {
                rater: 7,
                ratee: 8,
                value: 0.25,
                interest: Some(11),
            },
            ServerEvent::EdgeAdd {
                a: 0,
                b: 5,
                rel: RelKind::Colleague,
            },
            ServerEvent::EdgeRemove { a: 0, b: 5 },
            ServerEvent::Profile {
                node: 2,
                declare: vec![3],
                requests: vec![(3, 9), (4, 1)],
            },
        ];
        for event in events {
            assert_eq!(parse_event(&render_event(&event)), Ok(event));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = [
            "not json at all",
            "{}",
            r#"{"type":"rating","rater":1,"ratee":1,"value":1.0}"#,
            r#"{"type":"rating","rater":1,"ratee":2,"value":7.0}"#,
            r#"{"type":"rating","rater":1,"ratee":2,"value":"high"}"#,
            r#"{"type":"edge_add","a":4,"b":4}"#,
            r#"{"type":"edge_add","a":4,"b":5,"rel":"enemy"}"#,
            r#"{"type":"profile","node":1}"#,
            r#"{"type":"warp","a":1}"#,
            r#"[1,2,3]"#,
        ];
        for line in bad {
            assert!(parse_event(line).is_err(), "accepted {line}");
        }
    }
}
