//! The in-process reputation pipeline behind the daemon: event
//! application, tick-based recompute, and published score boards.
//!
//! [`ReputationService`] owns the live substrate (a [`SharedSocialContext`]
//! wrapping `SocialGraph` + `InteractionTracker` + interest profiles) and
//! the decorated engine (`WithSocialTrust<EigenTrust>` — warm-started
//! blocked power iteration behind the B1–B4 detector and Gaussian
//! rescaling). Events mutate the live substrate through `DirtyLog`; the
//! per-cycle snapshot refresh inside `end_cycle` turns that dirt into
//! incremental CSR shard patches.
//!
//! Consistency contract: queries never see a half-applied state. A tick
//! (`ReputationService::tick`) runs one full `end_cycle` and publishes an
//! immutable [`ScoreBoard`]; HTTP readers hold one `Arc<ScoreBoard>` for a
//! whole request. The **tick journal** records the cumulative event count
//! at every completed tick, which makes the daemon's output exactly
//! reproducible offline: [`replay_offline`] applies the same events with
//! the same tick boundaries and yields bit-for-bit identical scores (the
//! integration tests enforce this over HTTP).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use socialtrust::prelude::*;
use socialtrust::telemetry::trace::names as trace_names;
use socialtrust::telemetry::TraceDump;

use crate::event::ServerEvent;

/// Fixed-capacity pipeline parameters. The engine's node count is set at
/// construction (EigenTrust's trust vector and pretrust distribution are
/// sized once), so the daemon rejects events that reference ids at or
/// beyond `nodes` instead of growing.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Node capacity. Events referencing ids `>= nodes` are rejected.
    pub nodes: usize,
    /// Interest-category universe for Ωs bitsets.
    pub interests: u16,
    /// The first `pretrusted` node ids form the EigenTrust pretrust set.
    pub pretrusted: usize,
    /// SocialTrust thresholds and measurement modes.
    pub social: SocialTrustConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            nodes: 1024,
            interests: 64,
            pretrusted: 16,
            social: SocialTrustConfig::default(),
        }
    }
}

/// How many ranked nodes the per-tick score index keeps. `/scores`
/// requests with `top` at or below this are an O(top) slice of the
/// shared prefix; larger requests fall back to a per-request partial
/// sort (`select_nth_unstable_by`), still avoiding a full-vector sort.
const RANK_PREFIX: usize = 1024;

/// One published, immutable view of the pipeline after a completed tick.
#[derive(Debug)]
pub struct ScoreBoard {
    /// Completed-tick count (0 for the boot board).
    pub tick: u64,
    /// Trace-cycle id of the most recent tick (`tick - 1`), used to join
    /// `/explain` queries against `trace`.
    pub cycle: u64,
    /// Cumulative events applied when this board was published.
    pub events_applied: u64,
    /// The full trust vector as of this tick.
    pub scores: Vec<f64>,
    /// The tick journal as of this board (cumulative applied-event count
    /// per tick). Published here so `/journal` never takes the service
    /// mutex.
    pub journal: Vec<u64>,
    /// Decision-provenance spans of the most recent tick (drained from
    /// the tracer, so each board carries exactly its own cycle).
    pub trace: TraceDump,
    /// Lazily-built score-descending index prefix (see [`RANK_PREFIX`]);
    /// the tick thread warms it once per publish, off the request path.
    ranking: OnceLock<Arc<[u32]>>,
    /// Lazily-rendered body for the default `/scores` request.
    pub cached_scores_body: OnceLock<Arc<str>>,
    /// Lazily-rendered `/journal` body.
    pub cached_journal_body: OnceLock<Arc<str>>,
}

impl ScoreBoard {
    /// Deterministic ranking order: score descending, node id ascending
    /// on ties (matching the pre-cache `/scores` sort exactly).
    fn rank_cmp(scores: &[f64]) -> impl Fn(&u32, &u32) -> std::cmp::Ordering + '_ {
        |&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        }
    }

    /// The `k` best-ranked node ids, in order. `select_nth_unstable_by`
    /// partitions the top `k` in O(n), then only the prefix is sorted —
    /// no full-vector O(n log n) sort for any `k < n`.
    fn rank_top(scores: &[f64], k: usize) -> Vec<u32> {
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        let k = k.min(order.len());
        if k < order.len() {
            order.select_nth_unstable_by(k, Self::rank_cmp(scores));
            order.truncate(k);
        }
        order.sort_unstable_by(Self::rank_cmp(scores));
        order
    }

    /// The shared score-descending index prefix, built at most once per
    /// board. [`crate::ServerState`] warms it from the tick thread right
    /// after publishing, so requests normally never pay for it.
    pub fn ranking(&self) -> &Arc<[u32]> {
        self.ranking
            .get_or_init(|| Self::rank_top(&self.scores, RANK_PREFIX).into())
    }

    /// The `top` best-ranked node ids: an O(top) slice of the shared
    /// prefix when it covers the request, else a per-request partial
    /// sort.
    pub fn top_nodes(&self, top: usize) -> Vec<u32> {
        let ranking = self.ranking();
        if top <= ranking.len() || ranking.len() == self.scores.len() {
            ranking[..top.min(ranking.len())].to_vec()
        } else {
            Self::rank_top(&self.scores, top)
        }
    }
}

/// The live pipeline plus its tick journal.
pub struct ReputationService {
    ctx: SharedSocialContext,
    engine: WithSocialTrust<EigenTrust>,
    telemetry: Telemetry,
    config: ServiceConfig,
    events_applied: u64,
    events_rejected: u64,
    /// Cumulative `events_applied` at each completed tick.
    journal: Vec<u64>,
}

impl ReputationService {
    /// Build an empty pipeline at `config` capacity, instrumented into
    /// `telemetry` (whose tracer should sample every cycle if `/explain`
    /// is to serve non-empty answers).
    pub fn new(config: ServiceConfig, telemetry: &Telemetry) -> ReputationService {
        assert!(config.nodes >= 2, "server needs at least two nodes");
        let mut ctx_inner = SocialContext::new(config.nodes, config.interests);
        ctx_inner.attach_telemetry(telemetry);
        let ctx = SharedSocialContext::new(ctx_inner);
        let pretrusted: Vec<NodeId> = (0..config.pretrusted.clamp(1, config.nodes))
            .map(NodeId::from)
            .collect();
        let mut engine = WithSocialTrust::new(
            EigenTrust::with_defaults(config.nodes, &pretrusted),
            ctx.clone(),
            config.social,
        );
        engine.attach_telemetry(telemetry);
        ReputationService {
            ctx,
            engine,
            telemetry: telemetry.clone(),
            config,
            events_applied: 0,
            events_rejected: 0,
            journal: Vec::new(),
        }
    }

    /// The pipeline's fixed configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Cumulative applied-event count.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Events rejected for referencing out-of-capacity nodes.
    pub fn events_rejected(&self) -> u64 {
        self.events_rejected
    }

    /// Events applied since the last completed tick.
    pub fn pending_events(&self) -> u64 {
        self.events_applied - self.journal.last().copied().unwrap_or(0)
    }

    /// The tick journal: cumulative `events_applied` at each tick.
    pub fn journal(&self) -> &[u64] {
        &self.journal
    }

    fn in_range(&self, id: u32) -> bool {
        (id as usize) < self.config.nodes
    }

    /// Apply one event to the live substrate. Returns `Err` (and counts a
    /// rejection) when the event references a node outside the fixed
    /// capacity; never panics on any [`ServerEvent`].
    pub fn apply(&mut self, event: &ServerEvent) -> Result<(), String> {
        let reject = |this: &mut Self, what: String| {
            this.events_rejected += 1;
            Err(what)
        };
        match *event {
            ServerEvent::Rating {
                rater,
                ratee,
                value,
                interest,
            } => {
                if !self.in_range(rater) || !self.in_range(ratee) {
                    return reject(self, format!("rating {rater}->{ratee} out of capacity"));
                }
                if interest.is_some_and(|i| i >= self.config.interests) {
                    return reject(
                        self,
                        format!("rating {rater}->{ratee} interest out of capacity"),
                    );
                }
                let (rater, ratee) = (NodeId(rater), NodeId(ratee));
                let rating = match interest {
                    Some(i) => Rating::with_interest(rater, ratee, value, InterestId(i)),
                    None => Rating::new(rater, ratee, value),
                };
                self.engine.record(rating);
                let mut ctx = self.ctx.write();
                match interest {
                    Some(i) => ctx.record_request(rater, ratee, InterestId(i)),
                    None => ctx.record_interaction(rater, ratee, 1.0),
                }
            }
            ServerEvent::EdgeAdd { a, b, rel } => {
                if !self.in_range(a) || !self.in_range(b) {
                    return reject(self, format!("edge_add {a}-{b} out of capacity"));
                }
                self.ctx.write().graph_mut().add_relationship(
                    NodeId(a),
                    NodeId(b),
                    rel.relationship(),
                );
            }
            ServerEvent::EdgeRemove { a, b } => {
                if !self.in_range(a) || !self.in_range(b) {
                    return reject(self, format!("edge_remove {a}-{b} out of capacity"));
                }
                self.ctx
                    .write()
                    .graph_mut()
                    .remove_edge(NodeId(a), NodeId(b));
            }
            ServerEvent::Profile {
                node,
                ref declare,
                ref requests,
            } => {
                if !self.in_range(node) {
                    return reject(self, format!("profile {node} out of capacity"));
                }
                if declare
                    .iter()
                    .chain(requests.iter().map(|(id, _)| id))
                    .any(|&id| id >= self.config.interests)
                {
                    return reject(self, format!("profile {node} interest out of capacity"));
                }
                let mut ctx = self.ctx.write();
                let profile = ctx.profile_mut(NodeId(node));
                for &id in declare {
                    profile.declared_mut().insert(InterestId(id));
                }
                for &(id, count) in requests {
                    profile.record_requests(InterestId(id), count);
                }
            }
        }
        self.events_applied += 1;
        Ok(())
    }

    /// Run one reputation cycle (detector pass, Gaussian rescaling,
    /// warm-started blocked EigenTrust) under a provenance trace root,
    /// append the tick to the journal, and return the published board.
    pub fn tick(&mut self) -> Arc<ScoreBoard> {
        let cycle = self.journal.len() as u64;
        {
            let mut root = self.telemetry.tracer().begin_root(trace_names::CYCLE);
            if root.is_recording() {
                root.set_attr("cycle", cycle);
                root.set_attr("system", self.engine.name());
            }
            self.engine.end_cycle();
        }
        self.journal.push(self.events_applied);
        Arc::new(ScoreBoard {
            tick: self.journal.len() as u64,
            cycle,
            events_applied: self.events_applied,
            scores: self.engine.reputations().to_vec(),
            journal: self.journal.clone(),
            // Drain the ring so each board carries exactly this tick's
            // spans and tracer memory stays bounded across long runs.
            trace: TraceDump {
                traces: self.telemetry.tracer().take_traces(),
                stats: self.telemetry.tracer().stats(),
            },
            ranking: OnceLock::new(),
            cached_scores_body: OnceLock::new(),
            cached_journal_body: OnceLock::new(),
        })
    }

    /// The pre-first-tick board: initial (pretrust-distribution) scores,
    /// no provenance.
    pub fn boot_board(&self) -> Arc<ScoreBoard> {
        Arc::new(ScoreBoard {
            tick: self.journal.len() as u64,
            cycle: (self.journal.len() as u64).saturating_sub(1),
            events_applied: self.events_applied,
            scores: self.engine.reputations().to_vec(),
            journal: self.journal.clone(),
            trace: TraceDump {
                traces: Vec::new(),
                stats: self.telemetry.tracer().stats(),
            },
            ranking: OnceLock::new(),
            cached_scores_body: OnceLock::new(),
            cached_journal_body: OnceLock::new(),
        })
    }
}

/// Replay `events` through a fresh pipeline with the exact tick
/// boundaries of `journal` (cumulative applied-event counts, as served by
/// the daemon's `/journal` endpoint) and return the final board. Because
/// the daemon and this function share every code path below the thread
/// layer, the result is bit-for-bit identical to what the live server
/// published — the integration contract for `/score`.
///
/// Events that the live server rejected (out-of-capacity ids) must be
/// filtered out by the caller; `journal` counts applied events only.
pub fn replay_offline(
    config: ServiceConfig,
    events: &[ServerEvent],
    journal: &[u64],
) -> Arc<ScoreBoard> {
    let telemetry = Telemetry::with_parts(
        EventSink::disabled(),
        Tracer::new(TracerConfig::with_sample(SampleMode::Full)),
    );
    let mut service = ReputationService::new(config, &telemetry);
    let mut next = 0usize;
    let mut board = service.boot_board();
    for &boundary in journal {
        let boundary = boundary as usize;
        assert!(
            boundary <= events.len(),
            "journal boundary {boundary} beyond {} events",
            events.len()
        );
        for event in &events[next..boundary] {
            service
                .apply(event)
                .expect("replayed events were applied by the live server");
        }
        next = boundary;
        board = service.tick();
    }
    board
}

/// Operational health of the daemon, derived by the watchdog (and on
/// demand by `/healthz`) from the tick thread's heartbeat age, the live
/// ingest lag, and the worker-panic count.
///
/// The states are ordered by severity, and the derivation is monotone in
/// its inputs:
///
/// * **Ok** — the tick thread beat recently and ingest is keeping up.
/// * **Degraded** — still ticking, but the oldest pending (unticked)
///   event has waited longer than `degraded_after`, or an HTTP worker
///   has panicked since boot. Queries are served but answers lag.
/// * **Stalled** — the tick thread has not beaten its heartbeat within
///   `stall_after`. `/healthz` reports 503 so load balancers stop
///   routing to this instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Ticking on schedule, ingest keeping up.
    Ok,
    /// Ticking, but ingest lag exceeds the threshold or a worker panicked.
    Degraded,
    /// Tick-thread heartbeat is older than the stall threshold.
    Stalled,
}

impl HealthState {
    /// Lowercase wire name used in `/healthz` JSON and transition logs.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Stalled => "stalled",
        }
    }

    /// Value published on the `server_health_state` gauge (0/1/2).
    pub fn gauge_value(self) -> f64 {
        match self {
            HealthState::Ok => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Stalled => 2.0,
        }
    }

    /// HTTP status `/healthz` answers with in this state: 503 only when
    /// stalled, so degraded instances keep serving (their answers are
    /// correct, just lagging).
    pub fn http_status(self) -> u16 {
        match self {
            HealthState::Stalled => 503,
            _ => 200,
        }
    }
}

/// Heartbeat-driven health derivation, shared by the tick thread (which
/// beats it), the watchdog (which samples it on the recorder interval),
/// and `/healthz` (which assesses it per request).
///
/// The heartbeat is stored as milliseconds since a construction-time
/// anchor in an `AtomicU64`, so beating is a single relaxed store and the
/// machine needs no lock.
#[derive(Debug)]
pub struct HealthMachine {
    started: Instant,
    /// Milliseconds since `started` of the most recent beat.
    heartbeat_ms: AtomicU64,
    stall_after: Duration,
    degraded_after: Duration,
}

impl HealthMachine {
    /// A machine whose heartbeat starts "fresh" (age zero at boot, so a
    /// daemon is Ok until it has actually missed `stall_after`).
    pub fn new(stall_after: Duration, degraded_after: Duration) -> Self {
        HealthMachine {
            started: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            stall_after,
            degraded_after,
        }
    }

    /// Records a tick-thread heartbeat (called every scheduler slice, not
    /// just on completed ticks, so slow ticks don't read as stalls).
    pub fn beat(&self) {
        let ms = self.started.elapsed().as_millis() as u64;
        self.heartbeat_ms.store(ms, Ordering::Relaxed);
    }

    /// Time since the most recent beat.
    pub fn heartbeat_age(&self) -> Duration {
        let beat = Duration::from_millis(self.heartbeat_ms.load(Ordering::Relaxed));
        self.started.elapsed().saturating_sub(beat)
    }

    /// Stall threshold this machine was built with.
    pub fn stall_after(&self) -> Duration {
        self.stall_after
    }

    /// Derives the current state from the heartbeat age, the live lag of
    /// the oldest pending (unticked) event, and the worker-panic count.
    pub fn assess(&self, ingest_lag: Option<Duration>, worker_panics: u64) -> HealthState {
        if self.heartbeat_age() >= self.stall_after {
            return HealthState::Stalled;
        }
        let lagging = ingest_lag.is_some_and(|lag| lag >= self.degraded_after);
        if lagging || worker_panics > 0 {
            return HealthState::Degraded;
        }
        HealthState::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RelKind;

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            nodes: 16,
            interests: 8,
            pretrusted: 2,
            ..ServiceConfig::default()
        }
    }

    fn telemetry() -> Telemetry {
        Telemetry::with_parts(
            EventSink::disabled(),
            Tracer::new(TracerConfig::with_sample(SampleMode::Full)),
        )
    }

    #[test]
    fn applies_events_and_ticks() {
        let t = telemetry();
        let mut svc = ReputationService::new(small_config(), &t);
        svc.apply(&ServerEvent::EdgeAdd {
            a: 1,
            b: 2,
            rel: RelKind::Friend,
        })
        .unwrap();
        svc.apply(&ServerEvent::Rating {
            rater: 1,
            ratee: 2,
            value: 1.0,
            interest: Some(3),
        })
        .unwrap();
        assert_eq!(svc.pending_events(), 2);
        let board = svc.tick();
        assert_eq!(board.tick, 1);
        assert_eq!(board.events_applied, 2);
        assert_eq!(board.scores.len(), 16);
        assert_eq!(svc.journal(), &[2]);
        assert_eq!(svc.pending_events(), 0);
        let total: f64 = board.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "trust vector sums to 1");
    }

    #[test]
    fn rejects_out_of_capacity_events() {
        let t = telemetry();
        let mut svc = ReputationService::new(small_config(), &t);
        assert!(svc
            .apply(&ServerEvent::Rating {
                rater: 1,
                ratee: 99,
                value: 1.0,
                interest: None,
            })
            .is_err());
        assert!(svc
            .apply(&ServerEvent::EdgeAdd {
                a: 99,
                b: 1,
                rel: RelKind::Kin,
            })
            .is_err());
        assert!(svc
            .apply(&ServerEvent::Profile {
                node: 1,
                declare: vec![200],
                requests: vec![],
            })
            .is_err());
        assert_eq!(svc.events_rejected(), 3);
        assert_eq!(svc.events_applied(), 0);
    }

    #[test]
    fn ranking_prefix_matches_full_sort() {
        // Synthetic scores with duplicates so the node-id tie-break is
        // exercised; compare against the pre-cache full-sort ordering.
        let scores: Vec<f64> = (0..4000u32)
            .map(|k| (k.wrapping_mul(2654435761).rotate_right(7) % 97) as f64 / 97.0)
            .collect();
        let mut full: Vec<u32> = (0..scores.len() as u32).collect();
        full.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for k in [0usize, 1, 10, 96, 1023, 1024, 1025, 3999, 4000, 5000] {
            assert_eq!(
                ScoreBoard::rank_top(&scores, k),
                full[..k.min(full.len())],
                "rank_top({k}) diverged from the full sort"
            );
        }
    }

    #[test]
    fn board_top_nodes_covers_prefix_and_fallback() {
        let t = telemetry();
        let mut svc = ReputationService::new(small_config(), &t);
        svc.apply(&ServerEvent::Rating {
            rater: 1,
            ratee: 2,
            value: 1.0,
            interest: None,
        })
        .unwrap();
        let board = svc.tick();
        assert_eq!(board.journal, vec![1], "journal published on the board");
        // 16 nodes < RANK_PREFIX: the prefix is the full ranking, and
        // any top (including past the end) slices it consistently.
        assert_eq!(board.ranking().len(), 16);
        assert_eq!(board.top_nodes(5), board.ranking()[..5].to_vec());
        assert_eq!(board.top_nodes(100), board.ranking().to_vec());
        let scores = &board.scores;
        for pair in board.top_nodes(16).windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            assert!(
                scores[a] > scores[b] || (scores[a] == scores[b] && a < b),
                "ranking out of order at {a}/{b}"
            );
        }
    }

    #[test]
    fn replay_matches_live_sequence_bit_for_bit() {
        let events: Vec<ServerEvent> = (0..40)
            .map(|k| match k % 4 {
                0 => ServerEvent::EdgeAdd {
                    a: k % 8,
                    b: (k + 1) % 8,
                    rel: RelKind::Friend,
                },
                1 => ServerEvent::Rating {
                    rater: k % 8,
                    ratee: (k + 3) % 8,
                    value: if k % 8 == 0 { -1.0 } else { 1.0 },
                    interest: Some((k % 5) as u16),
                },
                2 => ServerEvent::Profile {
                    node: k % 8,
                    declare: vec![(k % 7) as u16],
                    requests: vec![((k % 7) as u16, 2)],
                },
                _ => ServerEvent::Rating {
                    rater: (k + 2) % 8,
                    ratee: k % 8,
                    value: 0.5,
                    interest: None,
                },
            })
            .collect();
        // "Live" pass: irregular tick boundaries.
        let t = telemetry();
        let mut live = ReputationService::new(small_config(), &t);
        let mut board = live.boot_board();
        for (idx, event) in events.iter().enumerate() {
            live.apply(event).unwrap();
            if idx % 7 == 6 {
                board = live.tick();
            }
        }
        board = if live.pending_events() > 0 {
            live.tick()
        } else {
            board
        };
        // Offline replay with the recorded journal.
        let replayed = replay_offline(small_config(), &events, live.journal());
        assert_eq!(board.tick, replayed.tick);
        assert_eq!(board.events_applied, replayed.events_applied);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&board.scores), bits(&replayed.scores));
    }

    #[test]
    fn health_machine_derives_states_monotonically() {
        let hm = HealthMachine::new(Duration::from_millis(80), Duration::from_millis(40));
        // Fresh machine: heartbeat age ~0 → Ok.
        assert_eq!(hm.assess(None, 0), HealthState::Ok);
        // Ingest lag below the degraded threshold is still Ok.
        assert_eq!(
            hm.assess(Some(Duration::from_millis(10)), 0),
            HealthState::Ok
        );
        // Lag at/over the threshold, or any worker panic, degrades.
        assert_eq!(
            hm.assess(Some(Duration::from_millis(40)), 0),
            HealthState::Degraded
        );
        assert_eq!(hm.assess(None, 1), HealthState::Degraded);
        // A missed heartbeat dominates everything else.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(hm.assess(None, 0), HealthState::Stalled);
        assert_eq!(hm.assess(Some(Duration::ZERO), 0), HealthState::Stalled);
        // Beating recovers the machine.
        hm.beat();
        assert_eq!(hm.assess(None, 0), HealthState::Ok);
        assert!(hm.heartbeat_age() < Duration::from_millis(50));
        // Severity ordering and wire constants.
        assert!(HealthState::Ok < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Stalled);
        assert_eq!(HealthState::Stalled.as_str(), "stalled");
        assert_eq!(HealthState::Stalled.http_status(), 503);
        assert_eq!(HealthState::Degraded.http_status(), 200);
        assert_eq!(HealthState::Degraded.gauge_value(), 1.0);
    }
}
