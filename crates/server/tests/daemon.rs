//! End-to-end daemon tests over real sockets.
//!
//! * `scores_match_offline_replay_bit_for_bit` — the ISSUE's core
//!   contract: boot on an ephemeral port, append events to the log, wait
//!   for ticks, and require every `/score/{node}` response to carry the
//!   exact f64 bit pattern that [`replay_offline`] computes from the same
//!   events and the `/journal` tick boundaries.
//! * `malformed_events_are_counted_and_skipped` — garbage lines never
//!   panic the daemon; they are counted in `/healthz` and `/metrics`
//!   while the valid lines around them still apply.
//! * `sigterm_exits_cleanly` — the installed binary drains and exits 0
//!   on SIGTERM.
//! * keep-alive conformance — sequential requests on one socket,
//!   pipelined pairs answered in order, a malformed second request gets
//!   a 400 and a clean close, idle connections are reaped on the
//!   configured timeout, the per-connection request cap retires
//!   connections with `Connection: close`, and shutdown drains in-flight
//!   keep-alive connections before the workers exit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use socialtrust_server::event::{render_event, RelKind, ServerEvent};
use socialtrust_server::service::{replay_offline, ServiceConfig};
use socialtrust_server::{start, ServerConfig, ServerHandle};

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    // One-shot client: `Connection: close` lets `read_to_string` frame
    // the response by EOF (the server keeps HTTP/1.1 connections alive
    // otherwise).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// A keep-alive test client over one socket: no `Connection:` header
/// (HTTP/1.1 defaults to keep-alive), responses framed by
/// `Content-Length`.
struct KaConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KaConn {
    fn connect(addr: SocketAddr) -> KaConn {
        let stream = TcpStream::connect(addr).expect("connect keep-alive");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        KaConn {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, target: &str) {
        self.stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write keep-alive request");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write raw bytes");
    }

    /// Read one response. Returns `(status, head, body)`.
    fn read_response(&mut self) -> (u16, String, String) {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed before a full response head");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf-8 head");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparsable head: {head:?}"));
        let content_length: usize = head
            .split("\r\n")
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("content-length value"))
            })
            .expect("response carries content-length");
        while self.buf.len() < head_end + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[head_end..head_end + content_length].to_vec())
            .expect("utf-8 body");
        self.buf.drain(..head_end + content_length);
        (status, head, body)
    }

    /// Expect the server to close this connection: the next read must
    /// return EOF (not a reset, not a timeout).
    fn expect_eof(&mut self) {
        let mut chunk = [0u8; 256];
        match self.stream.read(&mut chunk) {
            Ok(0) => {}
            Ok(n) => panic!(
                "expected EOF, got {n} bytes: {:?}",
                String::from_utf8_lossy(&chunk[..n])
            ),
            Err(e) => panic!("expected clean EOF, got error: {e}"),
        }
    }
}

/// Pull one numeric field out of a flat JSON body.
fn json_number(body: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body:?}"));
    let rest = &body[at + needle.len()..];
    let end = rest
        .find([',', '}', ']'])
        .unwrap_or_else(|| panic!("unterminated {key:?} in {body:?}"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key:?} in {body:?}"))
}

fn append_lines(path: &Path, lines: &[String]) {
    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("open log");
    for line in lines {
        writeln!(log, "{line}").expect("append line");
    }
    log.flush().expect("flush log");
}

/// Append raw bytes (for lines that are deliberately not valid UTF-8).
fn append_raw(path: &Path, bytes: &[u8]) {
    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("open log");
    log.write_all(bytes).expect("append raw bytes");
    log.flush().expect("flush log");
}

/// Poll `/healthz` until it answers `want_status` with the given
/// `"status"` value; returns the matching body.
fn wait_for_health(addr: SocketAddr, want_status: u16, want_state: &str) -> String {
    let needle = format!("\"status\":\"{want_state}\"");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(addr, "/healthz");
        if status == want_status && body.contains(&needle) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never reached {want_status}/{want_state}: last {status} {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_for_applied(addr: SocketAddr, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "healthz failed: {body}");
        if json_number(&body, "events_applied") as u64 >= expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never applied {expected} events: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn boot_tuned(
    dir: &Path,
    config: ServiceConfig,
    tick: Duration,
    tune: impl FnOnce(&mut ServerConfig),
) -> ServerHandle {
    let log_path = dir.join("events.jsonl");
    let mut server = ServerConfig {
        log_path,
        listen: "127.0.0.1:0".to_owned(),
        service: config,
        tick_interval: tick,
        workers: 2,
        replay: false,
        ..ServerConfig::default()
    };
    tune(&mut server);
    start(server).expect("daemon boots on an ephemeral port")
}

fn boot(dir: &Path, config: ServiceConfig, tick: Duration) -> ServerHandle {
    boot_tuned(dir, config, tick, |_| {})
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("st-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fixture_events() -> Vec<ServerEvent> {
    let mut events = Vec::new();
    for k in 0u32..12 {
        events.push(ServerEvent::EdgeAdd {
            a: k % 8,
            b: (k + 1) % 8,
            rel: match k % 3 {
                0 => RelKind::Friend,
                1 => RelKind::Colleague,
                _ => RelKind::Kin,
            },
        });
    }
    for k in 0u32..8 {
        events.push(ServerEvent::Profile {
            node: k,
            declare: vec![(k % 6) as u16, ((k + 2) % 6) as u16],
            requests: vec![((k % 6) as u16, 1 + k as u64)],
        });
    }
    for k in 0u32..30 {
        let rater = k % 8;
        let ratee = (k * 3 + 1) % 8;
        if rater == ratee {
            continue;
        }
        events.push(ServerEvent::Rating {
            rater,
            ratee,
            value: if k % 9 == 0 { -1.0 } else { 1.0 },
            interest: if k % 4 == 0 {
                None
            } else {
                Some((k % 6) as u16)
            },
        });
    }
    events.push(ServerEvent::EdgeRemove { a: 3, b: 4 });
    events
}

#[test]
fn scores_match_offline_replay_bit_for_bit() {
    let dir = temp_dir("replay");
    let config = ServiceConfig {
        nodes: 16,
        interests: 8,
        pretrusted: 4,
        ..ServiceConfig::default()
    };
    let handle = boot(&dir, config, Duration::from_millis(20));
    let addr = handle.addr();
    let log_path = dir.join("events.jsonl");

    // Append in three batches with pauses, so the daemon takes several
    // ticks at boundaries this test does not control.
    let events = fixture_events();
    let lines: Vec<String> = events.iter().map(render_event).collect();
    let third = lines.len() / 3;
    for chunk in [
        &lines[..third],
        &lines[third..2 * third],
        &lines[2 * third..],
    ] {
        append_lines(&log_path, chunk);
        std::thread::sleep(Duration::from_millis(60));
    }
    wait_for_applied(addr, events.len() as u64);
    // One more poll round: applied == total guarantees the *next* tick
    // publishes the final board; wait until the board caught up too.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = http_get(addr, "/score/0");
        if json_number(&body, "events_applied") as u64 == events.len() as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "board never caught up: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The daemon's own tick boundaries, then the offline replay.
    let (status, journal_body) = http_get(addr, "/journal");
    assert_eq!(status, 200);
    let journal: Vec<u64> = journal_body
        .trim_start_matches("{\"journal\":[")
        .trim_end_matches("]}")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("journal entry"))
        .collect();
    assert!(!journal.is_empty(), "no ticks recorded: {journal_body}");
    assert_eq!(*journal.last().unwrap(), events.len() as u64);
    let replayed = replay_offline(config, &events, &journal);

    for node in 0..config.nodes {
        let (status, body) = http_get(addr, &format!("/score/{node}"));
        assert_eq!(status, 200, "score {node}: {body}");
        let served = json_number(&body, "score");
        assert_eq!(
            served.to_bits(),
            replayed.scores[node].to_bits(),
            "node {node}: served {served} != replayed {}",
            replayed.scores[node]
        );
    }

    // /scores and /explain stay consistent with the same board.
    let (status, body) = http_get(addr, "/scores?top=5");
    assert_eq!(status, 200);
    assert_eq!(json_number(&body, "events_applied") as usize, events.len());
    let (status, body) = http_get(addr, "/explain/1");
    assert_eq!(status, 200, "explain: {body}");
    assert!(body.contains("\"entries\":"), "explain body: {body}");

    let state = handle.shutdown();
    assert_eq!(state.board().events_applied, events.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_events_are_counted_and_skipped() {
    let dir = temp_dir("malformed");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let handle = boot(&dir, config, Duration::from_millis(20));
    let addr = handle.addr();
    let log_path = dir.join("events.jsonl");

    append_lines(
        &log_path,
        &[
            r#"{"type":"edge_add","a":1,"b":2}"#.to_owned(),
            "this is not json".to_owned(),
            r#"{"type":"rating","rater":1,"ratee":1,"value":1.0}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":99.0}"#.to_owned(),
            r#"{"type":"warp","x":1}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":1.0,"interest":3}"#.to_owned(),
            // Valid JSON but out of the 8-node capacity: rejected, not malformed.
            r#"{"type":"rating","rater":1,"ratee":500,"value":1.0}"#.to_owned(),
            r#"{"type":"rating","rater":2,"ratee":1,"value":0.5}"#.to_owned(),
        ],
    );
    // One line of raw binary garbage: counted as invalid UTF-8, NOT as
    // malformed (malformed = valid text that fails to parse).
    append_raw(&log_path, &[0xFF, 0xFE, 0x80, b'x', b'\n']);
    wait_for_applied(addr, 3);

    // The invalid-UTF-8 line lands asynchronously with the batch above.
    let deadline = Instant::now() + Duration::from_secs(30);
    let body = loop {
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        if json_number(&body, "events_invalid_utf8") as u64 == 1 {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "invalid-UTF-8 line never counted: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(json_number(&body, "events_applied") as u64, 3, "{body}");
    assert_eq!(json_number(&body, "events_malformed") as u64, 4, "{body}");
    assert_eq!(json_number(&body, "events_rejected") as u64, 1, "{body}");

    // The daemon still serves: scores exist and metrics expose the counts.
    let (status, body) = http_get(addr, "/score/1");
    assert_eq!(status, 200, "{body}");
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let samples = socialtrust::telemetry::validate_exposition(&metrics)
        .expect("served /metrics must pass the exposition validator");
    assert!(samples > 0, "empty exposition");
    assert!(
        metrics.contains("server_events_malformed_total 4"),
        "{metrics}"
    );
    assert!(
        metrics.contains("server_events_rejected_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("server_events_invalid_utf8_total 1"),
        "{metrics}"
    );

    // Unknown routes and bad requests answer without harming the daemon.
    assert_eq!(http_get(addr, "/nope").0, 404);
    assert_eq!(http_get(addr, "/score/banana").0, 400);
    assert_eq!(http_get(addr, "/score/9999").0, 404);
    assert_eq!(http_get(addr, "/scores?top=banana").0, 400);
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_pending_log_lines() {
    let dir = temp_dir("drain");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    // Hour-long tick: only the shutdown drain can cover these events.
    let handle = boot(&dir, config, Duration::from_secs(3600));
    let log_path = dir.join("events.jsonl");
    append_lines(
        &log_path,
        &[
            r#"{"type":"edge_add","a":1,"b":2}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":1.0}"#.to_owned(),
        ],
    );
    let state = handle.shutdown();
    let board = state.board();
    assert_eq!(board.events_applied, 2, "drain applied the tail");
    assert_eq!(board.tick, 1, "final tick covered the drained events");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tiny substrate every keep-alive test shares: two events so the
/// first tick publishes a non-boot board.
fn seed_daemon(dir: &Path) -> ServerHandle {
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let handle = boot(dir, config, Duration::from_millis(20));
    append_lines(
        &dir.join("events.jsonl"),
        &[
            r#"{"type":"edge_add","a":1,"b":2}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":1.0}"#.to_owned(),
        ],
    );
    wait_for_applied(handle.addr(), 2);
    handle
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_socket() {
    let dir = temp_dir("keepalive-seq");
    let handle = seed_daemon(&dir);
    let registry = handle.state().telemetry().registry();
    let connections_before = registry.counter("server_http_connections_total").get();
    let requests_before = registry.counter("server_http_requests_total").get();

    let mut conn = KaConn::connect(handle.addr());
    for (target, expect) in [
        ("/healthz", "\"status\":\"ok\""),
        ("/score/1", "\"node\":1"),
        ("/scores?top=3", "\"scores\":["),
        ("/scores", "\"scores\":["),
        ("/journal", "\"journal\":["),
        ("/metrics", "server_http_requests_total"),
    ] {
        conn.send(target);
        let (status, head, body) = conn.read_response();
        assert_eq!(status, 200, "{target}: {body}");
        assert!(
            head.contains("Connection: keep-alive"),
            "{target} head: {head}"
        );
        assert!(body.contains(expect), "{target} body: {body}");
    }

    let registry = handle.state().telemetry().registry();
    assert_eq!(
        registry.counter("server_http_connections_total").get(),
        connections_before + 1,
        "six requests rode one connection"
    );
    assert!(
        registry.counter("server_http_requests_total").get() >= requests_before + 6,
        "requests are counted per parsed request, not per connection"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let dir = temp_dir("keepalive-pipeline");
    let handle = seed_daemon(&dir);
    let mut conn = KaConn::connect(handle.addr());
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n\
          GET /score/1 HTTP/1.1\r\nHost: test\r\n\r\n",
    );
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "first response: {body}");
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 200);
    assert!(body.contains("\"node\":1"), "second response: {body}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_second_request_closes_cleanly() {
    let dir = temp_dir("keepalive-malformed");
    let handle = seed_daemon(&dir);
    let mut conn = KaConn::connect(handle.addr());
    conn.send("/healthz");
    let (status, _, _) = conn.read_response();
    assert_eq!(status, 200);
    conn.send_raw(b"THIS IS NOT HTTP\r\n\r\n");
    let (status, head, _) = conn.read_response();
    assert_eq!(status, 400, "malformed request head: {head}");
    assert!(head.contains("Connection: close"), "head: {head}");
    conn.expect_eof();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_are_reaped_on_timeout() {
    let dir = temp_dir("keepalive-idle");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let handle = boot_tuned(&dir, config, Duration::from_millis(20), |server| {
        server.http_idle_timeout = Duration::from_millis(200);
    });
    let mut conn = KaConn::connect(handle.addr());
    conn.send("/healthz");
    let (status, _, _) = conn.read_response();
    assert_eq!(status, 200);
    // No further requests: the server must close within the idle timeout
    // plus one poll sweep, well inside this client's 10s read timeout.
    conn.expect_eof();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_cap_retires_connection_with_close() {
    let dir = temp_dir("keepalive-cap");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let handle = boot_tuned(&dir, config, Duration::from_millis(20), |server| {
        server.http_max_requests = 2;
    });
    let mut conn = KaConn::connect(handle.addr());
    conn.send("/healthz");
    let (status, head, _) = conn.read_response();
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "head: {head}");
    conn.send("/healthz");
    let (status, head, _) = conn.read_response();
    assert_eq!(status, 200);
    assert!(
        head.contains("Connection: close"),
        "capped response must advertise close: {head}"
    );
    conn.expect_eof();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_inflight_keepalive_connections() {
    let dir = temp_dir("keepalive-drain");
    let handle = seed_daemon(&dir);
    let mut conn = KaConn::connect(handle.addr());
    conn.send("/score/1");
    let (status, _, _) = conn.read_response();
    assert_eq!(status, 200);

    // Second request in flight while shutdown runs on another thread:
    // the drain must still answer it (Connection: close) before EOF.
    conn.send("/score/2");
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 200, "in-flight request answered during drain");
    assert!(body.contains("\"node\":2"), "drained response: {body}");
    conn.expect_eof();
    let state = shutdown.join().expect("shutdown thread");
    assert_eq!(state.board().events_applied, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_flips_to_stalled_and_recovers() {
    let dir = temp_dir("health-stall");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let blackbox = dir.join("blackbox.json");
    let handle = boot_tuned(&dir, config, Duration::from_millis(20), |server| {
        server.stall_after = Some(Duration::from_millis(300));
        server.record_interval = Duration::from_millis(50);
        server.blackbox_out = Some(dir.join("blackbox.json"));
    });
    let addr = handle.addr();
    append_lines(
        &dir.join("events.jsonl"),
        &[
            r#"{"type":"edge_add","a":1,"b":2}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":1.0}"#.to_owned(),
        ],
    );
    wait_for_applied(addr, 2);
    let body = wait_for_health(addr, 200, "ok");
    assert!(body.contains("\"heartbeat_age_seconds\":"), "{body}");

    // Freeze the tick thread: the heartbeat stops, and once its age
    // crosses stall_after, /healthz must flip to 503 "stalled".
    handle.state().set_tick_frozen(true);
    let body = wait_for_health(addr, 503, "stalled");
    assert!(json_number(&body, "heartbeat_age_seconds") >= 0.3, "{body}");

    // The watchdog dumps the blackbox the moment it sees the stall.
    let deadline = Instant::now() + Duration::from_secs(30);
    let dump = loop {
        if let Ok(text) = std::fs::read_to_string(&blackbox) {
            if text.contains("\"reason\":\"stall\"") {
                break text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never dumped a stall blackbox"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(dump.contains("\"health\":\"stalled\""), "{dump}");
    assert!(json_number(&dump, "frames") >= 2.0, "{dump}");
    assert!(dump.contains("server_ticks_total"), "{dump}");

    // Thawing resumes heartbeats; health recovers without a restart.
    handle.state().set_tick_frozen(false);
    wait_for_health(addr, 200, "ok");

    // Shutdown overwrites the blackbox with the final window.
    handle.shutdown();
    let dump = std::fs::read_to_string(&blackbox).expect("shutdown blackbox");
    assert!(dump.contains("\"reason\":\"shutdown\""), "{dump}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_endpoints_serve_keepalive() {
    let dir = temp_dir("debug-keepalive");
    let config = ServiceConfig {
        nodes: 8,
        interests: 4,
        pretrusted: 2,
        ..ServiceConfig::default()
    };
    let handle = boot_tuned(&dir, config, Duration::from_millis(20), |server| {
        // Every request is "slow" so /debug/slow has entries to serve,
        // and the recorder runs fast enough to fill frames mid-test.
        server.slow_threshold = Duration::ZERO;
        server.record_interval = Duration::from_millis(50);
    });
    let addr = handle.addr();
    append_lines(
        &dir.join("events.jsonl"),
        &[
            r#"{"type":"edge_add","a":1,"b":2}"#.to_owned(),
            r#"{"type":"rating","rater":1,"ratee":2,"value":1.0}"#.to_owned(),
        ],
    );
    wait_for_applied(addr, 2);
    // Let the recorder take a few frames before asking for a window.
    std::thread::sleep(Duration::from_millis(200));

    let mut conn = KaConn::connect(addr);
    conn.send("/debug/vars");
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Connection: keep-alive"), "head: {head}");
    assert!(body.contains("\"metrics\":"), "{body}");
    assert!(body.contains("server_events_ingested_total"), "{body}");
    assert!(body.contains("\"uptime_seconds\":"), "{body}");

    conn.send("/debug/timeseries?window=8");
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Connection: keep-alive"), "head: {head}");
    assert!(json_number(&body, "frames") >= 1.0, "{body}");
    assert!(body.contains("\"series\":["), "{body}");
    assert!(body.contains("\"rate_per_second\":["), "{body}");
    assert!(body.contains("server_ticks_total"), "{body}");

    conn.send("/debug/slow");
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Connection: keep-alive"), "head: {head}");
    // The two /debug requests above crossed the zero threshold.
    assert!(
        body.contains("\"endpoint\":\"debug_vars\""),
        "slow ring: {body}"
    );
    assert!(json_number(&body, "recorded_total") >= 2.0, "{body}");

    // Bad query parameters answer 400 without killing the connection.
    conn.send("/debug/timeseries?window=banana");
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 400, "{body}");
    conn.send("/debug/timeseries?frobnicate=1");
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 400, "{body}");
    // …and the connection still serves afterwards.
    conn.send("/healthz");
    let (status, _, _) = conn.read_response();
    assert_eq!(status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_exits_cleanly() {
    let dir = temp_dir("sigterm");
    let log_path = dir.join("events.jsonl");
    std::fs::write(
        &log_path,
        "{\"type\":\"edge_add\",\"a\":1,\"b\":2}\n{\"type\":\"rating\",\"rater\":1,\"ratee\":2,\"value\":1.0}\n",
    )
    .unwrap();
    let metrics_path = dir.join("metrics.json");
    let blackbox_path = dir.join("blackbox.json");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_socialtrust-server"))
        .args([
            "--log",
            log_path.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--nodes",
            "8",
            "--interests",
            "4",
            "--pretrusted",
            "2",
            "--tick-ms",
            "20",
            "--record-ms",
            "50",
            "--replay",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--blackbox-out",
            blackbox_path.to_str().unwrap(),
            "--max-runtime-secs",
            "60",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon binary");

    // Wait until the daemon reports its listen address, then SIGTERM it.
    let mut stderr = child.stderr.take().expect("stderr piped");
    let mut seen = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !String::from_utf8_lossy(&seen).contains("listening on http://") {
        assert!(Instant::now() < deadline, "daemon never reported listening");
        let mut byte = [0u8; 256];
        let n = stderr.read(&mut byte).expect("read child stderr");
        assert!(
            n > 0,
            "daemon stderr closed early: {:?}",
            String::from_utf8_lossy(&seen)
        );
        seen.extend_from_slice(&byte[..n]);
    }
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(term.success(), "kill -TERM failed");

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut rest = String::new();
    let _ = stderr.read_to_string(&mut rest);
    let all = format!("{}{rest}", String::from_utf8_lossy(&seen));
    assert!(status.success(), "non-zero exit: {status:?}\n{all}");
    assert!(
        all.contains("clean shutdown"),
        "no shutdown summary:\n{all}"
    );
    assert!(
        metrics_path.exists(),
        "metrics document missing after shutdown:\n{all}"
    );
    // The SIGTERM'd daemon leaves a parseable blackbox with at least two
    // sampled frames of the server_* families.
    let blackbox = std::fs::read_to_string(&blackbox_path)
        .unwrap_or_else(|e| panic!("blackbox missing after shutdown: {e}\n{all}"));
    assert!(blackbox.contains("\"reason\":\"shutdown\""), "{blackbox}");
    assert!(json_number(&blackbox, "frames") >= 2.0, "{blackbox}");
    assert!(
        blackbox.contains("server_events_ingested_total"),
        "{blackbox}"
    );
    assert!(blackbox.contains("server_ticks_total"), "{blackbox}");
    let _ = std::fs::remove_dir_all(&dir);
}
