//! Criterion bench — full simulation cycles, per collusion model and
//! reputation system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socialtrust_sim::prelude::*;

fn scenario(model: CollusionModel) -> ScenarioConfig {
    ScenarioConfig::paper_default()
        .with_collusion(model)
        .with_colluder_behavior(0.6)
        .with_cycles(3) // three simulation cycles per iteration
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation/3_cycles");
    group.sample_size(10);
    let cases = [
        (
            CollusionModel::None,
            ReputationKind::EigenTrust,
            "none_eigentrust",
        ),
        (
            CollusionModel::PairWise,
            ReputationKind::EigenTrust,
            "pcm_eigentrust",
        ),
        (CollusionModel::PairWise, ReputationKind::EBay, "pcm_ebay"),
        (
            CollusionModel::PairWise,
            ReputationKind::EigenTrustWithSocialTrust,
            "pcm_eigentrust_socialtrust",
        ),
        (
            CollusionModel::MultiMutual,
            ReputationKind::EigenTrustWithSocialTrust,
            "mmm_eigentrust_socialtrust",
        ),
    ];
    for (model, kind, label) in cases {
        let s = scenario(model);
        group.bench_with_input(BenchmarkId::from_parameter(label), &s, |bench, s| {
            bench.iter(|| std::hint::black_box(run_scenario(s, kind, 42)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
