//! Criterion bench — the Gaussian adjustment pass: detection plus
//! rescaling of one cycle's ratings through `WithSocialTrust`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_core::config::SocialTrustConfig;
use socialtrust_core::gaussian::{adjustment_weight, combined_weight};
use socialtrust_core::prelude::*;
use socialtrust_core::stats::OmegaStats;
use socialtrust_reputation::prelude::*;
use socialtrust_socnet::NodeId;

fn bench_kernels(c: &mut Criterion) {
    let stats = OmegaStats::new(0.4, 1.0, 0.1);
    c.bench_function("gaussian/weight_1d", |b| {
        b.iter(|| std::hint::black_box(adjustment_weight(0.9, &stats, 1.0)));
    });
    c.bench_function("gaussian/weight_2d", |b| {
        b.iter(|| std::hint::black_box(combined_weight(0.9, &stats, 0.05, &stats, 1.0)));
    });
}

fn loaded_decorator(n: usize, ratings: usize, seed: u64) -> WithSocialTrust<EigenTrust> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ctx = SharedSocialContext::new(SocialContext::new(n, 20));
    let mut sys = WithSocialTrust::new(
        EigenTrust::with_defaults(n, &[NodeId(0)]),
        ctx,
        SocialTrustConfig::default(),
    );
    for _ in 0..ratings {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            sys.record(Rating::new(NodeId::from(a), NodeId::from(b), 1.0));
        }
    }
    // A flood pair so the detector has something to inspect.
    for _ in 0..500 {
        sys.record(Rating::new(NodeId(1), NodeId(2), 1.0).non_transactional());
    }
    sys
}

fn bench_adjustment_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian/adjustment_pass");
    for &n in &[100usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter_batched(
                || loaded_decorator(n, n * 20, 11),
                |mut sys| {
                    sys.end_cycle();
                    std::hint::black_box(sys.reputations()[0])
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_adjustment_pass);
criterion_main!(benches);
