//! Scaling bench — the sharded read path from 10k to 1M nodes.
//!
//! Where `snapshot.rs` compares mechanisms at a fixed size, this bench
//! tracks how the per-cycle costs grow with the network. For every size in
//! `SCALE_SIZES` (default `10000,100000,1000000`) it measures:
//!
//! 1. `patch_{n}_seconds`: sparse interaction dirt (~0.05% of nodes)
//!    brought up to date through `SnapshotStore::snapshot` — the
//!    row-repatch path that touches only the dirty rows' shards.
//!
//! 2. `rebuild_{n}_seconds`: localized structural churn (edge toggles on a
//!    handful of adjacent ids) refreshed through the default
//!    auto-partitioned store — only the shards owning dirty endpoints
//!    rebuild their CSR slabs.
//!
//! 3. `rebuild_p1_{n}_seconds`: the identical churn against a store pinned
//!    to a single shard, which must rebuild the whole slab. The ratio
//!    (`sharded_rebuild_speedup_{n}`, informational) is the algorithmic
//!    win of dirty-shard-only rebuilds; it holds even on one core because
//!    the sharded store simply redoes less work.
//!
//! 4. `full_cycle_{n}_seconds`: one end-to-end reputation cycle through
//!    `WithSocialTrust<EigenTrust>` — rating ingest, detection over the
//!    epoch-validated snapshot, Gaussian re-weighting, and the blocked
//!    power iteration.
//!
//! `snapshot_bytes_per_node_{n}` records the resident snapshot footprint
//! so the memory budget is tracked alongside the timings. Results land in
//! `BENCH_scale.json` (override with `BENCH_SCALE_OUT`); keys ending in
//! `_seconds` are gated by `scripts/bench_diff.sh`. `--test` runs a single
//! repetition per cell for CI smoke, where `SCALE_SIZES=10000` keeps the
//! matrix small; the committed baseline carries the full 10k/100k/1M rows.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_core::prelude::{
    SharedSocialContext, SocialContext, SocialTrustConfig, WithSocialTrust,
};
use socialtrust_reputation::prelude::{EigenTrust, Rating, ReputationSystem};
use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::closeness::ClosenessConfig;
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::interest::{InterestId, InterestProfile};
use socialtrust_socnet::relationship::Relationship;
use socialtrust_socnet::snapshot::SnapshotStore;
use socialtrust_socnet::NodeId;
use std::time::Instant;

const INTERESTS: u16 = 40;

fn env(n: usize, seed: u64) -> (SocialGraph, InteractionTracker, Vec<InterestProfile>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(n, 6.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(n);
    for _ in 0..n * 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    let profiles: Vec<InterestProfile> = random_interests(n, INTERESTS, (2, 6), &mut rng)
        .into_iter()
        .map(|set| {
            let mut p = InterestProfile::new(set);
            for _ in 0..3 {
                p.record_requests(
                    InterestId(rng.gen_range(0..INTERESTS)),
                    rng.gen_range(1..20),
                );
            }
            p
        })
        .collect();
    (g, t, profiles)
}

/// Mean seconds per run of `routine` over `reps` timed repetitions.
fn measure<F: FnMut()>(reps: u32, mut routine: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// One sparse interaction round: ~0.05% of nodes (at least 10) record a
/// fresh interaction, rotated so repeated rounds touch different rows.
fn interaction_dirt(t: &mut InteractionTracker, n: usize, round: usize) {
    let dirty = (n / 2000).max(10).min(n);
    let stride = (n / dirty).max(1);
    for k in 0..dirty {
        let from = (k * stride + round) % n;
        let to = (from + 7) % n;
        if from != to {
            t.record(NodeId::from(from), NodeId::from(to), 1.0);
        }
    }
}

/// One localized structural round: toggle four edges among ids clustered
/// around `n/2`, so the dirt lands in one or two shards of the
/// auto-partitioned store.
fn structural_dirt(g: &mut SocialGraph, n: usize, round: usize) {
    let base = n / 2;
    for k in 0..4 {
        let a = NodeId::from((base + k) % n);
        let b = NodeId::from((base + 16 + k) % n);
        if a == b {
            continue;
        }
        if round.is_multiple_of(2) {
            g.add_relationship(a, b, Relationship::friendship());
        } else {
            g.remove_edge(a, b);
        }
    }
}

struct SizeReport {
    n: usize,
    patch: f64,
    rebuild: f64,
    rebuild_p1: f64,
    full_cycle: f64,
    bytes_per_node: f64,
    shard_count: usize,
}

fn bench_size(n: usize, reps: u32) -> SizeReport {
    let config = ClosenessConfig::default();
    let setup = Instant::now();
    let (mut g, mut t, profiles) = env(n, 41);
    eprintln!(
        "[scale {n}] env built in {:.1}s",
        setup.elapsed().as_secs_f64()
    );

    let store = SnapshotStore::new();
    let store_p1 = SnapshotStore::with_shards(1);
    store.snapshot(&g, &t, &profiles, 0, config);
    store_p1.snapshot(&g, &t, &profiles, 0, config);

    // 1. Interaction repatch through the sharded store.
    let mut round = 0usize;
    let patch = measure(reps, || {
        interaction_dirt(&mut t, n, round);
        round += 1;
        std::hint::black_box(store.snapshot(&g, &t, &profiles, 0, config));
    });
    store_p1.snapshot(&g, &t, &profiles, 0, config); // untimed catch-up

    // 2. Structural churn, dirty-shard-only rebuild.
    let mut round = 0usize;
    let rebuild = measure(reps, || {
        structural_dirt(&mut g, n, round);
        round += 1;
        std::hint::black_box(store.snapshot(&g, &t, &profiles, 0, config));
    });
    let snap = store.snapshot(&g, &t, &profiles, 0, config);
    let (bytes_per_node, shard_count) = (snap.bytes_per_node(), snap.shard_count());
    drop(snap);
    store_p1.snapshot(&g, &t, &profiles, 0, config); // untimed catch-up

    // 3. The same churn against a single-shard store: full slab rebuild.
    let mut round = 0usize;
    let rebuild_p1 = measure(reps, || {
        structural_dirt(&mut g, n, round);
        round += 1;
        std::hint::black_box(store_p1.snapshot(&g, &t, &profiles, 0, config));
    });
    drop(store);
    drop(store_p1);

    // 4. Full decorated cycle: ingest, detect, re-weight, power-iterate.
    let ctx = SharedSocialContext::new(SocialContext::from_parts(g, t, profiles, INTERESTS));
    let pretrusted: Vec<NodeId> = (0..32.min(n)).map(NodeId::from).collect();
    let mut engine = WithSocialTrust::new(
        EigenTrust::with_defaults(n, &pretrusted),
        ctx.clone(),
        SocialTrustConfig::default(),
    );
    let raters = (n / 500).clamp(50, 2000).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let cycle = |engine: &mut WithSocialTrust<EigenTrust>, rng: &mut ChaCha8Rng| {
        for _ in 0..raters {
            let rater = rng.gen_range(0..n);
            for _ in 0..5 {
                let ratee = rng.gen_range(0..n);
                if rater == ratee {
                    continue;
                }
                let value = if rng.gen_bool(0.9) { 1.0 } else { -1.0 };
                engine.record(Rating::new(NodeId::from(rater), NodeId::from(ratee), value));
                ctx.write()
                    .record_interaction(NodeId::from(rater), NodeId::from(ratee), 1.0);
            }
        }
        engine.end_cycle();
    };
    cycle(&mut engine, &mut rng); // untimed warm-up: builds the ctx snapshot
    let full_cycle = measure(reps, || cycle(&mut engine, &mut rng));

    eprintln!(
        "[scale {n}] patch {patch:.4}s, rebuild {rebuild:.4}s (P={shard_count}), \
         rebuild_p1 {rebuild_p1:.4}s, full_cycle {full_cycle:.4}s, \
         {bytes_per_node:.1} bytes/node"
    );
    SizeReport {
        n,
        patch,
        rebuild,
        rebuild_p1,
        full_cycle,
        bytes_per_node,
        shard_count,
    }
}

/// The vendored serde_json has no dynamic-map support, so the report —
/// whose keys embed the measured sizes — is assembled by hand. Keys that
/// should gate regressions end in `_seconds`; ratios and footprints are
/// informational.
fn write_report(reports: &[SizeReport], reps: u32, sizes: &str) {
    let mut fields: Vec<String> = vec![
        "\"bench\": \"scale\"".to_owned(),
        format!("\"sizes\": \"{sizes}\""),
        format!("\"reps\": {reps}"),
    ];
    for r in reports {
        fields.push(format!("\"patch_{}_seconds\": {:.9}", r.n, r.patch));
        fields.push(format!("\"rebuild_{}_seconds\": {:.9}", r.n, r.rebuild));
        fields.push(format!(
            "\"rebuild_p1_{}_seconds\": {:.9}",
            r.n, r.rebuild_p1
        ));
        fields.push(format!(
            "\"full_cycle_{}_seconds\": {:.9}",
            r.n, r.full_cycle
        ));
        fields.push(format!(
            "\"sharded_rebuild_speedup_{}\": {:.3}",
            r.n,
            r.rebuild_p1 / r.rebuild
        ));
        fields.push(format!("\"shard_count_{}\": {}", r.n, r.shard_count));
        fields.push(format!(
            "\"snapshot_bytes_per_node_{}\": {:.1}",
            r.n, r.bytes_per_node
        ));
    }
    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));
    let path = std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_owned());
    std::fs::write(&path, json).expect("bench report is writable");
    println!("[scale json] {} size(s) -> {path}", reports.len());
}

fn main() {
    // `--test` is accepted for CLI uniformity with the other bench
    // binaries, but smoke runs shrink via SCALE_SIZES, not repetitions:
    // the 10k cells are sub-millisecond, and a single repetition jitters
    // past the bench_diff gate.
    let _ = std::env::args().any(|a| a == "--test");
    let reps = 3;
    let sizes = std::env::var("SCALE_SIZES").unwrap_or_else(|_| "10000,100000,1000000".to_owned());
    let parsed: Vec<usize> = sizes
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n: &usize| n >= 2)
        .collect();
    assert!(
        !parsed.is_empty(),
        "SCALE_SIZES has no valid sizes: {sizes}"
    );
    let reports: Vec<SizeReport> = parsed.iter().map(|&n| bench_size(n, reps)).collect();
    write_report(&reports, reps, &sizes);
}
