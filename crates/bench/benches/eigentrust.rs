//! Criterion bench — EigenTrust power iteration cost vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_reputation::prelude::*;
use socialtrust_socnet::NodeId;

fn loaded_engine(n: usize, ratings: usize, seed: u64) -> EigenTrust {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pretrusted: Vec<NodeId> = (0..(n / 20).max(1)).map(NodeId::from).collect();
    let mut sys = EigenTrust::with_defaults(n, &pretrusted);
    for _ in 0..ratings {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let v = if rng.gen::<f64>() < 0.8 { 1.0 } else { -1.0 };
            sys.record(Rating::new(NodeId::from(a), NodeId::from(b), v));
        }
    }
    sys
}

fn bench_eigentrust(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust");
    for &n in &[100usize, 200, 400, 800] {
        group.bench_with_input(BenchmarkId::new("end_cycle", n), &n, |bench, &n| {
            bench.iter_batched(
                || loaded_engine(n, n * 20, 3),
                |mut sys| {
                    sys.end_cycle();
                    std::hint::black_box(sys.reputation(NodeId(0)))
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // Incremental update: one more cycle on an already-converged engine.
    group.bench_function("incremental_update_200", |bench| {
        let mut sys = loaded_engine(200, 4000, 5);
        sys.end_cycle();
        bench.iter(|| {
            sys.record(Rating::new(NodeId(1), NodeId(2), 1.0));
            sys.end_cycle();
            std::hint::black_box(sys.reputation(NodeId(2)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eigentrust);
criterion_main!(benches);
