//! Criterion bench — the incremental mutation pipeline.
//!
//! The steady state of a running network mutates only a sliver of the
//! social graph per cycle (new ratings from a handful of nodes), so the
//! interesting regime is *sparse* invalidation: ≤1% of nodes touched
//! between bulk coefficient queries. Two comparisons on a 10k-node
//! network:
//!
//! 1. `sparse_invalidation`: after ~0.5% of nodes record new
//!    interactions, re-query a 4000-pair working set through a cache that
//!    (a) is flushed wholesale (`full_flush`, the pre-dirty-set
//!    behaviour) vs (b) drains the dirty set and evicts only the touched
//!    neighborhood (`dirty_set`). The dirty-set path keeps the untouched
//!    region warm and should win by a wide margin (acceptance: ≥5x).
//!
//! 2. `eigentrust_cycle`: `end_cycle` with a sparse rating batch on a
//!    10k-node engine, cold-started (power iteration from pretrust every
//!    cycle) vs warm-started (iteration resumes from the previous trust
//!    vector). The iteration counts are printed alongside.
//!
//! The `sparse_invalidation` group carries a third cell,
//! `dirty_set_telemetry`: the same dirty-set workload with the cache's
//! counters re-homed onto a live telemetry registry. Its runtime vs
//! `dirty_set` is the registry's overhead on the hot path (acceptance:
//! <2%). The counters are lock-free relaxed atomic increments either
//! way — attaching only re-homes the cells onto registry-owned
//! `Arc<AtomicU64>`s — so any measured delta beyond ~1% is run-to-run
//! noise; compare the printed hit/miss/eviction totals to confirm both
//! cells executed the same workload before reading the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_reputation::eigentrust::{EigenTrust, EigenTrustConfig};
use socialtrust_reputation::rating::Rating;
use socialtrust_reputation::system::ReputationSystem;
use socialtrust_socnet::builder::connected_random_graph;
use socialtrust_socnet::cache::SocialCoefficientCache;
use socialtrust_socnet::closeness::ClosenessConfig;
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::NodeId;

const N: usize = 10_000;
/// Nodes that record fresh interactions between query rounds (0.5% of N).
const MUTATED_NODES: usize = 50;
/// Size of the per-cycle coefficient working set.
const WARM_PAIRS: usize = 4000;

fn env(seed: u64) -> (SocialGraph, InteractionTracker) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(N, 6.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(N);
    for _ in 0..N * 4 {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    (g, t)
}

fn working_set(rng: &mut ChaCha8Rng) -> Vec<(NodeId, NodeId)> {
    (0..WARM_PAIRS)
        .map(|_| {
            let a = rng.gen_range(0..N);
            let mut b = rng.gen_range(0..N);
            if b == a {
                b = (b + 1) % N;
            }
            (NodeId::from(a), NodeId::from(b))
        })
        .collect()
}

/// One sparse mutation round: `MUTATED_NODES` distinct raters each record
/// one fresh interaction. `round` rotates the touched region so repeated
/// bench iterations don't keep hitting the same 50 nodes.
fn mutate(t: &mut InteractionTracker, round: usize) {
    let stride = N / MUTATED_NODES;
    for k in 0..MUTATED_NODES {
        let from = (k * stride + round) % N;
        let to = (from + 7) % N;
        t.record(NodeId::from(from), NodeId::from(to), 1.0);
    }
}

fn bench_sparse_invalidation(c: &mut Criterion) {
    let config = ClosenessConfig::default();
    let mut group = c.benchmark_group("sparse_invalidation_10k");
    group.sample_size(10);

    {
        let (g, mut t) = env(23);
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let pairs = working_set(&mut rng);
        let cache = SocialCoefficientCache::new();
        let _ = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let mut round = 0usize;
        group.bench_function("full_flush", |bench| {
            bench.iter(|| {
                mutate(&mut t, round);
                round += 1;
                cache.invalidate();
                std::hint::black_box(cache.closeness_for_pairs(&g, &t, config, &pairs))
            });
        });
    }

    {
        let (g, mut t) = env(23);
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let pairs = working_set(&mut rng);
        let cache = SocialCoefficientCache::new();
        let _ = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let mut round = 0usize;
        group.bench_function("dirty_set", |bench| {
            bench.iter(|| {
                mutate(&mut t, round);
                round += 1;
                std::hint::black_box(cache.closeness_for_pairs(&g, &t, config, &pairs))
            });
        });
        let s = cache.stats();
        println!(
            "[cache stats, dirty_set] {} hits / {} misses ({:.1}% hit rate), {} evictions",
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            s.evictions
        );
    }

    {
        let (g, mut t) = env(23);
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let pairs = working_set(&mut rng);
        let telemetry = socialtrust_telemetry::Telemetry::new();
        let mut cache = SocialCoefficientCache::new();
        cache.attach_telemetry(&telemetry);
        let _ = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let mut round = 0usize;
        group.bench_function("dirty_set_telemetry", |bench| {
            bench.iter(|| {
                mutate(&mut t, round);
                round += 1;
                std::hint::black_box(cache.closeness_for_pairs(&g, &t, config, &pairs))
            });
        });
        let snap = telemetry.registry().snapshot();
        println!(
            "[registry, dirty_set_telemetry] {} hits / {} misses, {} evictions",
            snap.counter("cache_hits_total"),
            snap.counter("cache_misses_total"),
            snap.counter("cache_evictions_total"),
        );
    }

    group.finish();
}

/// A sparse rating batch: 200 ratings among a 1% slice of the nodes,
/// rotated per cycle.
fn sparse_batch(rng: &mut ChaCha8Rng, cycle: usize) -> Vec<Rating> {
    let base = (cycle * 100) % N;
    (0..200)
        .map(|_| {
            let a = base + rng.gen_range(0..100);
            let mut b = base + rng.gen_range(0..100);
            if b == a {
                b += 1;
            }
            Rating::new(
                NodeId::from(a % N),
                NodeId::from(b % N),
                if rng.gen_bool(0.9) { 1.0 } else { -1.0 },
            )
        })
        .collect()
}

fn engine(warm_start: bool) -> EigenTrust {
    let config = EigenTrustConfig {
        warm_start,
        ..EigenTrustConfig::default()
    };
    let pretrusted: Vec<NodeId> = (0..10usize).map(NodeId::from).collect();
    let mut sys = EigenTrust::new(N, &pretrusted, config);
    // Reach a populated steady state before timing: 20 dense-ish cycles.
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for cycle in 0..20 {
        for r in sparse_batch(&mut rng, cycle * 7) {
            sys.record(r);
        }
        sys.end_cycle();
    }
    sys
}

fn bench_eigentrust_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust_cycle_10k");
    group.sample_size(10);

    for (label, warm_start) in [("cold_start", false), ("warm_start", true)] {
        let mut sys = engine(warm_start);
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let mut cycle = 1000usize;
        group.bench_function(label, |bench| {
            bench.iter(|| {
                for r in sparse_batch(&mut rng, cycle) {
                    sys.record(r);
                }
                cycle += 1;
                sys.end_cycle();
                std::hint::black_box(sys.reputations()[0])
            });
        });
        println!(
            "[{label}] last power iteration count: {}",
            sys.last_iterations()
        );
    }

    group.finish();
}

criterion_group!(benches, bench_sparse_invalidation, bench_eigentrust_cycle);
criterion_main!(benches);
