//! Criterion bench — the per-cycle social-coefficient cache.
//!
//! Compares the uncached closeness path (fresh recomputation per query, as
//! the pre-cache pipeline did) against [`SocialCoefficientCache`] with a
//! warm memo, on a 10k-node social network, and measures `detect_all` over
//! a full rating cycle cold (cache just invalidated) vs warm (second run
//! on an unchanged graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_core::config::SocialTrustConfig;
use socialtrust_core::context::SocialContext;
use socialtrust_core::detector::Detector;
use socialtrust_reputation::rating::{Rating, RatingLedger};
use socialtrust_socnet::builder::connected_random_graph;
use socialtrust_socnet::cache::SocialCoefficientCache;
use socialtrust_socnet::closeness::{closeness_for_pairs, ClosenessConfig};
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::NodeId;

const N: usize = 10_000;

fn env(seed: u64) -> (socialtrust_socnet::graph::SocialGraph, InteractionTracker) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(N, 6.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(N);
    for _ in 0..N * 4 {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    (g, t)
}

fn rated_pairs(rng: &mut ChaCha8Rng, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..N);
            let mut b = rng.gen_range(0..N);
            if b == a {
                b = (b + 1) % N;
            }
            (NodeId::from(a), NodeId::from(b))
        })
        .collect()
}

fn bench_bulk_closeness(c: &mut Criterion) {
    let (g, t) = env(11);
    let config = ClosenessConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let mut group = c.benchmark_group("coefficient_cache");
    for &pairs_n in &[500usize, 2000] {
        let pairs = rated_pairs(&mut rng, pairs_n);
        group.bench_with_input(
            BenchmarkId::new("bulk_uncached", pairs_n),
            &pairs_n,
            |bench, _| {
                bench.iter(|| std::hint::black_box(closeness_for_pairs(&g, &t, config, &pairs)));
            },
        );
        let cache = SocialCoefficientCache::new();
        // Warm the memo once; repeat queries on the unchanged graph are the
        // steady state of the per-cycle pipeline.
        let _ = cache.closeness_for_pairs(&g, &t, config, &pairs);
        group.bench_with_input(
            BenchmarkId::new("bulk_cached_warm", pairs_n),
            &pairs_n,
            |bench, _| {
                bench.iter(|| {
                    std::hint::black_box(cache.closeness_for_pairs(&g, &t, config, &pairs))
                });
            },
        );
        let s = cache.stats();
        println!(
            "[cache stats, bulk {pairs_n}] {} hits / {} misses ({:.1}% hit rate), {} evictions",
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            s.evictions
        );
    }
    group.finish();
}

fn bench_detection_cycle(c: &mut Criterion) {
    let (g, t) = env(17);
    let mut ctx = SocialContext::new(N, 32);
    *ctx.graph_mut() = g;
    *ctx.interactions_mut() = t;
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    let mut ledger = RatingLedger::new();
    // One cycle's rating traffic with a heavy tail: most pairs rate once or
    // twice (background), one in ten floods well past θ·F̄, so the
    // frequency gate passes and the social coefficients are actually
    // computed for a realistic share of the interval pairs.
    for (i, (a, b)) in rated_pairs(&mut rng, 2000).into_iter().enumerate() {
        let count = if i % 10 == 0 { 15 } else { rng.gen_range(1..3) };
        for _ in 0..count {
            ledger.record(&Rating::new(a, b, 1.0));
        }
    }
    let reputations: Vec<f64> = (0..N).map(|i| (i % 100) as f64 / 100.0).collect();
    let detector = Detector::new(SocialTrustConfig::default());
    // Warm-up also forces the lazy cache fill outside the timed region.
    let _ = detector.detect_all(&ctx, &ledger, &reputations);

    let mut group = c.benchmark_group("detect_all_10k");
    group.bench_function("cold_cache", |bench| {
        bench.iter(|| {
            ctx.coefficient_cache().invalidate();
            std::hint::black_box(detector.detect_all(&ctx, &ledger, &reputations))
        });
    });
    group.bench_function("warm_cache", |bench| {
        bench.iter(|| std::hint::black_box(detector.detect_all(&ctx, &ledger, &reputations)));
    });
    group.finish();
    let s = ctx.cache_stats();
    println!(
        "[cache stats, detect_all] {} hits / {} misses ({:.1}% hit rate), {} evictions",
        s.hits,
        s.misses,
        100.0 * s.hit_rate(),
        s.evictions
    );
}

criterion_group!(benches, bench_bulk_closeness, bench_detection_cycle);
criterion_main!(benches);
