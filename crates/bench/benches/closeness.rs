//! Criterion bench — social closeness computation (Eqs. (2)–(4), (10)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use socialtrust_socnet::builder::connected_random_graph;
use socialtrust_socnet::closeness::{closeness_for_pairs, ClosenessConfig, ClosenessModel};
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::NodeId;

fn env(n: usize, seed: u64) -> (socialtrust_socnet::graph::SocialGraph, InteractionTracker) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(n, 6.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(n);
    for _ in 0..n * 10 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    (g, t)
}

fn bench_closeness(c: &mut Criterion) {
    let mut group = c.benchmark_group("closeness");
    for &n in &[100usize, 200, 400] {
        let (g, t) = env(n, 7);
        let model = ClosenessModel::new(&g, &t, ClosenessConfig::default());
        group.bench_with_input(BenchmarkId::new("adjacent", n), &n, |bench, _| {
            let (a, b) = {
                let (x, y, _) = g.edges().next().expect("edges exist");
                (x, y)
            };
            bench.iter(|| std::hint::black_box(model.adjacent_closeness(a, b)));
        });
        group.bench_with_input(BenchmarkId::new("any_pair", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(model.closeness(NodeId(0), NodeId(n as u32 - 1))));
        });
        let pairs: Vec<(NodeId, NodeId)> = (0..200)
            .map(|i| (NodeId::from(i % n), NodeId::from((i * 7 + 3) % n)))
            .collect();
        group.bench_with_input(BenchmarkId::new("bulk_200_pairs", n), &n, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(closeness_for_pairs(
                    &g,
                    &t,
                    ClosenessConfig::default(),
                    &pairs,
                ))
            });
        });
        let weighted = ClosenessModel::new(&g, &t, ClosenessConfig::weighted(0.8));
        group.bench_with_input(BenchmarkId::new("weighted_eq10", n), &n, |bench, _| {
            bench
                .iter(|| std::hint::black_box(weighted.closeness(NodeId(0), NodeId(n as u32 / 2))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closeness);
criterion_main!(benches);
