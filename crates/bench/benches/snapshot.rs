//! Criterion bench — CSR snapshot read path vs the live per-query path.
//!
//! The detection + Gaussian-weighting passes are read-dominated: thousands
//! of (rater, ratee) coefficient queries per cycle against a graph that
//! mutates only sparsely in between. Three comparisons on a 10k-node
//! network:
//!
//! 1. `pairwise_closeness`: a 4000-pair working set shaped like the
//!    rating ledger the detector and Gaussian pass actually walk — 400
//!    raters each rating 10 distinct ratees — evaluated (a) through the
//!    live `ClosenessModel`, one BFS per non-adjacent pair over
//!    `Vec<Vec<NodeId>>` adjacency, vs (b) `GraphSnapshot::
//!    closeness_for_pairs`, which groups the pairs by rater and answers
//!    each rater's ten targets with a single capped BFS over the flat
//!    CSR arrays (acceptance: ≥2x).
//!
//! 2. `interest_similarity`: Eq. (1)/(11) overlap for the same pairs via
//!    (a) the live BTreeMap set walk (`interest::weighted_similarity`)
//!    vs (b) the snapshot's per-node bitsets (AND + popcount, weights by
//!    binary search in the CSR effective-interest rows).
//!
//! 3. `refresh`: after ~0.5% of nodes record fresh interactions, bring
//!    the snapshot up to date by (a) `GraphSnapshot::build` from scratch
//!    vs (b) `GraphSnapshot::refreshed`, which repatches only the dirty
//!    rows' freq slots.
//!
//! Besides the Criterion cells, `main` re-measures the three comparisons
//! with plain `Instant` timing and writes the means to
//! `BENCH_snapshot.json` (override the path with `BENCH_SNAPSHOT_OUT`) so
//! CI can track the perf trajectory across PRs.

use criterion::{criterion_group, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::closeness::{ClosenessConfig, ClosenessModel};
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::interest::{self, InterestId, InterestProfile};
use socialtrust_socnet::snapshot::{GraphSnapshot, RefreshOutcome};
use socialtrust_socnet::NodeId;
use std::time::Instant;

const N: usize = 10_000;
/// Raters active in one cycle and how many ratees each rated; their
/// product is the size of the per-cycle coefficient working set.
const RATERS: usize = 400;
const FANOUT: usize = 10;
const PAIRS: usize = RATERS * FANOUT;
/// Nodes that record fresh interactions between refreshes (0.5% of N).
const MUTATED_NODES: usize = 50;

fn env(seed: u64) -> (SocialGraph, InteractionTracker, Vec<InterestProfile>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(N, 6.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(N);
    for _ in 0..N * 4 {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b {
            t.record(NodeId::from(a), NodeId::from(b), rng.gen_range(1.0..5.0));
        }
    }
    let profiles: Vec<InterestProfile> = random_interests(N, 40, (2, 10), &mut rng)
        .into_iter()
        .map(|set| {
            let mut p = InterestProfile::new(set);
            for _ in 0..4 {
                p.record_requests(InterestId(rng.gen_range(0..40)), rng.gen_range(1..20));
            }
            p
        })
        .collect();
    (g, t, profiles)
}

/// The per-cycle working set, shaped like a rating ledger: each active
/// rater rated `FANOUT` distinct ratees, so the batched kernel can serve
/// all of a rater's Eq. (4) fallbacks from one BFS.
fn working_set(rng: &mut ChaCha8Rng) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(PAIRS);
    for _ in 0..RATERS {
        let a = rng.gen_range(0..N);
        for _ in 0..FANOUT {
            let mut b = rng.gen_range(0..N);
            if b == a {
                b = (b + 1) % N;
            }
            pairs.push((NodeId::from(a), NodeId::from(b)));
        }
    }
    pairs
}

/// One sparse mutation round, rotated so repeated iterations don't keep
/// re-dirtying the same rows.
fn mutate(t: &mut InteractionTracker, round: usize) {
    let stride = N / MUTATED_NODES;
    for k in 0..MUTATED_NODES {
        let from = (k * stride + round) % N;
        let to = (from + 7) % N;
        t.record(NodeId::from(from), NodeId::from(to), 1.0);
    }
}

fn bench_pairwise_closeness(c: &mut Criterion) {
    let config = ClosenessConfig::default();
    let (g, t, profiles) = env(41);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let pairs = working_set(&mut rng);
    let mut group = c.benchmark_group("pairwise_closeness_10k");
    group.sample_size(10);

    let model = ClosenessModel::new(&g, &t, config);
    group.bench_function("per_pair_bfs", |bench| {
        bench.iter(|| {
            let total: f64 = pairs.iter().map(|&(a, b)| model.closeness(a, b)).sum();
            std::hint::black_box(total)
        });
    });

    let snapshot = GraphSnapshot::build(&g, &t, &profiles, 0, config);
    group.bench_function("batched_csr", |bench| {
        bench.iter(|| {
            let values = snapshot.closeness_for_pairs(&pairs);
            std::hint::black_box(values.iter().sum::<f64>())
        });
    });

    group.finish();
}

fn bench_interest_similarity(c: &mut Criterion) {
    let config = ClosenessConfig::default();
    let (g, t, profiles) = env(41);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let pairs = working_set(&mut rng);
    let mut group = c.benchmark_group("interest_similarity_10k");
    group.sample_size(10);

    group.bench_function("btreemap_walk", |bench| {
        bench.iter(|| {
            let total: f64 = pairs
                .iter()
                .map(|&(a, b)| {
                    interest::weighted_similarity(&profiles[a.index()], &profiles[b.index()])
                })
                .sum();
            std::hint::black_box(total)
        });
    });

    let snapshot = GraphSnapshot::build(&g, &t, &profiles, 0, config);
    group.bench_function("bitset_popcount", |bench| {
        bench.iter(|| {
            let total: f64 = pairs
                .iter()
                .map(|&(a, b)| snapshot.weighted_similarity(a, b))
                .sum();
            std::hint::black_box(total)
        });
    });

    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let config = ClosenessConfig::default();
    let mut group = c.benchmark_group("snapshot_refresh_10k");
    group.sample_size(10);

    {
        let (g, mut t, profiles) = env(41);
        let mut round = 0usize;
        group.bench_function("full_rebuild", |bench| {
            bench.iter(|| {
                mutate(&mut t, round);
                round += 1;
                std::hint::black_box(GraphSnapshot::build(&g, &t, &profiles, 0, config))
            });
        });
    }

    {
        let (g, mut t, profiles) = env(41);
        let mut prev = GraphSnapshot::build(&g, &t, &profiles, 0, config);
        let mut round = 0usize;
        let mut patched = 0usize;
        group.bench_function("incremental_patch", |bench| {
            bench.iter(|| {
                mutate(&mut t, round);
                round += 1;
                let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &profiles, 0, config);
                if matches!(outcome, RefreshOutcome::Patched { .. }) {
                    patched += 1;
                }
                prev = next;
                std::hint::black_box(prev.epochs())
            });
        });
        println!("[refresh] {patched}/{round} rounds took the patch path");
    }

    group.finish();
}

/// The flat JSON object written for cross-PR perf tracking.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    nodes: usize,
    pairs: usize,
    mutated_nodes_per_round: usize,
    reps: u32,
    per_pair_bfs_seconds: f64,
    batched_csr_seconds: f64,
    closeness_speedup: f64,
    btreemap_similarity_seconds: f64,
    bitset_similarity_seconds: f64,
    similarity_speedup: f64,
    full_rebuild_seconds: f64,
    incremental_patch_seconds: f64,
    refresh_speedup: f64,
}

/// Mean seconds per run of `routine` over `reps` timed repetitions.
fn measure<F: FnMut()>(reps: u32, mut routine: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Re-measure the three comparisons with plain wall-clock timing and
/// write the result as a flat JSON object for cross-PR tracking.
fn write_bench_json(reps: u32) {
    let config = ClosenessConfig::default();
    let (g, mut t, profiles) = env(41);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let pairs = working_set(&mut rng);
    let model = ClosenessModel::new(&g, &t, config);
    let snapshot = GraphSnapshot::build(&g, &t, &profiles, 0, config);

    let per_pair = measure(reps, || {
        std::hint::black_box(
            pairs
                .iter()
                .map(|&(a, b)| model.closeness(a, b))
                .sum::<f64>(),
        );
    });
    let batched = measure(reps, || {
        std::hint::black_box(snapshot.closeness_for_pairs(&pairs));
    });
    let btreemap = measure(reps, || {
        std::hint::black_box(
            pairs
                .iter()
                .map(|&(a, b)| {
                    interest::weighted_similarity(&profiles[a.index()], &profiles[b.index()])
                })
                .sum::<f64>(),
        );
    });
    let bitset = measure(reps, || {
        std::hint::black_box(
            pairs
                .iter()
                .map(|&(a, b)| snapshot.weighted_similarity(a, b))
                .sum::<f64>(),
        );
    });
    let rebuild = measure(reps, || {
        std::hint::black_box(GraphSnapshot::build(&g, &t, &profiles, 0, config));
    });
    let mut prev = snapshot;
    let mut round = 0usize;
    let patch = measure(reps, || {
        mutate(&mut t, round);
        round += 1;
        let (next, _) = GraphSnapshot::refreshed(&prev, &g, &t, &profiles, 0, config);
        prev = next;
    });

    let report = BenchReport {
        bench: "snapshot",
        nodes: N,
        pairs: PAIRS,
        mutated_nodes_per_round: MUTATED_NODES,
        reps,
        per_pair_bfs_seconds: per_pair,
        batched_csr_seconds: batched,
        closeness_speedup: per_pair / batched,
        btreemap_similarity_seconds: btreemap,
        bitset_similarity_seconds: bitset,
        similarity_speedup: btreemap / bitset,
        full_rebuild_seconds: rebuild,
        incremental_patch_seconds: patch,
        refresh_speedup: rebuild / patch,
    };
    let path =
        std::env::var("BENCH_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_snapshot.json".to_owned());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
    .expect("bench report is writable");
    println!(
        "[snapshot json] closeness {:.2}x, similarity {:.2}x, refresh {:.2}x -> {path}",
        per_pair / batched,
        btreemap / bitset,
        rebuild / patch
    );
}

criterion_group!(
    benches,
    bench_pairwise_closeness,
    bench_interest_similarity,
    bench_refresh
);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    // Smoke mode (`--test`) keeps the JSON pass to a single repetition.
    let smoke = std::env::args().any(|a| a == "--test");
    write_bench_json(if smoke { 1 } else { 3 });
}
