//! Criterion bench — decision-provenance tracing overhead on full
//! simulation runs.
//!
//! Tracing must be cheap enough to leave on: the contract (DESIGN.md,
//! "Tracing & provenance contract") promises ≤5% overhead at the default
//! 1-in-16 sampling. Three cells, identical scenario and seed, differing
//! only in the tracer handed to `run_scenario_with_telemetry`:
//!
//! * `off` — `Tracer::disabled()`: the baseline; every instrumentation
//!   point short-circuits on a `None` inner.
//! * `sampled` — `SampleMode::Ratio(16)`, the default: non-admitted cycle
//!   roots cost one atomic increment, admitted cycles record fully.
//! * `full` — `SampleMode::Full`: every cycle records verdict, weight,
//!   and rescale spans (the worst case `--trace-out` enables).
//!
//! The Criterion group runs at the paper's 200-node scale. Besides those
//! cells, `main` re-measures the three modes with plain `Instant` timing
//! on a 10k-node scenario — the scale the CSR-snapshot work targets — and
//! writes the means plus overhead percentages to `BENCH_trace.json`
//! (override the path with `BENCH_TRACE_OUT`) so CI can track the perf
//! trajectory across PRs.

use criterion::{criterion_group, BenchmarkId, Criterion};
use serde::Serialize;
use socialtrust_sim::prelude::*;
use socialtrust_telemetry::{EventSink, SampleMode, Telemetry, Tracer, TracerConfig};
use std::time::Instant;

/// The paper-scale scenario for the Criterion cells.
fn scenario_paper() -> ScenarioConfig {
    ScenarioConfig::paper_default()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6)
        .with_cycles(3)
}

/// The 10k-node scenario for the committed JSON cells: paper proportions
/// (15% colluders, ~5% pretrusted) scaled up 50x, with the query load
/// trimmed so one run stays in bench-smoke territory. 16 simulation
/// cycles so `Ratio(16)` gets its true 1-in-16 duty cycle rather than
/// degenerating into "trace the only cycle".
fn scenario_10k() -> ScenarioConfig {
    let mut s = ScenarioConfig::paper_default()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6)
        .with_cycles(16);
    s.nodes = 10_000;
    s.colluder_count = 1_500;
    s.pretrusted_count = 450;
    s.boosted_count = 350;
    s.query_cycles = 5;
    s
}

fn tracer_for(mode: Option<SampleMode>) -> Tracer {
    match mode {
        None => Tracer::disabled(),
        Some(sample) => Tracer::new(TracerConfig::with_sample(sample)),
    }
}

/// One instrumented run; traces are drained afterwards so the ring buffer
/// never carries state across iterations.
fn run_traced(scenario: &ScenarioConfig, mode: Option<SampleMode>, seed: u64) -> usize {
    let telemetry = Telemetry::with_parts(EventSink::disabled(), tracer_for(mode));
    let result = run_scenario_with_telemetry(
        scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        seed,
        &telemetry,
    );
    let spans: usize = telemetry
        .tracer()
        .take_traces()
        .iter()
        .map(|t| t.spans.len())
        .sum();
    std::hint::black_box(result);
    spans
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let s = scenario_paper();
    let mut group = c.benchmark_group("tracing_overhead/200_nodes_3_cycles");
    group.sample_size(10);
    let modes: [(&str, Option<SampleMode>); 3] = [
        ("off", None),
        ("sampled_1_in_16", Some(SampleMode::Ratio(16))),
        ("full", Some(SampleMode::Full)),
    ];
    for (label, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(label), &s, |bench, s| {
            bench.iter(|| std::hint::black_box(run_traced(s, mode, 42)));
        });
    }
    group.finish();
}

/// The flat JSON object written for cross-PR perf tracking.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    nodes: usize,
    sim_cycles: usize,
    reps: u32,
    spans_recorded_full: usize,
    tracing_off_seconds: f64,
    tracing_sampled_seconds: f64,
    tracing_full_seconds: f64,
    sampled_overhead_percent: f64,
    full_overhead_percent: f64,
}

/// Mean seconds per run of `routine` over `reps` timed repetitions.
fn measure<F: FnMut()>(reps: u32, mut routine: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Re-measure the three modes with plain wall-clock timing on the
/// 10k-node scenario and write the result for cross-PR tracking.
fn write_bench_json(reps: u32) {
    let s = scenario_10k();
    // Warm-up run so first-touch costs (page faults, allocator growth)
    // don't land in the `off` baseline.
    let spans_full = run_traced(&s, Some(SampleMode::Full), 42);

    let off = measure(reps, || {
        run_traced(&s, None, 42);
    });
    let sampled = measure(reps, || {
        run_traced(&s, Some(SampleMode::Ratio(16)), 42);
    });
    let full = measure(reps, || {
        run_traced(&s, Some(SampleMode::Full), 42);
    });

    let report = BenchReport {
        bench: "trace",
        nodes: s.nodes,
        sim_cycles: s.sim_cycles,
        reps,
        spans_recorded_full: spans_full,
        tracing_off_seconds: off,
        tracing_sampled_seconds: sampled,
        tracing_full_seconds: full,
        sampled_overhead_percent: 100.0 * (sampled / off - 1.0),
        full_overhead_percent: 100.0 * (full / off - 1.0),
    };
    let path = std::env::var("BENCH_TRACE_OUT").unwrap_or_else(|_| "BENCH_trace.json".to_owned());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
    .expect("bench report is writable");
    println!(
        "[trace json] off {off:.3}s, sampled {sampled:.3}s ({:+.2}%), full {full:.3}s ({:+.2}%) -> {path}",
        report.sampled_overhead_percent, report.full_overhead_percent
    );
}

criterion_group!(benches, bench_tracing_overhead);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    // Smoke mode (`--test`) keeps the JSON pass to a single repetition.
    let smoke = std::env::args().any(|a| a == "--test");
    write_bench_json(if smoke { 1 } else { 3 });
}
