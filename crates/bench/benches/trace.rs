//! Criterion bench — synthetic Overstock trace generation and the
//! Section-3 analysis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust_socnet::NodeId;
use socialtrust_trace::analysis::TraceAnalysis;
use socialtrust_trace::crawler::crawl;
use socialtrust_trace::generator::{generate, TraceConfig};

fn config(users: usize) -> TraceConfig {
    TraceConfig {
        users,
        transactions: users * 20,
        ..TraceConfig::default()
    }
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    for &users in &[500usize, 2000] {
        let cfg = config(users);
        group.bench_with_input(BenchmarkId::new("generate", users), &cfg, |bench, cfg| {
            bench.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                std::hint::black_box(generate(cfg, &mut rng))
            });
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let platform = generate(&cfg, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("analysis_full", users),
            &platform,
            |bench, p| {
                bench.iter(|| {
                    let a = TraceAnalysis::new(p);
                    std::hint::black_box((
                        a.business_reputation_correlation(),
                        a.personal_reputation_correlation(),
                        a.rating_stats_by_distance(),
                        a.top3_category_share(),
                        a.share_transactions_above_similarity(0.3),
                    ))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("crawl", users), &platform, |bench, p| {
            bench.iter(|| std::hint::black_box(crawl(p, NodeId(0), None)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
