//! Extension — whitewashing colluders (identity reset).
//!
//! Classic P2P attack the paper does not evaluate: when a colluder's
//! reputation collapses, it abandons the identity and re-enters fresh —
//! the reputation engine forgets all opinions by and about it, wiping its
//! negative record.
//!
//! The interesting asymmetry: the reputation record resets, but the
//! *social fingerprint* (graph position, interaction history, request
//! profile) belongs to the human behind the identity and persists. Plain
//! reputation systems therefore lose ground to whitewashers, while
//! SocialTrust re-flags the fresh identity the moment it resumes colluding
//! from the same social position.
//!
//! Scenario: PCM with B = 0.2 (low-QoS colluders, whose records are worth
//! wiping).

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    system: String,
    whitewash: bool,
    colluder_mean: f64,
    normal_mean: f64,
    pct_requests_to_colluders: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn main() {
    println!("Extension — whitewashing colluders (PCM, B = 0.2)");
    println!(
        "{:>10} {:<28} {:>15} {:>13} {:>8}",
        "whitewash", "system", "colluder mean", "normal mean", "req %"
    );
    let mut rows = Vec::new();
    for whitewash in [false, true] {
        for kind in [
            ReputationKind::EBay,
            ReputationKind::EigenTrust,
            ReputationKind::EigenTrustWithSocialTrust,
        ] {
            let scenario = bench::scenario_base()
                .with_collusion(CollusionModel::PairWise)
                .with_colluder_behavior(0.2)
                .with_whitewash(whitewash);
            let cell = bench::run_cell(&scenario, kind);
            println!(
                "{:>10} {:<28} {:>15.5} {:>13.5} {:>7.1}%",
                whitewash,
                cell.system,
                cell.colluder_mean,
                cell.normal_mean,
                cell.pct_requests_to_colluders.0
            );
            rows.push(Row {
                system: cell.system.clone(),
                whitewash,
                colluder_mean: cell.colluder_mean,
                normal_mean: cell.normal_mean,
                pct_requests_to_colluders: cell.pct_requests_to_colluders.0,
            });
        }
    }
    // Claims: whitewashing must not help colluders escape SocialTrust.
    let st_plain = rows
        .iter()
        .find(|r| !r.whitewash && r.system.contains("SocialTrust"))
        .expect("row");
    let st_wash = rows
        .iter()
        .find(|r| r.whitewash && r.system.contains("SocialTrust"))
        .expect("row");
    println!(
        "\nunder SocialTrust, whitewashing leaves colluders suppressed \
         ({:.5} → {:.5}, still below normals {:.5}): {}",
        st_plain.colluder_mean,
        st_wash.colluder_mean,
        st_wash.normal_mean,
        if st_wash.colluder_mean < st_wash.normal_mean {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("ext_whitewash", &Result { rows });
}
