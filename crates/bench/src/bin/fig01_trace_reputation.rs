//! Figure 1 — effect of reputation on transactions in the Overstock trace.
//!
//! (a) business-network size vs reputation (the paper reports C = 0.996);
//! (b) number of received transactions vs reputation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_trace::analysis::TraceAnalysis;
use socialtrust_trace::generator::{generate, TraceConfig};

#[derive(Serialize)]
struct Fig1Result {
    business_correlation: f64,
    transactions_correlation: f64,
    business_binned: Vec<(f64, f64)>,
    transactions_binned: Vec<(f64, f64)>,
}

/// Average `y` per `x`-decile, for readable scatter summaries.
fn binned(pairs: &[(f64, f64)], bins: usize) -> Vec<(f64, f64)> {
    let mut sorted = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    sorted
        .chunks(sorted.len().div_ceil(bins).max(1))
        .map(|chunk| {
            let n = chunk.len() as f64;
            (
                chunk.iter().map(|p| p.0).sum::<f64>() / n,
                chunk.iter().map(|p| p.1).sum::<f64>() / n,
            )
        })
        .collect()
}

fn main() {
    let cfg = if bench::fast_mode() {
        TraceConfig::small()
    } else {
        TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
    println!(
        "Figure 1 — synthetic Overstock trace: {} users, {} transactions",
        cfg.users, cfg.transactions
    );
    let platform = generate(&cfg, &mut rng);
    let analysis = TraceAnalysis::new(&platform);

    let c_bus = analysis.business_reputation_correlation();
    let bus = binned(&analysis.business_network_vs_reputation(), 10);
    println!("\n(a) business-network size vs reputation — C = {c_bus:.3} (paper: 0.996)");
    bench::print_series(("reputation", "business size"), &bus);

    let tx_pairs = analysis.transactions_vs_reputation();
    let (x, y): (Vec<f64>, Vec<f64>) = tx_pairs.iter().copied().unzip();
    let c_tx = socialtrust_trace::analysis::correlation(&x, &y);
    let tx = binned(&tx_pairs, 10);
    println!("\n(b) received transactions vs reputation — C = {c_tx:.3}");
    bench::print_series(("reputation", "transactions"), &tx);

    println!(
        "\nO1 check: reputation and business-network size strongly linear: {}",
        if c_bus > 0.8 { "HOLDS" } else { "FAILS" }
    );
    bench::write_json(
        "fig01_trace_reputation",
        &Fig1Result {
            business_correlation: c_bus,
            transactions_correlation: c_tx,
            business_binned: bus,
            transactions_binned: tx,
        },
    );
}
