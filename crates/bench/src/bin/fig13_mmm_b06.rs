//! Figure 13 — reputation distribution in MultiMutual with B=0.6.
//!
//! MMM with B=0.6: mutual boosting lifts boosters and boosted alike — the
//! hardest case for the baselines; SocialTrust collapses the cluster.
//!
//! Panels: (a) EigenTrust, (b) eBay, (c) EigenTrust+SocialTrust,
//! (d) eBay+SocialTrust — same layout as the paper.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    panels: Vec<bench::SystemSummary>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.6);
    println!("Figure 13 — MultiMutual, B = 0.6 (pretrusted ids 0-8, colluders 9-38)");
    let panels = bench::four_panel("Figure 13", &scenario);
    bench::print_verdict(&panels[0], &panels[2]); // EigenTrust vs +SocialTrust
    bench::print_verdict(&panels[1], &panels[3]); // eBay vs +SocialTrust
    bench::write_json("fig13_mmm_b06", &Result { panels });
}
