//! Figure 6 — the two-dimensional (closeness × similarity) adjustment
//! surface of Eq. (9).
//!
//! The corner regions — (Hc,Hs), (Hc,Ls), (Lc,Hs), (Lc,Ls) — are damped
//! most strongly; the centre (normal closeness, normal similarity) passes
//! through at weight α.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::gaussian::combined_weight;
use socialtrust_core::stats::OmegaStats;

#[derive(Serialize)]
struct Fig6Result {
    closeness_stats: OmegaStats,
    similarity_stats: OmegaStats,
    /// Row-major grid of weights, `grid[i][j]` at (Ωc_i, Ωs_j).
    grid: Vec<Vec<f64>>,
    omega_c_axis: Vec<f64>,
    omega_s_axis: Vec<f64>,
}

fn main() {
    let sc = OmegaStats::new(0.3, 1.0, 0.0);
    let ss = OmegaStats::overstock_similarity();
    println!(
        "Figure 6 — 2-D adjustment surface (Ω̄c = {:.2}, Ω̄s = {:.2})",
        sc.mean, ss.mean
    );

    let omega_c_axis: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
    let omega_s_axis: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
    let grid: Vec<Vec<f64>> = omega_c_axis
        .iter()
        .map(|&oc| {
            omega_s_axis
                .iter()
                .map(|&os| combined_weight(oc, &sc, os, &ss, 1.0))
                .collect()
        })
        .collect();

    print!("{:>6}", "Ωc\\Ωs");
    for os in &omega_s_axis {
        print!("{os:>7.1}");
    }
    println!();
    for (i, row) in grid.iter().enumerate() {
        print!("{:>6.1}", omega_c_axis[i]);
        for w in row {
            print!("{w:>7.3}");
        }
        println!();
    }

    // Corner vs centre check (Figure 6's claim).
    let centre = combined_weight(sc.mean, &sc, ss.mean, &ss, 1.0);
    let corners = [
        combined_weight(1.0, &sc, 1.0, &ss, 1.0),
        combined_weight(1.0, &sc, 0.0, &ss, 1.0),
        combined_weight(0.0, &sc, 1.0, &ss, 1.0),
        combined_weight(0.0, &sc, 0.0, &ss, 1.0),
    ];
    println!("\ncentre = {centre:.3}; corners = {corners:?}");
    println!(
        "corner-damping check: {}",
        if corners.iter().all(|&c| c < centre) {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "fig06_gaussian_2d",
        &Fig6Result {
            closeness_stats: sc,
            similarity_stats: ss,
            grid,
            omega_c_axis,
            omega_s_axis,
        },
    );
}
