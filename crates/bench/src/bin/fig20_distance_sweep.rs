//! Figure 20 — average colluder reputation vs the social distance between
//! colluding pairs (1–3 hops), under EigenTrust+SocialTrust.
//!
//! The paper's point: even when colluders engineer a *moderate* social
//! distance (2 hops) to dodge the closeness extremes, their reputations
//! stay well below normal nodes — the filter also uses interest similarity
//! and interaction behavior, which they cannot normalize away.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    model: String,
    distance: u32,
    colluder_mean: f64,
    normal_mean: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn main() {
    println!("Figure 20 — average reputation vs colluder social distance (EigenTrust+SocialTrust)");
    let models = [
        CollusionModel::PairWise,
        CollusionModel::MultiNode,
        CollusionModel::MultiMutual,
    ];
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>10} {:>18} {:>16}",
        "model", "distance", "colluder mean", "normal mean"
    );
    for &model in &models {
        for distance in 1..=3u32 {
            let scenario = bench::scenario_base()
                .with_collusion(model)
                .with_colluder_behavior(0.6)
                .with_colluder_distance(distance);
            let cell = bench::run_cell(&scenario, ReputationKind::EigenTrustWithSocialTrust);
            println!(
                "{:>6} {:>10} {:>18.5} {:>16.5}",
                model.to_string(),
                distance,
                cell.colluder_mean,
                cell.normal_mean
            );
            rows.push(Row {
                model: model.to_string(),
                distance,
                colluder_mean: cell.colluder_mean,
                normal_mean: cell.normal_mean,
            });
        }
    }
    let holds = rows.iter().all(|r| r.colluder_mean < r.normal_mean);
    println!(
        "\npaper's claim (colluders stay below normal nodes at every distance, incl. moderate d=2): {}",
        if holds { "HOLDS" } else { "FAILS" }
    );
    bench::write_json("fig20_distance_sweep", &Result { rows });
}
