//! Extension — negative-rating collusion (behavior B4 end-to-end).
//!
//! The paper's evaluation uses positive ratings among colluders and notes
//! that *"similar results can be obtained for the collusion of negative
//! ratings"*. This experiment runs that claim: each colluder picks a
//! normal-node *competitor* (same declared interests) and floods it with
//! negative ratings.
//!
//! Expected shapes:
//! * EigenTrust is structurally robust to badmouthing (negative local
//!   trust is floored at zero — the victim's inflow from honest raters is
//!   untouched);
//! * the eBay model is vulnerable: each attacking rater subtracts one
//!   feedback unit per cycle from its victim;
//! * SocialTrust detects B4 (frequent negatives despite high interest
//!   similarity) and damps the spam, restoring most of the victims'
//!   reputation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::build::SimWorld;
use socialtrust_sim::prelude::*;
use socialtrust_sim::runner::make_system;
use socialtrust_socnet::NodeId;

#[derive(Serialize)]
struct Row {
    system: String,
    victim_mean: f64,
    other_normal_mean: f64,
    victim_deficit_pct: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn measure(scenario: &ScenarioConfig, kind: ReputationKind, seed: u64) -> Row {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let world = SimWorld::build(scenario, &mut rng);
    let victims: Vec<NodeId> = world.plan.victims.clone();
    let others: Vec<NodeId> = scenario
        .normal_ids()
        .into_iter()
        .filter(|v| !victims.contains(v))
        .collect();
    let mut system = make_system(kind, scenario, &world);
    let result = socialtrust_sim::engine::run(&world, scenario, system.as_mut(), &mut rng);
    let victim_mean = result.final_summary.mean_reputation(&victims);
    let other_mean = result.final_summary.mean_reputation(&others);
    Row {
        system: kind.to_string(),
        victim_mean,
        other_normal_mean: other_mean,
        victim_deficit_pct: if other_mean > 0.0 {
            100.0 * (1.0 - victim_mean / other_mean)
        } else {
            0.0
        },
    }
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::NegativeCampaign)
        .with_colluder_behavior(0.8); // attackers blend in as servers
    println!("Extension — negative-rating campaign against normal-node competitors (B4)");
    println!(
        "{:<28} {:>13} {:>15} {:>16}",
        "system", "victim mean", "other normals", "victim deficit"
    );
    let mut rows = Vec::new();
    for kind in [
        ReputationKind::EigenTrust,
        ReputationKind::EBay,
        ReputationKind::EigenTrustWithSocialTrust,
        ReputationKind::EBayWithSocialTrust,
    ] {
        let row = measure(&scenario, kind, bench::base_seed());
        println!(
            "{:<28} {:>13.5} {:>15.5} {:>15.1}%",
            row.system, row.victim_mean, row.other_normal_mean, row.victim_deficit_pct
        );
        rows.push(row);
    }
    let ebay_deficit = rows[1].victim_deficit_pct;
    let ebay_st_deficit = rows[3].victim_deficit_pct;
    println!(
        "\nbadmouthing hurts eBay victims ({ebay_deficit:.0}% deficit); SocialTrust restores them \
         ({ebay_st_deficit:.0}%): {}",
        if ebay_st_deficit < ebay_deficit {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("ext_negative_campaign", &Result { rows });
}
