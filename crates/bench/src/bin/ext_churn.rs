//! Extension — population churn (membership turnover).
//!
//! P2P populations turn over constantly; every cycle a fraction of normal
//! nodes departs and is replaced by fresh identities the reputation engine
//! knows nothing about. Churn stresses reputation bootstrap: newcomers
//! start at zero and must re-earn standing, so aggregate normal-node
//! reputation sags as churn rises — while the (stable) colluders' relative
//! position improves for free under an unprotected system.
//!
//! The claim under test: SocialTrust keeps *suppressing collusion* at
//! every churn level — its detection keys on per-interval behavior, not
//! long-lived identity state, so turnover does not starve it of signal.
//! (Note the measured finding: at heavy churn the *mean-vs-mean*
//! comparison degrades for any defense, because the stable colluders are
//! the only long-lived identities while honest standing keeps being wiped
//! — reputation systems inherently reward longevity.)

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    churn_rate: f64,
    system: String,
    colluder_mean: f64,
    normal_mean: f64,
    pct_requests_to_colluders: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn main() {
    println!("Extension — population churn (PCM, B = 0.6)");
    println!(
        "{:>7} {:<28} {:>15} {:>13} {:>8}",
        "churn", "system", "colluder mean", "normal mean", "req %"
    );
    let mut rows = Vec::new();
    for &churn in &[0.0, 0.05, 0.2] {
        for kind in [
            ReputationKind::EigenTrust,
            ReputationKind::EigenTrustWithSocialTrust,
        ] {
            let scenario = bench::scenario_base()
                .with_collusion(CollusionModel::PairWise)
                .with_colluder_behavior(0.6)
                .with_churn(churn);
            let cell = bench::run_cell(&scenario, kind);
            println!(
                "{:>6.0}% {:<28} {:>15.5} {:>13.5} {:>7.1}%",
                churn * 100.0,
                cell.system,
                cell.colluder_mean,
                cell.normal_mean,
                cell.pct_requests_to_colluders.0
            );
            rows.push(Row {
                churn_rate: churn,
                system: cell.system.clone(),
                colluder_mean: cell.colluder_mean,
                normal_mean: cell.normal_mean,
                pct_requests_to_colluders: cell.pct_requests_to_colluders.0,
            });
        }
    }
    // Relative suppression per churn level: ST colluder mean vs the
    // unprotected colluder mean at the same churn.
    let mut holds = true;
    println!();
    for &churn in &[0.0, 0.05, 0.2] {
        let plain = rows
            .iter()
            .find(|r| r.churn_rate == churn && !r.system.contains("SocialTrust"))
            .expect("row");
        let st = rows
            .iter()
            .find(|r| r.churn_rate == churn && r.system.contains("SocialTrust"))
            .expect("row");
        let factor = plain.colluder_mean / st.colluder_mean.max(1e-12);
        println!(
            "churn {:>3.0}%: suppression factor {:.1}x (requests {:.1}% → {:.1}%)",
            churn * 100.0,
            factor,
            plain.pct_requests_to_colluders,
            st.pct_requests_to_colluders
        );
        holds &= factor > 3.0;
    }
    println!(
        "SocialTrust keeps suppressing collusion (>3x) at every churn level: {}",
        if holds { "HOLDS" } else { "FAILS" }
    );
    println!(
        "(at heavy churn the honest *mean* sags below the stable colluders for any\n\
         defense — newcomers hold no standing; see EXPERIMENTS.md)"
    );
    bench::write_json("ext_churn", &Result { rows });
}
