//! Figure 4 — impact of interests on purchasing patterns.
//!
//! (a) CDF of purchases over category *ranks* (the paper: top-3 categories
//!     hold ≈ 88% of a user's purchases — Observation O5);
//! (b) CDF of transaction volume over buyer–seller interest similarity
//!     (the paper: 60% of transactions between pairs with > 30%
//!     similarity — Observation O6).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_trace::analysis::TraceAnalysis;
use socialtrust_trace::generator::{generate, TraceConfig};

#[derive(Serialize)]
struct Fig4Result {
    category_rank_cdf: Vec<f64>,
    top3_share: f64,
    similarity_cdf: Vec<(f64, f64)>,
    share_above_30pct: f64,
}

fn main() {
    let cfg = if bench::fast_mode() {
        TraceConfig::small()
    } else {
        TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
    let platform = generate(&cfg, &mut rng);
    let analysis = TraceAnalysis::new(&platform);

    let cdf = analysis.category_rank_cdf(7);
    let top3 = analysis.top3_category_share();
    println!("Figure 4(a) — CDF of purchases by category rank");
    println!("{:>6} {:>10}", "rank", "CDF");
    for (k, v) in cdf.iter().enumerate() {
        println!("{:>6} {:>10.3}", k + 1, v);
    }
    println!("top-3 share = {top3:.3}   (paper: ≈ 0.88)");

    let sim_cdf = analysis.similarity_transaction_cdf(10);
    let above = analysis.share_transactions_above_similarity(0.3);
    println!("\nFigure 4(b) — CDF of transactions over interest similarity");
    println!("{:>12} {:>10}", "similarity ≤", "CDF");
    for (s, v) in &sim_cdf {
        println!("{s:>12.1} {v:>10.3}");
    }
    println!("share of transactions above 0.3 similarity = {above:.3}   (paper: 0.6)");
    println!(
        "\nO5 check: {}   O6 check: {}",
        if top3 > 0.75 { "HOLDS" } else { "FAILS" },
        if above > 0.5 { "HOLDS" } else { "FAILS" }
    );
    bench::write_json(
        "fig04_interest_similarity",
        &Fig4Result {
            category_rank_cdf: cdf,
            top3_share: top3,
            similarity_cdf: sim_cdf,
            share_above_30pct: above,
        },
    );
}
