//! Figure 3 — impact of social distance on rating value and frequency.
//!
//! (a) average rating value per social distance (1–4 hops);
//! (b) average number of ratings per pair per social distance.
//!
//! Both fall with distance — the basis for suspicious behavior B1
//! (high-value, high-frequency ratings across long distances are
//! anomalous).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_trace::analysis::{DistanceStats, TraceAnalysis};
use socialtrust_trace::generator::{generate, TraceConfig};

#[derive(Serialize)]
struct Fig3Result {
    stats: Vec<DistanceStats>,
    value_monotone: bool,
    count_monotone: bool,
}

fn main() {
    let cfg = if bench::fast_mode() {
        TraceConfig::small()
    } else {
        TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
    let platform = generate(&cfg, &mut rng);
    let stats = TraceAnalysis::new(&platform).rating_stats_by_distance();

    println!("Figure 3 — impact of social distance on ratings");
    println!(
        "{:>9} {:>18} {:>18}",
        "distance", "avg rating value", "avg #ratings/pair"
    );
    for s in &stats {
        println!(
            "{:>9} {:>18.3} {:>18.3}",
            s.distance, s.avg_rating_value, s.avg_rating_count
        );
    }
    let value_monotone = stats
        .windows(2)
        .all(|w| w[0].avg_rating_value >= w[1].avg_rating_value - 0.05);
    let count_monotone = stats
        .windows(2)
        .all(|w| w[0].avg_rating_count >= w[1].avg_rating_count - 0.05);
    println!(
        "\nO3/O4 check: rating value and frequency fall with distance: {}",
        if value_monotone && count_monotone {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "fig03_social_distance",
        &Fig3Result {
            stats,
            value_monotone,
            count_monotone,
        },
    );
}
