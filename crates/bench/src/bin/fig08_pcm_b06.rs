//! Figure 8 — reputation distribution in PairWise with B=0.6.
//!
//! PCM with B=0.6: colluders overtake everyone under plain EigenTrust and eBay;
//! SocialTrust collapses their reputations (panels (c)/(d)).
//!
//! Panels: (a) EigenTrust, (b) eBay, (c) EigenTrust+SocialTrust,
//! (d) eBay+SocialTrust — same layout as the paper.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    panels: Vec<bench::SystemSummary>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);
    println!("Figure 8 — PairWise, B = 0.6 (pretrusted ids 0-8, colluders 9-38)");
    let panels = bench::four_panel("Figure 8", &scenario);
    bench::print_verdict(&panels[0], &panels[2]); // EigenTrust vs +SocialTrust
    bench::print_verdict(&panels[1], &panels[3]); // eBay vs +SocialTrust
    bench::write_json("fig08_pcm_b06", &Result { panels });
}
