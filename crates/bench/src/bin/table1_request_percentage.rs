//! Table 1 — percentage of service requests sent to colluders, for every
//! (collusion model × reputation system × B) cell the paper reports,
//! including the compromised-pre-trusted ("(Pre)") variants.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Cell {
    model: String,
    b: f64,
    system: String,
    compromised_pretrusted: bool,
    pct_requests_to_colluders: f64,
    ci95: f64,
}

#[derive(Serialize)]
struct Result {
    cells: Vec<Cell>,
}

fn main() {
    println!("Table 1 — percentage of requests sent to colluders");
    let models = [
        CollusionModel::PairWise,
        CollusionModel::MultiNode,
        CollusionModel::MultiMutual,
    ];
    // (kind, compromised?) rows, in the paper's order.
    let rows: [(ReputationKind, bool); 6] = [
        (ReputationKind::EBay, false),
        (ReputationKind::EigenTrust, false),
        (ReputationKind::EigenTrust, true),
        (ReputationKind::EBayWithSocialTrust, false),
        (ReputationKind::EigenTrustWithSocialTrust, false),
        (ReputationKind::EigenTrustWithSocialTrust, true),
    ];
    let mut cells = Vec::new();
    for &model in &models {
        println!("\n=== {model} ===");
        println!("{:<42} {:>10} {:>10}", "system", "B=0.2", "B=0.6");
        for &(kind, pre) in &rows {
            let mut line = format!(
                "{:<42}",
                format!("{kind}{}", if pre { " (Pre)" } else { "" })
            );
            for &b in &[0.2, 0.6] {
                let scenario = bench::scenario_base()
                    .with_collusion(model)
                    .with_colluder_behavior(b)
                    .with_compromised_pretrusted(if pre { 7 } else { 0 });
                let summary =
                    run_scenario_multi(&scenario, kind, bench::base_seed(), bench::runs());
                let (pct, ci) = summary.percent_requests_to_colluders();
                line.push_str(&format!(" {pct:>9.1}%"));
                cells.push(Cell {
                    model: model.to_string(),
                    b,
                    system: kind.to_string(),
                    compromised_pretrusted: pre,
                    pct_requests_to_colluders: pct,
                    ci95: ci,
                });
            }
            println!("{line}");
        }
    }
    // The paper's headline: SocialTrust reduces the percentage to low
    // single digits in every model.
    let worst_protected = cells
        .iter()
        .filter(|c| c.system.contains("SocialTrust"))
        .map(|c| c.pct_requests_to_colluders)
        .fold(0.0, f64::max);
    println!(
        "\nworst SocialTrust cell: {worst_protected:.1}% (paper: 2-4%) — {}",
        if worst_protected < 10.0 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("table1_request_percentage", &Result { cells });
}
