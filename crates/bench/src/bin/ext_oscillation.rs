//! Extension — oscillating colluders (from the paper's future-work list of
//! "other collusion patterns").
//!
//! Colluders alternate between quiet, well-behaved phases and collusion
//! bursts (period `k`: collude during the first `k/2` cycles of every
//! window). The classic goal is to let detection state "cool off" between
//! bursts. Because SocialTrust re-detects from each interval's rating
//! frequencies — and the social coefficients (closeness, similarity) don't
//! reset — the bursts are flagged every time they resume.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    period: Option<usize>,
    system: String,
    colluder_mean: f64,
    normal_mean: f64,
    suspicions: u64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn main() {
    println!("Extension — oscillating colluders (PCM bursts, B = 0.6)");
    println!(
        "{:>9} {:<26} {:>15} {:>13} {:>11}",
        "period", "system", "colluder mean", "normal mean", "suspicions"
    );
    let mut rows = Vec::new();
    for period in [None, Some(4), Some(10)] {
        for kind in [
            ReputationKind::EigenTrust,
            ReputationKind::EigenTrustWithSocialTrust,
        ] {
            let mut scenario = bench::scenario_base()
                .with_collusion(CollusionModel::PairWise)
                .with_colluder_behavior(0.6);
            if let Some(p) = period {
                scenario = scenario.with_oscillation(p);
            }
            let colluders = scenario.colluder_ids();
            let normals = scenario.normal_ids();
            let r = run_scenario(&scenario, kind, bench::base_seed());
            let row = Row {
                period,
                system: kind.to_string(),
                colluder_mean: r.final_summary.mean_reputation(&colluders),
                normal_mean: r.final_summary.mean_reputation(&normals),
                suspicions: r.suspicions_flagged,
            };
            println!(
                "{:>9} {:<26} {:>15.5} {:>13.5} {:>11}",
                row.period.map(|p| p.to_string()).unwrap_or("steady".into()),
                row.system,
                row.colluder_mean,
                row.normal_mean,
                row.suspicions
            );
            rows.push(row);
        }
    }
    // Claim: under SocialTrust, oscillating colluders stay below normal
    // nodes for every period.
    let holds = rows
        .iter()
        .filter(|r| r.system.contains("SocialTrust"))
        .all(|r| r.colluder_mean < r.normal_mean);
    println!(
        "\noscillation does not evade SocialTrust: {}",
        if holds { "HOLDS" } else { "FAILS" }
    );
    bench::write_json("ext_oscillation", &Result { rows });
}
