//! Extension — structural (community/cut) detection vs SocialTrust's
//! behavioral detection.
//!
//! The paper's related work argues that the small cut between a colluding
//! collective and honest nodes enables structure-based defenses
//! (SybilGuard-family, community detection). This experiment measures that
//! signal on the simulated social network and contrasts it with
//! SocialTrust:
//!
//! * conductance of the colluder set (low = structurally separable);
//! * label-propagation community purity: how many colluding pairs land in
//!   the same community;
//! * SocialTrust's detection coverage of the collusion edges on the same
//!   world.
//!
//! Punchline (measured): rating colluders organized as *pairs* embedded in
//! the honest backbone never develop the disproportionately-small cut the
//! Sybil-defense assumption needs — their conductance stays ≈0.7–0.9 in
//! every variant — while SocialTrust's behavioral detection (interaction +
//! interest + frequency) covers all collusion edges. Structure-based
//! defenses target a different attacker shape (mass fake identities) than
//! rating collusion; the two are complementary, as the paper suggests.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::decorator::WithSocialTrust;
use socialtrust_reputation::prelude::EigenTrust;
use socialtrust_sim::build::SimWorld;
use socialtrust_sim::prelude::*;
use socialtrust_sim::runner::socialtrust_config_for;
use socialtrust_socnet::community::{communities, conductance, label_propagation};

#[derive(Serialize)]
struct Row {
    variant: String,
    colluder_conductance: f64,
    same_community_pairs_pct: f64,
    socialtrust_edge_coverage_pct: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn measure(variant: &str, scenario: &ScenarioConfig) -> Row {
    let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
    let world = SimWorld::build(scenario, &mut rng);

    // Run the simulation under SocialTrust to collect behavioral coverage.
    let mut system = WithSocialTrust::new(
        EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids()),
        world.ctx.clone(),
        socialtrust_config_for(scenario),
    );
    let _ = socialtrust_sim::engine::run(&world, scenario, &mut system, &mut rng);
    let flagged: std::collections::BTreeSet<_> = system
        .last_suspicions()
        .iter()
        .map(|s| (s.rater, s.ratee))
        .collect();
    let covered = world
        .plan
        .edges
        .iter()
        .filter(|e| flagged.contains(&(e.rater, e.ratee)))
        .count();
    let coverage = if world.plan.edges.is_empty() {
        0.0
    } else {
        100.0 * covered as f64 / world.plan.edges.len() as f64
    };

    // Structural analysis of the (final) social graph.
    let ctx = world.ctx.read();
    let colluders = scenario.colluder_ids();
    let phi = conductance(ctx.graph(), &colluders);
    let labels = label_propagation(ctx.graph(), 30, &mut rng);
    let _ = communities(&labels);
    let same = world
        .plan
        .social_pairs
        .iter()
        .filter(|(a, b)| labels[a.index()] == labels[b.index()])
        .count();
    let same_pct = if world.plan.social_pairs.is_empty() {
        0.0
    } else {
        100.0 * same as f64 / world.plan.social_pairs.len() as f64
    };

    Row {
        variant: variant.into(),
        colluder_conductance: phi,
        same_community_pairs_pct: same_pct,
        socialtrust_edge_coverage_pct: coverage,
    }
}

fn main() {
    println!("Extension — structural vs behavioral collusion signals (PCM, B = 0.6)");
    let base = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);
    let variants = [
        ("clique (distance 1)", base.clone()),
        (
            "moderate distance 2",
            base.clone().with_colluder_distance(2),
        ),
        (
            "falsified sparse link",
            base.clone().with_falsified_social_info(true),
        ),
    ];
    println!(
        "{:<24} {:>14} {:>20} {:>22}",
        "variant", "conductance", "same-community %", "SocialTrust coverage %"
    );
    let mut rows = Vec::new();
    for (label, scenario) in variants {
        let row = measure(label, &scenario);
        println!(
            "{:<24} {:>14.3} {:>19.0}% {:>21.0}%",
            row.variant,
            row.colluder_conductance,
            row.same_community_pairs_pct,
            row.socialtrust_edge_coverage_pct
        );
        rows.push(row);
    }
    println!(
        "\nbehavioral detection keeps ≥ 50% edge coverage across variants: {}",
        if rows.iter().all(|r| r.socialtrust_edge_coverage_pct >= 50.0) {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("ext_community", &Result { rows });
}
