//! Figure 10 — PCM with **compromised pre-trusted nodes**, B = 0.2.
//!
//! Seven of the nine pre-trusted nodes each pick a colluder and collude
//! with it pair-wise. The paper shows that plain EigenTrust is subverted —
//! compromised pre-trusted nodes boost the colluders (and themselves) —
//! while EigenTrust+SocialTrust drives both the colluders and the
//! compromised pre-trusted nodes to near-zero reputation.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    eigentrust: bench::SystemSummary,
    eigentrust_socialtrust: bench::SystemSummary,
    baseline_eigentrust_no_compromise: bench::SystemSummary,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.2)
        .with_compromised_pretrusted(7);
    println!("Figure 10 — PCM + 7 compromised pre-trusted nodes, B = 0.2");

    let et = bench::run_cell(&scenario, ReputationKind::EigenTrust);
    bench::print_distribution("Fig 10(a) EigenTrust", &scenario, &et);
    let st = bench::run_cell(&scenario, ReputationKind::EigenTrustWithSocialTrust);
    bench::print_distribution("Fig 10(b) EigenTrust+SocialTrust", &scenario, &st);

    // Contrast against PCM B=0.2 *without* compromised pre-trusted nodes
    // (Figure 9(a)): compromising pre-trusted nodes must visibly help the
    // colluders under plain EigenTrust.
    let clean = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.2);
    let base = bench::run_cell(&clean, ReputationKind::EigenTrust);

    println!(
        "\ncolluder mean: clean EigenTrust {:.5} → compromised {:.5} (boost from compromised pretrusted: {})",
        base.colluder_mean,
        et.colluder_mean,
        if et.colluder_mean > base.colluder_mean { "HOLDS" } else { "FAILS" },
    );
    bench::print_verdict(&et, &st);
    bench::write_json(
        "fig10_pcm_compromised",
        &Result {
            eigentrust: et,
            eigentrust_socialtrust: st,
            baseline_eigentrust_no_compromise: base,
        },
    );
}
