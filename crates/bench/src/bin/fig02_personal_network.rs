//! Figure 2 — personal-network size vs reputation.
//!
//! The paper finds only a very weak linear relationship (C = 0.092):
//! a low-reputed user may have just as many friends as a high-reputed one
//! (Observation O2 / Inference I2 — the raw material for collusion).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_trace::analysis::TraceAnalysis;
use socialtrust_trace::generator::{generate, TraceConfig};

#[derive(Serialize)]
struct Fig2Result {
    personal_correlation: f64,
    business_correlation: f64,
    binned: Vec<(f64, f64)>,
}

fn main() {
    let cfg = if bench::fast_mode() {
        TraceConfig::small()
    } else {
        TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
    let platform = generate(&cfg, &mut rng);
    let analysis = TraceAnalysis::new(&platform);

    let c_personal = analysis.personal_reputation_correlation();
    let c_business = analysis.business_reputation_correlation();
    let pairs = analysis.personal_network_vs_reputation();
    let mut sorted = pairs.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let binned: Vec<(f64, f64)> = sorted
        .chunks(sorted.len().div_ceil(10).max(1))
        .map(|chunk| {
            let n = chunk.len() as f64;
            (
                chunk.iter().map(|p| p.0).sum::<f64>() / n,
                chunk.iter().map(|p| p.1).sum::<f64>() / n,
            )
        })
        .collect();

    println!("Figure 2 — personal-network size vs reputation");
    println!("C(personal) = {c_personal:.3}   (paper: 0.092)");
    println!("C(business) = {c_business:.3}   (paper: 0.996), for contrast");
    bench::print_series(("reputation", "friends"), &binned);
    println!(
        "\nO2 check: personal network uncorrelated with reputation: {}",
        if c_personal < 0.3 && c_personal < c_business / 2.0 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "fig02_personal_network",
        &Fig2Result {
            personal_correlation: c_personal,
            business_correlation: c_business,
            binned,
        },
    );
}
