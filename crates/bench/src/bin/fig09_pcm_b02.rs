//! Figure 9 — reputation distribution in PairWise with B=0.2.
//!
//! PCM with B=0.2: EigenTrust already suppresses low-QoS colluders on its own;
//! eBay leaves them flat; SocialTrust drives both to ~0.
//!
//! Panels: (a) EigenTrust, (b) eBay, (c) EigenTrust+SocialTrust,
//! (d) eBay+SocialTrust — same layout as the paper.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    panels: Vec<bench::SystemSummary>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.2);
    println!("Figure 9 — PairWise, B = 0.2 (pretrusted ids 0-8, colluders 9-38)");
    let panels = bench::four_panel("Figure 9", &scenario);
    bench::print_verdict(&panels[0], &panels[2]); // EigenTrust vs +SocialTrust
    bench::print_verdict(&panels[1], &panels[3]); // eBay vs +SocialTrust
    bench::write_json("fig09_pcm_b02", &Result { panels });
}
