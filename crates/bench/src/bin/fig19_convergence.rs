//! Figure 19 — efficiency of collusion deterrence: how many simulation
//! cycles until every colluder's reputation stays below 0.001 (MMM).
//!
//! (a) B = 0.2 — SocialTrust and EigenTrust converge in a handful of
//!     cycles; eBay takes several times longer (its score moves by at most
//!     a few units per cycle);
//! (b) B = 0.6 — only the SocialTrust-protected systems converge at all
//!     (plain eBay cannot suppress well-behaved colluders, so the paper
//!     omits it).
//!
//! Reported as the paper does: 1st percentile, median, 99th percentile
//! over the runs.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

const THRESHOLD: f64 = 0.001;

#[derive(Serialize)]
struct Cell {
    system: String,
    p1: f64,
    median: f64,
    p99: f64,
    converged_runs: usize,
    total_runs: usize,
}

#[derive(Serialize)]
struct Result {
    b02: Vec<Cell>,
    b06: Vec<Cell>,
}

fn measure(scenario: &ScenarioConfig, kind: ReputationKind) -> Cell {
    let summary = run_scenario_multi(scenario, kind, bench::base_seed(), bench::runs());
    let (p1, median, p99) = summary.convergence_percentiles(THRESHOLD);
    let converged = summary
        .runs
        .iter()
        .filter(|r| r.cycles_until_colluders_below(THRESHOLD).is_some())
        .count();
    Cell {
        system: kind.to_string(),
        p1,
        median,
        p99,
        converged_runs: converged,
        total_runs: summary.runs.len(),
    }
}

fn print_cells(title: &str, cells: &[Cell]) {
    println!("\n{title}");
    println!(
        "{:<38} {:>6} {:>8} {:>6} {:>12}",
        "system", "p1", "median", "p99", "converged"
    );
    for c in cells {
        println!(
            "{:<38} {:>6.1} {:>8.1} {:>6.1} {:>9}/{}",
            c.system, c.p1, c.median, c.p99, c.converged_runs, c.total_runs
        );
    }
}

fn main() {
    println!(
        "Figure 19 — simulation cycles until all colluder reputations stay below {THRESHOLD} (MMM)"
    );
    let kinds_02 = [
        ReputationKind::EigenTrustWithSocialTrust,
        ReputationKind::EigenTrust,
        ReputationKind::EBay,
    ];
    let kinds_06 = [
        ReputationKind::EigenTrustWithSocialTrust,
        ReputationKind::EBayWithSocialTrust,
        ReputationKind::EigenTrust,
    ];

    let s02 = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.2);
    let b02: Vec<Cell> = kinds_02.iter().map(|&k| measure(&s02, k)).collect();
    print_cells("(a) B = 0.2", &b02);

    let s06 = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.6);
    let b06: Vec<Cell> = kinds_06.iter().map(|&k| measure(&s06, k)).collect();
    print_cells("(b) B = 0.6", &b06);

    let st_median = b02[0].median;
    let ebay_median = b02[2].median;
    println!(
        "\npaper's claim (eBay converges several times slower than SocialTrust at B=0.2): {}",
        if ebay_median > st_median {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("fig19_convergence", &Result { b02, b06 });
}
