//! Figure 12 — reputation distribution in MultiNode with B=0.2.
//!
//! MCM with B=0.2: EigenTrust resists (boosters carry no weight); in eBay the
//! boosted nodes still accumulate; SocialTrust suppresses them further.
//!
//! Panels: (a) EigenTrust, (b) eBay, (c) EigenTrust+SocialTrust,
//! (d) eBay+SocialTrust — same layout as the paper.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    panels: Vec<bench::SystemSummary>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::MultiNode)
        .with_colluder_behavior(0.2);
    println!("Figure 12 — MultiNode, B = 0.2 (pretrusted ids 0-8, colluders 9-38)");
    let panels = bench::four_panel("Figure 12", &scenario);
    bench::print_verdict(&panels[0], &panels[2]); // EigenTrust vs +SocialTrust
    bench::print_verdict(&panels[1], &panels[3]); // eBay vs +SocialTrust
    bench::write_json("fig12_mcm_b02", &Result { panels });
}
