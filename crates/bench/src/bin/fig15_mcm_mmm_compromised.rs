//! Figure 15 — MCM and MMM with **compromised pre-trusted nodes**, B = 0.2.
//!
//! Panels: (a) EigenTrust in MCM, (b) EigenTrust in MMM,
//! (c) EigenTrust+SocialTrust in MCM, (d) EigenTrust+SocialTrust in MMM.
//! Compromised pre-trusted nodes amplify both collusion models under plain
//! EigenTrust; SocialTrust suppresses colluders and the compromised
//! pre-trusted nodes alike.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    mcm_eigentrust: bench::SystemSummary,
    mmm_eigentrust: bench::SystemSummary,
    mcm_socialtrust: bench::SystemSummary,
    mmm_socialtrust: bench::SystemSummary,
}

fn main() {
    let mcm = bench::scenario_base()
        .with_collusion(CollusionModel::MultiNode)
        .with_colluder_behavior(0.2)
        .with_compromised_pretrusted(7);
    let mmm = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.2)
        .with_compromised_pretrusted(7);

    println!("Figure 15 — MCM & MMM + 7 compromised pre-trusted nodes, B = 0.2");
    let a = bench::run_cell(&mcm, ReputationKind::EigenTrust);
    bench::print_distribution("Fig 15(a) EigenTrust, MCM", &mcm, &a);
    let b = bench::run_cell(&mmm, ReputationKind::EigenTrust);
    bench::print_distribution("Fig 15(b) EigenTrust, MMM", &mmm, &b);
    let c = bench::run_cell(&mcm, ReputationKind::EigenTrustWithSocialTrust);
    bench::print_distribution("Fig 15(c) EigenTrust+SocialTrust, MCM", &mcm, &c);
    let d = bench::run_cell(&mmm, ReputationKind::EigenTrustWithSocialTrust);
    bench::print_distribution("Fig 15(d) EigenTrust+SocialTrust, MMM", &mmm, &d);

    println!("\nMCM:");
    bench::print_verdict(&a, &c);
    println!("MMM:");
    bench::print_verdict(&b, &d);
    bench::write_json(
        "fig15_mcm_mmm_compromised",
        &Result {
            mcm_eigentrust: a,
            mmm_eigentrust: b,
            mcm_socialtrust: c,
            mmm_socialtrust: d,
        },
    );
}
