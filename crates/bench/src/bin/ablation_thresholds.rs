//! Ablation — sensitivity to the detection thresholds and the Gaussian
//! width calibration.
//!
//! Sweeps, on PCM with B = 0.6 under EigenTrust+SocialTrust:
//!
//! * the frequency scaling factor θ (a pair is "frequent" above `θ·F̄`).
//!   Collusion at 20 ratings/query-cycle produces pair frequencies of
//!   ~600/cycle against `F̄ ≈ 6–11`, so detection only breaks once
//!   `θ·F̄` exceeds the collusion rate itself (θ ≳ 60-100) — the
//!   frequency gate is extremely forgiving to tune;
//! * the B2 low-reputation threshold `T_R`;
//! * the Gaussian width scale (σ = scale · |maxΩ − minΩ|): the literal
//!   reading (scale = 1) caps per-dimension damping at `e^(−1/2)` and
//!   visibly weakens suppression; the default 0.125 crushes it.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::config::SocialTrustConfig;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    theta: f64,
    low_reputation: f64,
    width_scale: f64,
    colluder_mean: f64,
    normal_mean: f64,
}

#[derive(Serialize)]
struct Result {
    unprotected_colluder_mean: f64,
    theta_tr_rows: Vec<Row>,
    width_rows: Vec<Row>,
}

fn run(scenario: &ScenarioConfig, cfg: SocialTrustConfig) -> (f64, f64) {
    let cell = bench::run_custom_socialtrust(scenario, cfg);
    (cell.colluder_mean, cell.normal_mean)
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);
    println!("Ablation — detection thresholds & Gaussian width (PCM, B = 0.6)");
    let unprotected = bench::run_cell(&scenario, ReputationKind::EigenTrust);
    println!(
        "unprotected EigenTrust colluder mean: {:.5}\n",
        unprotected.colluder_mean
    );

    println!("-- θ × T_R sweep (width scale fixed at the default) --");
    println!(
        "{:>7} {:>8} {:>15} {:>13}",
        "theta", "T_R", "colluder mean", "normal mean"
    );
    let mut theta_tr_rows = Vec::new();
    for &theta in &[1.5, 2.0, 8.0, 60.0, 120.0] {
        for &tr in &[0.005, 0.01, 0.05] {
            let cfg = SocialTrustConfig {
                theta,
                low_reputation: tr,
                ..SocialTrustConfig::default()
            };
            let (coll, norm) = run(&scenario, cfg);
            println!("{theta:>7.1} {tr:>8.3} {coll:>15.5} {norm:>13.5}");
            theta_tr_rows.push(Row {
                theta,
                low_reputation: tr,
                width_scale: cfg.width_scale,
                colluder_mean: coll,
                normal_mean: norm,
            });
        }
    }

    println!("\n-- Gaussian width-scale sweep (θ, T_R at defaults) --");
    println!(
        "{:>12} {:>15} {:>13}",
        "width scale", "colluder mean", "normal mean"
    );
    let mut width_rows = Vec::new();
    for &scale in &[0.0625, 0.125, 0.25, 0.5, 1.0] {
        let cfg = SocialTrustConfig {
            width_scale: scale,
            ..SocialTrustConfig::default()
        };
        let (coll, norm) = run(&scenario, cfg);
        println!("{scale:>12.4} {coll:>15.5} {norm:>13.5}");
        width_rows.push(Row {
            theta: cfg.theta,
            low_reputation: cfg.low_reputation,
            width_scale: scale,
            colluder_mean: coll,
            normal_mean: norm,
        });
    }

    // Robustness claims.
    let robust = theta_tr_rows
        .iter()
        .filter(|r| r.theta <= 8.0)
        .all(|r| r.colluder_mean < unprotected.colluder_mean / 2.0);
    println!(
        "\nrobust across θ ≤ 8 and all T_R: {}",
        if robust { "HOLDS" } else { "FAILS" }
    );
    let literal = width_rows.last().expect("rows");
    let default = &width_rows[1];
    println!(
        "literal width (scale 1.0, colluders at {:.5}) is weaker than the default \
         calibration (scale 0.125, {:.5}): {}",
        literal.colluder_mean,
        default.colluder_mean,
        if literal.colluder_mean > default.colluder_mean {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "ablation_thresholds",
        &Result {
            unprotected_colluder_mean: unprotected.colluder_mean,
            theta_tr_rows,
            width_rows,
        },
    );
}
