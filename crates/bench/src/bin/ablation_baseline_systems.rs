//! Ablation — how every reputation engine in the workspace fares against
//! pair-wise collusion, with and without social information.
//!
//! Baselines: SimpleAverage (no defense at all), eBay (per-rater dedup),
//! EigenTrust (trust-weighted ratings), FeedbackSimilarity
//! (TrustGuard-style consensus credibility — no social information),
//! PowerTrust (dynamically-elected power nodes), and the
//! SocialTrust-wrapped engines.
//!
//! Expected ordering of colluder advantage (colluder mean / normal mean):
//! SimpleAverage ≥ EigenTrust ≈ eBay > FeedbackSimilarity > *+SocialTrust.
//! FeedbackSimilarity partially resists (colluders rate honestly outside
//! the clique, so their consensus distance stays small — the known
//! weakness its module documents); SocialTrust keys on the clique's social
//! structure instead and wins.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    system: String,
    colluder_mean: f64,
    normal_mean: f64,
    colluder_advantage: f64,
    pct_requests_to_colluders: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);
    println!("Ablation — all reputation engines vs PCM (B = 0.6)");
    println!(
        "{:<38} {:>14} {:>12} {:>11} {:>8}",
        "system", "colluder mean", "normal mean", "advantage", "req %"
    );
    let mut rows = Vec::new();
    for kind in [
        ReputationKind::SimpleAverage,
        ReputationKind::EBay,
        ReputationKind::EigenTrust,
        ReputationKind::FeedbackSimilarity,
        ReputationKind::PowerTrust,
        ReputationKind::EBayWithSocialTrust,
        ReputationKind::EigenTrustWithSocialTrust,
    ] {
        let cell = bench::run_cell(&scenario, kind);
        let advantage = if cell.normal_mean > 0.0 {
            cell.colluder_mean / cell.normal_mean
        } else {
            f64::INFINITY
        };
        println!(
            "{:<38} {:>14.5} {:>12.5} {:>10.2}x {:>7.1}%",
            cell.system,
            cell.colluder_mean,
            cell.normal_mean,
            advantage,
            cell.pct_requests_to_colluders.0
        );
        rows.push(Row {
            system: cell.system.clone(),
            colluder_mean: cell.colluder_mean,
            normal_mean: cell.normal_mean,
            colluder_advantage: advantage,
            pct_requests_to_colluders: cell.pct_requests_to_colluders.0,
        });
    }
    let st_rows: Vec<&Row> = rows
        .iter()
        .filter(|r| r.system.contains("SocialTrust"))
        .collect();
    let best_baseline = rows
        .iter()
        .filter(|r| !r.system.contains("SocialTrust"))
        .map(|r| r.colluder_advantage)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nSocialTrust beats every social-blind baseline: {}",
        if st_rows.iter().all(|r| r.colluder_advantage < best_baseline) {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("ablation_baseline_systems", &Result { rows });
}
