//! Figure 5 — the one-dimensional Gaussian reputation-adjustment curve.
//!
//! Sweeps Ω over a representative range for a rater with empirical
//! statistics and prints the adjustment weight (Eq. (6)/(8)): pairs whose
//! closeness/similarity deviates far from the rater's normal value are
//! damped toward zero; normal pairs pass through at weight α.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::gaussian::adjustment_weight;
use socialtrust_core::stats::OmegaStats;

#[derive(Serialize)]
struct Fig5Result {
    stats: OmegaStats,
    curve: Vec<(f64, f64)>,
}

fn main() {
    // The paper's empirical Overstock similarity stats: mean 0.423,
    // max 1, min 0.13.
    let stats = OmegaStats::overstock_similarity();
    println!(
        "Figure 5 — 1-D Gaussian adjustment (Ω̄ = {:.3}, width = {:.3}, α = 1)",
        stats.mean,
        stats.width()
    );
    let curve: Vec<(f64, f64)> = (0..=40)
        .map(|i| {
            let omega = i as f64 * 0.05; // 0 ..= 2.0
            (omega, adjustment_weight(omega, &stats, 1.0))
        })
        .collect();
    bench::print_series(("Ω", "weight"), &curve);

    // The figure's qualitative claims.
    let at_mean = adjustment_weight(stats.mean, &stats, 1.0);
    let too_low = adjustment_weight(0.0, &stats, 1.0);
    let too_high = adjustment_weight(2.0, &stats, 1.0);
    println!("\nweight at Ω̄: {at_mean:.3} (= α); at Ω=0: {too_low:.3}; at Ω=2: {too_high:.3}");
    println!(
        "bell-shape check: {}",
        if at_mean > too_low && at_mean > too_high {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json("fig05_gaussian_1d", &Fig5Result { stats, curve });
}
