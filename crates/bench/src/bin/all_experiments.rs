//! Run every experiment binary's logic in sequence, writing all JSON
//! results into `experiments_out/`.
//!
//! This drives the same code as the individual `figXX_*` / `table1_*`
//! binaries by spawning them (so each binary stays the source of truth),
//! and prints a final index of what was produced.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig01_trace_reputation",
    "fig02_personal_network",
    "fig03_social_distance",
    "fig04_interest_similarity",
    "fig05_gaussian_1d",
    "fig06_gaussian_2d",
    "fig07_no_collusion",
    "fig08_pcm_b06",
    "fig09_pcm_b02",
    "fig10_pcm_compromised",
    "fig11_mcm_b06",
    "fig12_mcm_b02",
    "fig13_mmm_b06",
    "fig14_mmm_b02",
    "fig15_mcm_mmm_compromised",
    "fig16_falsified_pcm",
    "fig17_falsified_mcm",
    "fig18_falsified_mmm",
    "fig19_convergence",
    "fig20_distance_sweep",
    "table1_request_percentage",
    "ablation_components",
    "ablation_thresholds",
    "ablation_baselines",
    "ablation_baseline_systems",
    "ext_negative_campaign",
    "ext_oscillation",
    "ext_community",
    "ext_manager_overhead",
    "ext_whitewash",
    "ext_churn",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !status.success() {
            eprintln!("!! {name} exited with {status}");
            failures.push(*name);
        }
    }
    println!("\n================ index ================");
    println!(
        "{} experiments completed, {} failed{}",
        EXPERIMENTS.len() - failures.len(),
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {failures:?}")
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
