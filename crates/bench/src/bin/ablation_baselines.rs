//! Ablation — per-rater vs empirical Gaussian baselines.
//!
//! The paper gives two ways to centre the Gaussian filter: the rater's own
//! statistics over the nodes it has rated, or empirical system-wide
//! statistics of transaction pairs. This ablation shows why the empirical
//! mode is the robust default on MMM: a boosted node's per-rater
//! statistics are polluted by its *other* collusion partners (they widen
//! `|maxΩ − minΩ|` and pull `Ω̄` toward the collusive value), flattening
//! the filter exactly where it should bite.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::config::{BaselineMode, SocialTrustConfig};
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    baseline: String,
    colluder_mean: f64,
    colluder_max: f64,
    normal_mean: f64,
    pct_requests_to_colluders: f64,
}

#[derive(Serialize)]
struct Result {
    unprotected_colluder_mean: f64,
    rows: Vec<Row>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.6);
    println!("Ablation — Gaussian baseline source (MMM, B = 0.6)");
    let unprotected = bench::run_cell(&scenario, ReputationKind::EigenTrust);
    println!(
        "unprotected EigenTrust colluder mean: {:.5}\n",
        unprotected.colluder_mean
    );
    println!(
        "{:<12} {:>15} {:>14} {:>13} {:>8}",
        "baseline", "colluder mean", "colluder max", "normal mean", "req %"
    );
    let mut rows = Vec::new();
    for (mode, label) in [
        (BaselineMode::PerRater, "per-rater"),
        (BaselineMode::Empirical, "empirical"),
    ] {
        let cfg = SocialTrustConfig {
            baseline_mode: mode,
            ..SocialTrustConfig::default()
        };
        let cell = bench::run_custom_socialtrust(&scenario, cfg);
        println!(
            "{:<12} {:>15.5} {:>14.5} {:>13.5} {:>7.1}%",
            label,
            cell.colluder_mean,
            cell.colluder_max,
            cell.normal_mean,
            cell.pct_requests_to_colluders.0
        );
        rows.push(Row {
            baseline: label.into(),
            colluder_mean: cell.colluder_mean,
            colluder_max: cell.colluder_max,
            normal_mean: cell.normal_mean,
            pct_requests_to_colluders: cell.pct_requests_to_colluders.0,
        });
    }
    println!(
        "\nempirical baseline suppresses MMM at least as well as per-rater: {}",
        if rows[1].colluder_mean <= rows[0].colluder_mean * 1.1 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "ablation_baselines",
        &Result {
            unprotected_colluder_mean: unprotected.colluder_mean,
            rows,
        },
    );
}
