//! Figure 16 — resilience to **falsified social information** in PairWise,
//! B = 0.6.
//!
//! Colluding pairs falsify their static social data: exactly one declared
//! relationship per pair and identical declared interest profiles
//! (Section 5.8). SocialTrust switches to its hardened measurements —
//! relationship-weighted closeness (Eq. (10)) and request-weighted
//! similarity (Eq. (11)) — which rely on interaction and request behavior
//! that colluders cannot fake away. The paper shows colluder reputations
//! rise slightly versus the accurate-information case but stay far below
//! normal nodes.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Result {
    falsified_eigentrust_socialtrust: bench::SystemSummary,
    falsified_ebay_socialtrust: bench::SystemSummary,
    accurate_eigentrust_socialtrust: bench::SystemSummary,
}

fn main() {
    let falsified = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6)
        .with_falsified_social_info(true);
    println!("Figure 16 — PairWise with falsified social information, B = 0.6");

    let et_st = bench::run_cell(&falsified, ReputationKind::EigenTrustWithSocialTrust);
    bench::print_distribution("Figure 16(a) EigenTrust+SocialTrust", &falsified, &et_st);
    let ebay_st = bench::run_cell(&falsified, ReputationKind::EBayWithSocialTrust);
    bench::print_distribution("Figure 16(b) eBay+SocialTrust", &falsified, &ebay_st);

    // Comparison point: the same model with *accurate* social information.
    let accurate = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);
    let accurate_st = bench::run_cell(&accurate, ReputationKind::EigenTrustWithSocialTrust);

    println!(
        "\ncolluder mean with accurate info {:.5} vs falsified {:.5} — falsification may help slightly, \
         but colluders must stay below normal nodes ({:.5}): {}",
        accurate_st.colluder_mean,
        et_st.colluder_mean,
        et_st.normal_mean,
        if et_st.colluder_mean < et_st.normal_mean { "HOLDS" } else { "FAILS" },
    );
    bench::write_json(
        "fig16_falsified_pcm",
        &Result {
            falsified_eigentrust_socialtrust: et_st,
            falsified_ebay_socialtrust: ebay_st,
            accurate_eigentrust_socialtrust: accurate_st,
        },
    );
}
