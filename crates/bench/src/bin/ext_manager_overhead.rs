//! Extension — overhead of the distributed deployment (Section 4.3).
//!
//! Sweeps the number of resource managers and reports the inter-manager
//! message overhead: one info-request message per suspicion whose rater is
//! managed by a different manager than the ratee. More managers ⇒ better
//! load balance but more cross-manager suspicions; the reputations are
//! bit-identical throughout.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::dht::ChordRing;
use socialtrust_core::manager::ManagedSocialTrust;
use socialtrust_reputation::prelude::*;
use socialtrust_sim::build::SimWorld;
use socialtrust_sim::prelude::*;
use socialtrust_sim::runner::socialtrust_config_for;

#[derive(Serialize)]
struct Row {
    managers: usize,
    max_load: usize,
    min_load: usize,
    ratings_routed: u64,
    info_request_messages: u64,
    local_suspicions: u64,
    messages_per_1k_ratings: f64,
    avg_dht_lookup_hops: f64,
}

#[derive(Serialize)]
struct Result {
    rows: Vec<Row>,
    reputations_identical_across_manager_counts: bool,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::MultiMutual)
        .with_colluder_behavior(0.6);
    println!("Extension — distributed-manager overhead sweep (MMM, B = 0.6)");
    println!(
        "{:>9} {:>10} {:>14} {:>14} {:>12} {:>16} {:>10}",
        "managers", "load", "ratings", "info msgs", "co-managed", "msgs/1k ratings", "DHT hops"
    );
    let mut rows = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    let mut identical = true;
    for managers in [1usize, 4, 10, 20, 50] {
        let mut rng = ChaCha8Rng::seed_from_u64(bench::base_seed());
        let world = SimWorld::build(&scenario, &mut rng);
        let mut system = ManagedSocialTrust::new(
            EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids()),
            world.ctx.clone(),
            socialtrust_config_for(&scenario),
            managers,
        );
        let result = socialtrust_sim::engine::run(&world, &scenario, &mut system, &mut rng);
        let stats = system.stats();
        let load = system.managers().load();
        let per_1k = 1000.0 * stats.info_request_messages as f64 / stats.ratings_routed as f64;
        // DHT cost of reaching a manager: average Chord finger-routing hops
        // on a ring of this many managers.
        let ring_members: Vec<socialtrust_socnet::NodeId> = (0..managers as u32)
            .map(socialtrust_socnet::NodeId)
            .collect();
        let ring = ChordRing::new(&ring_members);
        let sample: Vec<socialtrust_socnet::NodeId> = (0..scenario.nodes as u32)
            .step_by(7)
            .map(socialtrust_socnet::NodeId)
            .collect();
        let avg_hops = ring.average_lookup_hops(&sample);
        println!(
            "{:>9} {:>4}-{:<5} {:>14} {:>14} {:>12} {:>16.2} {:>10.2}",
            managers,
            load.iter().min().unwrap(),
            load.iter().max().unwrap(),
            stats.ratings_routed,
            stats.info_request_messages,
            stats.local_suspicions,
            per_1k,
            avg_hops
        );
        match &reference {
            None => reference = Some(result.final_summary.values().to_vec()),
            Some(r) => identical &= r.as_slice() == result.final_summary.values(),
        }
        rows.push(Row {
            managers,
            max_load: *load.iter().max().unwrap(),
            min_load: *load.iter().min().unwrap(),
            ratings_routed: stats.ratings_routed,
            info_request_messages: stats.info_request_messages,
            local_suspicions: stats.local_suspicions,
            messages_per_1k_ratings: per_1k,
            avg_dht_lookup_hops: avg_hops,
        });
    }
    println!(
        "\nreputations identical across manager counts: {}",
        if identical { "HOLDS" } else { "FAILS" }
    );
    bench::write_json(
        "ext_manager_overhead",
        &Result {
            rows,
            reputations_identical_across_manager_counts: identical,
        },
    );
}
