//! Ablation — which Gaussian filter does the work?
//!
//! Compares the closeness-only filter (Eq. (6)), the similarity-only
//! filter (Eq. (8)), and the paper's combined two-dimensional filter
//! (Eq. (9)) on PCM with B = 0.6 under EigenTrust. The combined filter is
//! expected to suppress colluders at least as strongly as either component
//! alone (e^{-(x+y)} ≤ min(e^{-x}, e^{-y})).

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_core::config::{AdjustmentMode, SocialTrustConfig};
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Row {
    mode: String,
    colluder_mean: f64,
    normal_mean: f64,
    pct_requests_to_colluders: f64,
}

#[derive(Serialize)]
struct Result {
    unprotected_colluder_mean: f64,
    rows: Vec<Row>,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::PairWise)
        .with_colluder_behavior(0.6);

    println!("Ablation — Gaussian filter components (PCM, B = 0.6, EigenTrust base)");
    let unprotected = bench::run_cell(&scenario, ReputationKind::EigenTrust);
    println!(
        "unprotected EigenTrust: colluder mean = {:.5}",
        unprotected.colluder_mean
    );

    let modes = [
        (AdjustmentMode::ClosenessOnly, "closeness-only (Eq. 6)"),
        (AdjustmentMode::SimilarityOnly, "similarity-only (Eq. 8)"),
        (AdjustmentMode::Combined, "combined (Eq. 9)"),
    ];
    println!(
        "\n{:<26} {:>15} {:>13} {:>10}",
        "mode", "colluder mean", "normal mean", "req %"
    );
    let mut rows = Vec::new();
    for (mode, label) in modes {
        let cfg = SocialTrustConfig {
            adjustment_mode: mode,
            ..SocialTrustConfig::default()
        };
        let cell = bench::run_custom_socialtrust(&scenario, cfg);
        println!(
            "{:<26} {:>15.5} {:>13.5} {:>9.1}%",
            label, cell.colluder_mean, cell.normal_mean, cell.pct_requests_to_colluders.0
        );
        rows.push(Row {
            mode: label.into(),
            colluder_mean: cell.colluder_mean,
            normal_mean: cell.normal_mean,
            pct_requests_to_colluders: cell.pct_requests_to_colluders.0,
        });
    }
    let combined = rows.last().expect("three rows").colluder_mean;
    println!(
        "\ncombined ≤ min(component) + tolerance: {}",
        if combined <= rows[0].colluder_mean.min(rows[1].colluder_mean) * 1.5 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    bench::write_json(
        "ablation_components",
        &Result {
            unprotected_colluder_mean: unprotected.colluder_mean,
            rows,
        },
    );
}
