//! Figure 7 — EigenTrust and eBay **without** colluders.
//!
//! Malicious nodes (the would-be colluder block) serve authentically with
//! `B` drawn per node from [0.2, 0.6] and do not collude. The paper shows:
//!
//! * (a) EigenTrust: malicious reputations near zero; pre-trusted and a
//!   small number of normal nodes comparatively high;
//! * (b) eBay: reputations distributed relatively evenly, malicious nodes
//!   lower;
//! * (c) the percent of services provided by malicious nodes is much lower
//!   under EigenTrust than under eBay.

use serde::Serialize;
use socialtrust_bench as bench;
use socialtrust_sim::prelude::*;

#[derive(Serialize)]
struct Fig7Result {
    eigentrust: bench::SystemSummary,
    ebay: bench::SystemSummary,
    pct_services_malicious_eigentrust: f64,
    pct_services_malicious_ebay: f64,
}

fn main() {
    let scenario = bench::scenario_base()
        .with_collusion(CollusionModel::None)
        .with_colluder_behavior_range((0.2, 0.6));

    println!("Figure 7 — EigenTrust and eBay without colluders (malicious B ∈ [0.2, 0.6])");
    let et = bench::run_cell(&scenario, ReputationKind::EigenTrust);
    bench::print_distribution("Fig 7(a)", &scenario, &et);
    let ebay = bench::run_cell(&scenario, ReputationKind::EBay);
    bench::print_distribution("Fig 7(b)", &scenario, &ebay);

    println!("\nFig 7(c) — percent of services provided by malicious nodes:");
    println!("  EigenTrust: {:.2}%", et.pct_requests_to_colluders.0);
    println!("  eBay:       {:.2}%", ebay.pct_requests_to_colluders.0);
    // The paper reports EigenTrust ≈ 3% vs eBay ≈ 14% — its eBay fed
    // malicious nodes far longer. Under our selection model the weekly
    // service record differentiates malicious nodes after one cycle, so
    // both systems starve them almost immediately; the paper's gap
    // compresses to noise. We check the part of the claim that is about
    // the defense (malicious nodes get little traffic in both systems) and
    // report the ordering for the record.
    let both_low = et.pct_requests_to_colluders.0 < 5.0 && ebay.pct_requests_to_colluders.0 < 15.0;
    println!(
        "malicious nodes starved of traffic in both systems (<5% / <15%): {}",
        if both_low { "HOLDS" } else { "FAILS" }
    );
    println!(
        "paper's EigenTrust≪eBay ordering: {} (see EXPERIMENTS.md — the gap \
         compresses because our eBay differentiates within one cycle)",
        if et.pct_requests_to_colluders.0 < ebay.pct_requests_to_colluders.0 {
            "HOLDS"
        } else {
            "DEVIATES"
        }
    );
    bench::write_json(
        "fig07_no_collusion",
        &Fig7Result {
            pct_services_malicious_eigentrust: et.pct_requests_to_colluders.0,
            pct_services_malicious_ebay: ebay.pct_requests_to_colluders.0,
            eigentrust: et,
            ebay,
        },
    );
}
