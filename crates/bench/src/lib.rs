//! # socialtrust-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! SocialTrust paper's evaluation (Section 5) plus the Section-3 trace
//! analysis (Figures 1–4), and the Criterion benches for the
//! performance-critical kernels.
//!
//! One binary per experiment lives in `src/bin/`; run e.g.
//!
//! ```text
//! cargo run --release -p socialtrust-bench --bin fig08_pcm_b06
//! ```
//!
//! or everything at once with `--bin all_experiments`. Each binary prints
//! the paper's rows/series to stdout and writes a JSON result file into
//! `experiments_out/`.
//!
//! Environment knobs:
//!
//! * `ST_FAST=1` — quick mode (fewer cycles / runs) for smoke testing;
//! * `ST_RUNS`, `ST_CYCLES`, `ST_SEED` — override the defaults (5 runs,
//!   50 cycles, seed 1000 — the paper's setup).

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;
use socialtrust_sim::prelude::*;
use socialtrust_socnet::cache::CacheStats;
use socialtrust_socnet::NodeId;

/// How many seeded runs per experiment (paper: 5).
pub fn runs() -> usize {
    std::env::var("ST_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast_mode() { 2 } else { 5 })
}

/// Simulation cycles per run (paper: 50).
pub fn cycles() -> usize {
    std::env::var("ST_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast_mode() { 15 } else { 50 })
}

/// Base seed for the seed sequence.
pub fn base_seed() -> u64 {
    std::env::var("ST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Quick mode for smoke tests.
pub fn fast_mode() -> bool {
    std::env::var("ST_FAST").map(|v| v == "1").unwrap_or(false)
}

/// The output directory for machine-readable results.
pub fn experiments_dir() -> PathBuf {
    let dir = std::env::var("ST_OUT").unwrap_or_else(|_| "experiments_out".into());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create experiments_out");
    path
}

/// Write a JSON result file for an experiment.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    fs::write(&path, json).expect("write result file");
    println!("[saved {}]", path.display());
}

/// Aggregated summary of one (scenario, system) cell.
#[derive(Debug, Clone, Serialize)]
pub struct SystemSummary {
    /// Display name of the system.
    pub system: String,
    /// Mean final reputation per node (averaged over runs), indexed by id.
    pub per_node_mean: Vec<f64>,
    /// 95% CI half-width per node.
    pub per_node_ci95: Vec<f64>,
    /// Mean reputation over the pre-trusted block.
    pub pretrusted_mean: f64,
    /// Mean reputation over the colluder block.
    pub colluder_mean: f64,
    /// Maximum mean reputation among colluders.
    pub colluder_max: f64,
    /// Mean reputation over normal nodes.
    pub normal_mean: f64,
    /// Percent of requests served by colluders: (mean, ci95).
    pub pct_requests_to_colluders: (f64, f64),
    /// Mean colluder reputation per simulation cycle (averaged over runs).
    pub colluder_mean_per_cycle: Vec<f64>,
    /// Social-coefficient cache counters summed over the runs (all zero
    /// for plain systems, which never consult the cache).
    pub cache: CacheStats,
}

/// Run `kind` on `scenario` for the configured number of runs and
/// summarize.
pub fn run_cell(scenario: &ScenarioConfig, kind: ReputationKind) -> SystemSummary {
    let summary = run_scenario_multi(scenario, kind, base_seed(), runs());
    summarize(scenario, kind, &summary)
}

/// Build a [`SystemSummary`] from an existing multi-run aggregate.
pub fn summarize(
    scenario: &ScenarioConfig,
    kind: ReputationKind,
    summary: &MultiRunSummary,
) -> SystemSummary {
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();
    let pretrusted = scenario.pretrusted_ids();
    let colluder_max = colluders
        .iter()
        .map(|c| summary.mean_reputation[c.index()])
        .fold(0.0, f64::max);
    let cycles = summary.runs[0].per_cycle_colluder_mean.len();
    let colluder_mean_per_cycle: Vec<f64> = (0..cycles)
        .map(|t| {
            summary
                .runs
                .iter()
                .map(|r| r.per_cycle_colluder_mean[t])
                .sum::<f64>()
                / summary.runs.len() as f64
        })
        .collect();
    SystemSummary {
        system: kind.to_string(),
        per_node_mean: summary.mean_reputation.clone(),
        per_node_ci95: summary.ci95_reputation.clone(),
        pretrusted_mean: summary.mean_reputation_of(&pretrusted),
        colluder_mean: summary.mean_reputation_of(&colluders),
        colluder_max,
        normal_mean: summary.mean_reputation_of(&normals),
        pct_requests_to_colluders: summary.percent_requests_to_colluders(),
        colluder_mean_per_cycle,
        cache: summary.cache_stats(),
    }
}

/// Print one cache-counter line for a cell (skipped for plain systems,
/// whose counters are all zero).
pub fn print_cache_stats(cell: &SystemSummary) {
    let s = cell.cache;
    if s.hits + s.misses + s.evictions == 0 {
        return;
    }
    println!(
        "  coefficient cache: {} hits / {} misses ({:.1}% hit rate), {} evictions",
        s.hits,
        s.misses,
        100.0 * s.hit_rate(),
        s.evictions
    );
}

/// Print the reputation-distribution figure the paper plots: reputation per
/// node id, with the node-role bands called out (pre-trusted: 0-8,
/// colluders: 9-38 in the default layout), plus the role means.
pub fn print_distribution(title: &str, scenario: &ScenarioConfig, cell: &SystemSummary) {
    println!("\n--- {title} — {} ---", cell.system);
    println!(
        "roles: pretrusted = ids 0..{}, colluders = ids {}..{}, normal = rest",
        scenario.pretrusted_count - 1,
        scenario.pretrusted_count,
        scenario.pretrusted_count + scenario.colluder_count - 1
    );
    // Compact sparkline-style dump: 10 nodes per row.
    for (row_start, chunk) in cell.per_node_mean.chunks(10).enumerate() {
        let cells: Vec<String> = chunk.iter().map(|v| format!("{v:.4}")).collect();
        println!("  id {:>3}+ | {}", row_start * 10, cells.join(" "));
    }
    println!(
        "  means: pretrusted={:.5} colluders={:.5} (max {:.5}) normal={:.5}",
        cell.pretrusted_mean, cell.colluder_mean, cell.colluder_max, cell.normal_mean
    );
    println!(
        "  requests to colluders: {:.2}% ± {:.2}",
        cell.pct_requests_to_colluders.0, cell.pct_requests_to_colluders.1
    );
    print_cache_stats(cell);
}

/// The standard four-panel experiment (the paper's Figures 8, 9, 11–14):
/// EigenTrust / eBay / EigenTrust+SocialTrust / eBay+SocialTrust on one
/// scenario. Prints all four panels and returns them for JSON output.
pub fn four_panel(title: &str, scenario: &ScenarioConfig) -> Vec<SystemSummary> {
    let kinds = [
        ReputationKind::EigenTrust,
        ReputationKind::EBay,
        ReputationKind::EigenTrustWithSocialTrust,
        ReputationKind::EBayWithSocialTrust,
    ];
    kinds
        .iter()
        .map(|&kind| {
            let cell = run_cell(scenario, kind);
            print_distribution(title, scenario, &cell);
            cell
        })
        .collect()
}

/// Shared verdict line: does the protected system suppress colluders
/// relative to the unprotected one? Printed so experiment logs carry the
/// paper's qualitative claim check inline.
pub fn print_verdict(unprotected: &SystemSummary, protected: &SystemSummary) {
    let suppression = if protected.colluder_mean > 0.0 {
        unprotected.colluder_mean / protected.colluder_mean
    } else {
        f64::INFINITY
    };
    println!(
        "\nverdict: colluder mean {:.5} → {:.5} ({}x suppression); requests {:.1}% → {:.1}%",
        unprotected.colluder_mean,
        protected.colluder_mean,
        if suppression.is_finite() {
            format!("{suppression:.1}")
        } else {
            "∞".into()
        },
        unprotected.pct_requests_to_colluders.0,
        protected.pct_requests_to_colluders.0,
    );
}

/// A scenario pre-configured with the harness cycle count.
pub fn scenario_base() -> ScenarioConfig {
    ScenarioConfig::paper_default().with_cycles(cycles())
}

/// Pretty-print a two-column series.
pub fn print_series(header: (&str, &str), rows: &[(f64, f64)]) {
    println!("{:>14} {:>14}", header.0, header.1);
    for (x, y) in rows {
        println!("{x:>14.4} {y:>14.4}");
    }
}

/// `NodeId` helper for summaries.
pub fn node(i: usize) -> NodeId {
    NodeId::from(i)
}

/// Run EigenTrust wrapped with a *custom* SocialTrust configuration (for
/// ablations), over the configured number of seeded runs.
pub fn run_custom_socialtrust(
    scenario: &ScenarioConfig,
    config: socialtrust_core::config::SocialTrustConfig,
) -> SystemSummary {
    use rand::SeedableRng;
    use rayon::prelude::*;
    use socialtrust_core::decorator::WithSocialTrust;
    use socialtrust_reputation::eigentrust::EigenTrust;
    use socialtrust_sim::build::SimWorld;

    let results: Vec<RunResult> = (0..runs() as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(base_seed() + i);
            let world = SimWorld::build(scenario, &mut rng);
            let mut system = WithSocialTrust::new(
                EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids()),
                world.ctx.clone(),
                config,
            );
            socialtrust_sim::engine::run(&world, scenario, &mut system, &mut rng)
        })
        .collect();
    let summary = MultiRunSummary::from_runs(results);
    summarize(
        scenario,
        ReputationKind::EigenTrustWithSocialTrust,
        &summary,
    )
}
