//! The paper's three collusion models (Section 5.1) and the per-run
//! collusion plan derived from them.
//!
//! * **PCM** (pair-wise): colluders pair up; each pair mutually rates at
//!   high frequency.
//! * **MCM** (multiple node): a few *boosted* nodes each receive
//!   high-frequency ratings from several *boosting* nodes; the boosted
//!   nodes do not rate back.
//! * **MMM** (multiple and mutual): like MCM, but the boosted nodes rate
//!   their boosters back (at a lower rate).
//!
//! Compromised pre-trusted nodes (Sections 5.4, 5.7) each pick one
//! colluder and collude with it pair-wise.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;

use crate::scenario::ScenarioConfig;

/// Which collusion model is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollusionModel {
    /// No collusion (the Figure 7 baseline).
    None,
    /// Pair-wise collusion (PCM).
    PairWise,
    /// Multiple-node collusion (MCM): boosters → boosted, one direction.
    MultiNode,
    /// Multiple-and-mutual collusion (MMM): boosters ↔ boosted.
    MultiMutual,
    /// Negative-rating campaign (the paper notes "similar results can be
    /// obtained for the collusion of negative ratings"): each colluder
    /// picks a normal-node *competitor* with matching interests and floods
    /// it with negative ratings — suspicious behavior B4.
    NegativeCampaign,
}

impl std::fmt::Display for CollusionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollusionModel::None => "none",
            CollusionModel::PairWise => "PCM",
            CollusionModel::MultiNode => "MCM",
            CollusionModel::MultiMutual => "MMM",
            CollusionModel::NegativeCampaign => "NEG",
        };
        f.write_str(s)
    }
}

/// One directed high-frequency rating assignment: `rater` rates `ratee`
/// `rate` times (positively) per query cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostEdge {
    /// The colluder issuing the ratings.
    pub rater: NodeId,
    /// The node whose reputation is being manipulated (a fellow colluder
    /// for boosting, a normal-node competitor for negative campaigns).
    pub ratee: NodeId,
    /// Ratings per query cycle.
    pub rate: u32,
    /// The rating value: `+1.0` for boosting, `-1.0` for suppression.
    pub value: f64,
}

/// The fully materialized collusion plan for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollusionPlan {
    /// All directed boost edges (colluder→colluder and compromised
    /// pretrusted↔colluder), executed every query cycle.
    pub edges: Vec<BoostEdge>,
    /// The boosted nodes (targets of boosting). In PCM every colluder is
    /// both booster and boosted.
    pub boosted: Vec<NodeId>,
    /// The compromised pre-trusted nodes, if any.
    pub compromised: Vec<NodeId>,
    /// Normal-node victims of a negative campaign (empty otherwise).
    pub victims: Vec<NodeId>,
    /// Colluding pairs that should be socially adjacent (distance 1) —
    /// the social-network builder adds clique edges for these.
    pub social_pairs: Vec<(NodeId, NodeId)>,
}

impl CollusionPlan {
    /// Materialize the plan for `scenario`, using `rng` for the random
    /// role choices the paper describes.
    pub fn build<R: Rng + ?Sized>(scenario: &ScenarioConfig, rng: &mut R) -> CollusionPlan {
        let colluders = scenario.colluder_ids();
        let mut plan = CollusionPlan::default();
        match scenario.collusion {
            CollusionModel::None => {}
            CollusionModel::PairWise => {
                // Colluders pair up; each pair mutually rates `boost_rate`
                // times per query cycle.
                let mut shuffled = colluders.clone();
                shuffled.shuffle(rng);
                for pair in shuffled.chunks(2) {
                    if let [a, b] = *pair {
                        plan.edges.push(BoostEdge {
                            rater: a,
                            ratee: b,
                            rate: scenario.boost_rate,
                            value: 1.0,
                        });
                        plan.edges.push(BoostEdge {
                            rater: b,
                            ratee: a,
                            rate: scenario.boost_rate,
                            value: 1.0,
                        });
                        plan.boosted.push(a);
                        plan.boosted.push(b);
                        plan.social_pairs.push((a, b));
                    }
                }
            }
            CollusionModel::NegativeCampaign => {
                // Each colluder picks a distinct normal-node competitor and
                // floods it with negative ratings at the boost rate. No
                // social edges are wired: B4 is about interest overlap, not
                // closeness.
                let normals = scenario.normal_ids();
                let mut victims = normals.clone();
                victims.shuffle(rng);
                for (idx, &attacker) in colluders.iter().enumerate() {
                    let victim = victims[idx % victims.len()];
                    plan.edges.push(BoostEdge {
                        rater: attacker,
                        ratee: victim,
                        rate: scenario.boost_rate,
                        value: -1.0,
                    });
                    plan.victims.push(victim);
                }
                plan.victims.sort_unstable();
                plan.victims.dedup();
            }
            CollusionModel::MultiNode | CollusionModel::MultiMutual => {
                // `boosted_count` boosted nodes; every other colluder picks
                // one boosted node to boost.
                let mut shuffled = colluders.clone();
                shuffled.shuffle(rng);
                let boosted: Vec<NodeId> =
                    shuffled[..scenario.boosted_count.min(shuffled.len())].to_vec();
                plan.boosted = boosted.clone();
                for &booster in &shuffled[scenario.boosted_count.min(shuffled.len())..] {
                    let target = *boosted.choose(rng).expect("at least one boosted node");
                    plan.edges.push(BoostEdge {
                        rater: booster,
                        ratee: target,
                        rate: scenario.boost_rate,
                        value: 1.0,
                    });
                    if scenario.collusion == CollusionModel::MultiMutual {
                        plan.edges.push(BoostEdge {
                            rater: target,
                            ratee: booster,
                            rate: scenario.reciprocal_rate,
                            value: 1.0,
                        });
                    }
                    plan.social_pairs.push((booster, target));
                }
            }
        }
        // Compromised pre-trusted nodes: each picks a random colluder and
        // colludes with it pair-wise at the boost rate (Section 5.4).
        let pretrusted = scenario.pretrusted_ids();
        let mut pool = pretrusted.clone();
        pool.shuffle(rng);
        for &p in pool.iter().take(scenario.compromised_pretrusted) {
            let partner = *colluders.choose(rng).expect("colluders exist");
            plan.compromised.push(p);
            plan.edges.push(BoostEdge {
                rater: p,
                ratee: partner,
                rate: scenario.boost_rate,
                value: 1.0,
            });
            plan.edges.push(BoostEdge {
                rater: partner,
                ratee: p,
                rate: scenario.boost_rate,
                value: 1.0,
            });
            plan.social_pairs.push((p, partner));
        }
        plan
    }

    /// All nodes participating in collusion (boosters, boosted, and
    /// compromised pre-trusted nodes), deduplicated and sorted.
    pub fn participants(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.edges.iter().flat_map(|e| [e.rater, e.ratee]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn none_model_produces_empty_plan() {
        let s = ScenarioConfig::paper_default();
        let plan = CollusionPlan::build(&s, &mut rng());
        assert!(plan.edges.is_empty());
        assert!(plan.boosted.is_empty());
        assert!(plan.participants().is_empty());
    }

    #[test]
    fn pcm_pairs_everyone_mutually() {
        let s = ScenarioConfig::paper_default().with_collusion(CollusionModel::PairWise);
        let plan = CollusionPlan::build(&s, &mut rng());
        // 30 colluders → 15 pairs → 30 directed edges.
        assert_eq!(plan.edges.len(), 30);
        assert_eq!(plan.boosted.len(), 30);
        assert_eq!(plan.social_pairs.len(), 15);
        // Every edge has its reverse.
        for e in &plan.edges {
            assert!(plan
                .edges
                .iter()
                .any(|r| r.rater == e.ratee && r.ratee == e.rater));
            assert_eq!(e.rate, s.boost_rate);
            assert!(s.is_colluder(e.rater) && s.is_colluder(e.ratee));
        }
    }

    #[test]
    fn pcm_handles_odd_colluder_count() {
        let mut s = ScenarioConfig::paper_default().with_collusion(CollusionModel::PairWise);
        s.colluder_count = 5;
        let plan = CollusionPlan::build(&s, &mut rng());
        assert_eq!(plan.edges.len(), 4, "one colluder is left unpaired");
    }

    #[test]
    fn mcm_boosters_point_at_boosted_one_way() {
        let s = ScenarioConfig::paper_default().with_collusion(CollusionModel::MultiNode);
        let plan = CollusionPlan::build(&s, &mut rng());
        assert_eq!(plan.boosted.len(), 7);
        // 23 boosters, one edge each, no reverse edges.
        assert_eq!(plan.edges.len(), 23);
        for e in &plan.edges {
            assert!(plan.boosted.contains(&e.ratee));
            assert!(!plan.boosted.contains(&e.rater));
            assert!(
                !plan
                    .edges
                    .iter()
                    .any(|r| r.rater == e.ratee && r.ratee == e.rater),
                "MCM must not rate back"
            );
        }
    }

    #[test]
    fn mmm_adds_reciprocal_edges_at_lower_rate() {
        let s = ScenarioConfig::paper_default().with_collusion(CollusionModel::MultiMutual);
        let plan = CollusionPlan::build(&s, &mut rng());
        assert_eq!(plan.edges.len(), 46, "23 boost + 23 reciprocal edges");
        let boost: Vec<&BoostEdge> = plan.edges.iter().filter(|e| e.rate == 20).collect();
        let back: Vec<&BoostEdge> = plan.edges.iter().filter(|e| e.rate == 5).collect();
        assert_eq!(boost.len(), 23);
        assert_eq!(back.len(), 23);
        for b in back {
            assert!(plan.boosted.contains(&b.rater));
        }
    }

    #[test]
    fn compromised_pretrusted_join_pairwise() {
        let s = ScenarioConfig::paper_default()
            .with_collusion(CollusionModel::PairWise)
            .with_compromised_pretrusted(7);
        let plan = CollusionPlan::build(&s, &mut rng());
        assert_eq!(plan.compromised.len(), 7);
        assert_eq!(plan.edges.len(), 30 + 14, "PCM edges + 7 mutual pairs");
        for &p in &plan.compromised {
            assert!(s.is_pretrusted(p));
            assert!(plan.edges.iter().any(|e| e.rater == p));
            assert!(plan.edges.iter().any(|e| e.ratee == p));
        }
    }

    #[test]
    fn plan_is_deterministic_under_seed() {
        let s = ScenarioConfig::paper_default().with_collusion(CollusionModel::MultiMutual);
        let p1 = CollusionPlan::build(&s, &mut ChaCha8Rng::seed_from_u64(3));
        let p2 = CollusionPlan::build(&s, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(p1.edges, p2.edges);
        assert_eq!(p1.boosted, p2.boosted);
    }

    #[test]
    fn participants_are_sorted_unique() {
        let s = ScenarioConfig::paper_default().with_collusion(CollusionModel::PairWise);
        let plan = CollusionPlan::build(&s, &mut rng());
        let p = plan.participants();
        assert_eq!(p.len(), 30);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_names() {
        assert_eq!(CollusionModel::PairWise.to_string(), "PCM");
        assert_eq!(CollusionModel::MultiNode.to_string(), "MCM");
        assert_eq!(CollusionModel::MultiMutual.to_string(), "MMM");
        assert_eq!(CollusionModel::None.to_string(), "none");
    }
}
