//! Construction of the simulated world: social network, interests,
//! overlay, node parameters.
//!
//! Follows Section 5.1 of the paper:
//! * interests: 20 categories, each node holds a random `[1, 10]` subset;
//!   *"nodes with the same interests are connected with each other, and a
//!   node requests resources from its interest neighbors"*;
//! * request frequencies over a node's own interests follow a power law;
//! * social backbone: random relationships `[1, 2]` between normal nodes;
//!   colluding pairs get `[3, 5]` relationships and social distance 1
//!   (configurable to 2–3 for the Figure 20 sweep, via intermediary hubs);
//! * colluding pairs share few declared interests (*"colluders have
//!   relatively more social relationships, higher social interaction
//!   frequency, and less common interests"*), unless the
//!   falsified-social-information variant is active, in which case each
//!   pair has exactly one relationship and identical declared interests
//!   (Section 5.8).

use rand::seq::SliceRandom;
use rand::Rng;
use socialtrust_core::context::{SharedSocialContext, SocialContext};
use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::graph::SocialGraph;
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::interest::{InterestId, InterestProfile, InterestSet};
use socialtrust_socnet::relationship::{Relationship, RelationshipKind};
use socialtrust_socnet::NodeId;

use crate::collusion::CollusionPlan;
use crate::scenario::ScenarioConfig;

/// Power-law request weights over a node's interests: the node's `k`-th
/// preferred category is requested with weight `1/k` (Zipf with exponent 1),
/// matching Observation O5 — a user's purchases concentrate in its top few
/// categories.
#[derive(Debug, Clone)]
pub struct RequestDistribution {
    /// (category, cumulative weight) in preference order.
    cumulative: Vec<(InterestId, f64)>,
}

impl RequestDistribution {
    /// Build from a node's interests; `rng` shuffles the preference order.
    pub fn new<R: Rng + ?Sized>(interests: &InterestSet, rng: &mut R) -> Self {
        let mut order: Vec<InterestId> = interests.as_slice().to_vec();
        order.shuffle(rng);
        let mut cumulative = Vec::with_capacity(order.len());
        let mut total = 0.0;
        for (rank, id) in order.into_iter().enumerate() {
            total += 1.0 / (rank + 1) as f64;
            cumulative.push((id, total));
        }
        RequestDistribution { cumulative }
    }

    /// Sample one category. Returns `None` if the node has no interests
    /// (cannot happen with the paper's `[1, 10]` range, but handled).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<InterestId> {
        let total = self.cumulative.last()?.1;
        let x = rng.gen::<f64>() * total;
        Some(
            self.cumulative
                .iter()
                .find(|(_, c)| x < *c)
                .unwrap_or(self.cumulative.last().expect("non-empty"))
                .0,
        )
    }

    /// The preference-ordered categories (most preferred first).
    pub fn preference_order(&self) -> Vec<InterestId> {
        self.cumulative.iter().map(|(id, _)| *id).collect()
    }
}

/// The fully built simulation world.
#[derive(Debug, Clone)]
pub struct SimWorld {
    /// Shared social context (graph + interactions + interest profiles) —
    /// mutated by the engine as requests flow, read by SocialTrust.
    pub ctx: SharedSocialContext,
    /// Declared interest set per node.
    pub interests: Vec<InterestSet>,
    /// `providers[l]` = nodes declaring interest `l` (candidate servers).
    pub providers: Vec<Vec<NodeId>>,
    /// Per-node activity probability (uniform in the scenario's range).
    pub active_prob: Vec<f64>,
    /// Per-node authentic-service probability.
    pub behavior: Vec<f64>,
    /// Per-node power-law request distribution over its own interests.
    pub request_dist: Vec<RequestDistribution>,
    /// The materialized collusion plan.
    pub plan: CollusionPlan,
    /// Overlay links: `neighbors[i][l]` = the providers of interest `l`
    /// that node `i` can route requests to (its interest neighbors).
    /// Empty for interests `i` does not hold.
    pub neighbors: Vec<Vec<Vec<NodeId>>>,
}

impl SimWorld {
    /// Build the world for `scenario` using `rng`.
    pub fn build<R: Rng + ?Sized>(scenario: &ScenarioConfig, rng: &mut R) -> SimWorld {
        scenario.validate();
        let n = scenario.nodes;
        let plan = CollusionPlan::build(scenario, rng);

        // --- Interests -------------------------------------------------
        let mut interests = random_interests(
            n,
            scenario.total_interests,
            scenario.interests_per_node,
            rng,
        );
        let colluder_pairs: Vec<(NodeId, NodeId)> = plan
            .social_pairs
            .iter()
            .copied()
            .filter(|&(a, b)| scenario.is_colluder(a) && scenario.is_colluder(b))
            .collect();
        if scenario.falsified_social_info {
            // Section 5.8: identical declared interests per colluding pair
            // (randomly [1, 10] categories).
            for &(a, b) in &colluder_pairs {
                let k = rng.gen_range(1..=10.min(scenario.total_interests as usize));
                let all: Vec<u16> = (0..scenario.total_interests).collect();
                let shared: Vec<u16> = all.choose_multiple(rng, k).copied().collect();
                let set = InterestSet::from_ids(shared);
                interests[a.index()] = set.clone();
                interests[b.index()] = set;
            }
        } else {
            // Colluding pairs share few interests ("colluders have …
            // less common interests"). Process colluders in id order,
            // stripping each one's declared set of every category held by
            // an already-processed partner; replacements are drawn from
            // categories outside *all* partners' sets, so multi-booster
            // targets end up disjoint from every partner.
            use std::collections::HashMap;
            let mut partner_map: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &(a, b) in &colluder_pairs {
                partner_map.entry(a).or_default().push(b);
                partner_map.entry(b).or_default().push(a);
            }
            let mut members: Vec<NodeId> = partner_map.keys().copied().collect();
            members.sort_unstable();
            for &x in &members {
                let partners = &partner_map[&x];
                let forbidden: Vec<InterestId> = partners
                    .iter()
                    .filter(|p| **p < x) // already finalized
                    .flat_map(|p| interests[p.index()].as_slice().to_vec())
                    .collect();
                for id in forbidden {
                    interests[x.index()].remove(id);
                }
                if interests[x.index()].is_empty() {
                    let all_partner_union: InterestSet =
                        partners.iter().fold(InterestSet::new(), |acc, p| {
                            acc.union(&interests[p.index()])
                        });
                    if let Some(replacement) = (0..scenario.total_interests)
                        .map(InterestId)
                        .find(|id| !all_partner_union.contains(*id))
                    {
                        interests[x.index()].insert(replacement);
                    } else {
                        interests[x.index()].insert(InterestId(0));
                    }
                }
            }
        }

        // Negative campaigns: attackers are *competitors* of their victims —
        // they sell in the same categories, so their declared interest sets
        // match the victims' (the B4 signature: high similarity + frequent
        // negative ratings).
        if scenario.collusion == crate::collusion::CollusionModel::NegativeCampaign {
            for e in &plan.edges {
                interests[e.rater.index()] = interests[e.ratee.index()].clone();
            }
        }

        // --- Social graph ----------------------------------------------
        let mut graph = connected_random_graph(
            n,
            scenario.social_avg_degree,
            scenario.normal_relationships,
            rng,
        );
        Self::wire_colluder_social_structure(scenario, &plan, &mut graph, rng);

        // --- Overlay / node parameters ----------------------------------
        let mut providers = vec![Vec::new(); scenario.total_interests as usize];
        for (i, set) in interests.iter().enumerate() {
            for id in set.as_slice() {
                providers[id.0 as usize].push(NodeId::from(i));
            }
        }
        let active_prob: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(scenario.active_prob.0..=scenario.active_prob.1))
            .collect();
        let behavior: Vec<f64> = (0..n)
            .map(|i| {
                let id = NodeId::from(i);
                match scenario.colluder_behavior_range {
                    Some((lo, hi)) if scenario.is_colluder(id) => rng.gen_range(lo..=hi),
                    _ => scenario.behavior_of(id),
                }
            })
            .collect();
        let request_dist: Vec<RequestDistribution> = interests
            .iter()
            .map(|set| RequestDistribution::new(set, rng))
            .collect();

        // Overlay: each node links to `overlay_per_interest` random
        // providers of each of its interests.
        let neighbors: Vec<Vec<Vec<NodeId>>> = (0..n)
            .map(|i| {
                let me = NodeId::from(i);
                (0..scenario.total_interests as usize)
                    .map(|l| {
                        if !interests[i].contains(InterestId(l as u16)) {
                            return Vec::new();
                        }
                        let pool: Vec<NodeId> =
                            providers[l].iter().copied().filter(|&p| p != me).collect();
                        let k = scenario.overlay_per_interest.min(pool.len());
                        pool.choose_multiple(rng, k).copied().collect()
                    })
                    .collect()
            })
            .collect();

        let profiles: Vec<InterestProfile> = interests
            .iter()
            .map(|set| InterestProfile::new(set.clone()))
            .collect();
        let ctx = SocialContext::from_parts(
            graph,
            InteractionTracker::new(n),
            profiles,
            scenario.total_interests,
        );

        SimWorld {
            ctx: SharedSocialContext::new(ctx),
            interests,
            providers,
            active_prob,
            behavior,
            request_dist,
            plan,
            neighbors,
        }
    }

    /// Give colluding pairs their social structure: heavy relationships at
    /// distance 1 (default), or an intermediary chain realizing distance
    /// 2–3 (Figure 20 sweep). Falsified pairs get exactly one relationship.
    fn wire_colluder_social_structure<R: Rng + ?Sized>(
        scenario: &ScenarioConfig,
        plan: &CollusionPlan,
        graph: &mut SocialGraph,
        rng: &mut R,
    ) {
        let hub_pool: Vec<NodeId> = scenario.normal_ids();
        for &(a, b) in &plan.social_pairs {
            // Drop any backbone edge so we control this pair's structure.
            graph.remove_edge(a, b);
            match scenario.colluder_social_distance {
                1 => {
                    let count = if scenario.falsified_social_info {
                        1
                    } else {
                        rng.gen_range(
                            scenario.colluder_relationships.0..=scenario.colluder_relationships.1,
                        )
                    };
                    for _ in 0..count {
                        let kind = *RelationshipKind::ALL.choose(rng).expect("non-empty");
                        graph.add_relationship(a, b, Relationship::new(kind));
                    }
                }
                d @ (2 | 3) => {
                    // Route the pair through (d-1) intermediary hubs. The
                    // realized BFS distance is ≤ d (shorter backbone
                    // detours are possible but rare); the direct edge is
                    // removed above, so it is ≥ 2.
                    let mut chain = vec![a];
                    for _ in 0..(d - 1) {
                        chain.push(*hub_pool.choose(rng).expect("normal nodes exist"));
                    }
                    chain.push(b);
                    for w in chain.windows(2) {
                        if w[0] != w[1] && !graph.are_adjacent(w[0], w[1]) {
                            graph.add_relationship(w[0], w[1], Relationship::friendship());
                        }
                    }
                }
                other => unreachable!("validated distance, got {other}"),
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.active_prob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collusion::CollusionModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialtrust_socnet::distance::bfs_distance;
    use socialtrust_socnet::interest::similarity;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn world_has_consistent_dimensions() {
        let s = ScenarioConfig::small();
        let w = SimWorld::build(&s, &mut rng(1));
        assert_eq!(w.node_count(), s.nodes);
        assert_eq!(w.interests.len(), s.nodes);
        assert_eq!(w.providers.len(), s.total_interests as usize);
        assert_eq!(w.ctx.read().node_count(), s.nodes);
        for (i, p) in w.active_prob.iter().enumerate() {
            assert!(
                (s.active_prob.0..=s.active_prob.1).contains(p),
                "node {i} activity {p}"
            );
        }
    }

    #[test]
    fn providers_index_is_correct() {
        let s = ScenarioConfig::small();
        let w = SimWorld::build(&s, &mut rng(2));
        for (l, nodes) in w.providers.iter().enumerate() {
            for v in nodes {
                assert!(w.interests[v.index()].contains(InterestId(l as u16)));
            }
        }
        // Every node appears under each of its interests.
        for (i, set) in w.interests.iter().enumerate() {
            for id in set.as_slice() {
                assert!(w.providers[id.0 as usize].contains(&NodeId::from(i)));
            }
        }
    }

    #[test]
    fn pcm_pairs_are_adjacent_with_heavy_relationships() {
        let s = ScenarioConfig::small().with_collusion(CollusionModel::PairWise);
        let w = SimWorld::build(&s, &mut rng(3));
        let ctx = w.ctx.read();
        for &(a, b) in &w.plan.social_pairs {
            assert!(ctx.graph().are_adjacent(a, b));
            let m = ctx.graph().relationship_count(a, b);
            assert!((3..=5).contains(&m), "m({a},{b}) = {m}");
        }
    }

    #[test]
    fn falsified_pairs_have_one_relationship_and_identical_interests() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_falsified_social_info(true);
        let w = SimWorld::build(&s, &mut rng(4));
        let ctx = w.ctx.read();
        for &(a, b) in &w.plan.social_pairs {
            assert_eq!(ctx.graph().relationship_count(a, b), 1);
            assert_eq!(w.interests[a.index()], w.interests[b.index()]);
            assert_eq!(
                similarity(&w.interests[a.index()], &w.interests[b.index()]),
                1.0
            );
        }
    }

    #[test]
    fn unfalsified_pairs_share_no_declared_interests() {
        let s = ScenarioConfig::small().with_collusion(CollusionModel::PairWise);
        let w = SimWorld::build(&s, &mut rng(5));
        for &(a, b) in &w.plan.social_pairs {
            assert_eq!(
                w.interests[a.index()].intersection_size(&w.interests[b.index()]),
                0,
                "colluding pairs must share few interests"
            );
        }
    }

    #[test]
    fn distance_two_pairs_are_not_adjacent() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_colluder_distance(2);
        let w = SimWorld::build(&s, &mut rng(6));
        let ctx = w.ctx.read();
        for &(a, b) in &w.plan.social_pairs {
            assert!(!ctx.graph().are_adjacent(a, b));
            let d = bfs_distance(ctx.graph(), a, b, None).expect("connected");
            assert!(d >= 2, "distance({a},{b}) = {d}");
        }
    }

    #[test]
    fn request_distribution_prefers_top_ranks() {
        let set = InterestSet::from_ids([1u16, 2, 3, 4]);
        let mut r = rng(7);
        let dist = RequestDistribution::new(&set, &mut r);
        let order = dist.preference_order();
        let mut counts = std::collections::HashMap::<InterestId, u32>::new();
        for _ in 0..10_000 {
            *counts.entry(dist.sample(&mut r).unwrap()).or_insert(0) += 1;
        }
        // Zipf(1) over 4 items: top rank ≈ 48%, last ≈ 12%.
        let top = counts[&order[0]] as f64 / 10_000.0;
        let last = counts[&order[3]] as f64 / 10_000.0;
        assert!(top > 0.40, "top share {top}");
        assert!(last < 0.20, "last share {last}");
    }

    #[test]
    fn empty_interest_set_distribution_yields_none() {
        let set = InterestSet::new();
        let mut r = rng(8);
        let dist = RequestDistribution::new(&set, &mut r);
        assert!(dist.sample(&mut r).is_none());
    }

    #[test]
    fn behavior_vector_matches_roles() {
        let s = ScenarioConfig::small().with_colluder_behavior(0.2);
        let w = SimWorld::build(&s, &mut rng(9));
        for p in s.pretrusted_ids() {
            assert_eq!(w.behavior[p.index()], 1.0);
        }
        for c in s.colluder_ids() {
            assert_eq!(w.behavior[c.index()], 0.2);
        }
        for m in s.normal_ids() {
            assert_eq!(w.behavior[m.index()], 0.8);
        }
    }

    #[test]
    fn build_is_deterministic_under_seed() {
        let s = ScenarioConfig::small().with_collusion(CollusionModel::MultiMutual);
        let w1 = SimWorld::build(&s, &mut rng(11));
        let w2 = SimWorld::build(&s, &mut rng(11));
        assert_eq!(w1.plan.edges, w2.plan.edges);
        assert_eq!(w1.interests, w2.interests);
        assert_eq!(w1.active_prob, w2.active_prob);
    }
}
