//! The simulation engine: query cycles, server selection, service,
//! rating, and collusion execution.
//!
//! Per the paper's setup (Section 5.1):
//!
//! * each simulation cycle has `query_cycles` query cycles; in each query
//!   cycle every active node issues one resource request on one of its
//!   interests;
//! * the client selects a server uniformly among the interest's providers
//!   that have free capacity and reputation above `T_R`; if no provider
//!   clears the reputation bar (e.g. at cold start, when everyone is at
//!   the initial reputation), it picks uniformly among those with
//!   capacity — *"at the initial stage, a node randomly chooses from a
//!   number of options with the same reputation value 0"*;
//! * the server serves authentically with its behavior probability; the
//!   client rates `+1` for authentic service and `−1` otherwise;
//! * every rating/transaction is also a social interaction: the paper sets
//!   `f(i,j)` equal to the rating (transaction) frequency, so both organic
//!   requests and collusion ratings feed the interaction tracker and the
//!   requester's interest profile;
//! * colluders additionally execute their
//!   [`CollusionPlan`](crate::collusion::CollusionPlan) every query cycle;
//! * the reputation system updates once per simulation cycle.

use std::time::Instant;

use rand::seq::SliceRandom;
use rand::Rng;
use socialtrust_reputation::rating::Rating;
use socialtrust_reputation::system::ReputationSystem;
use socialtrust_socnet::interest::InterestId;
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::{trace::names as trace_names, Telemetry};

use crate::build::SimWorld;
use crate::metrics::{ReputationSummary, RunResult};
use crate::scenario::ScenarioConfig;

/// One pending social interaction, batched per query cycle so the shared
/// context lock is taken once per cycle rather than once per request.
struct PendingRequest {
    from: NodeId,
    to: NodeId,
    interest: InterestId,
}

/// Run one full simulation: `scenario.sim_cycles` cycles of
/// `scenario.query_cycles` query cycles each, against `system`.
///
/// The run is fully deterministic given `rng`'s state. Equivalent to
/// [`run_with_telemetry`] against a fresh, unexported [`Telemetry`]
/// bundle.
pub fn run<R: Rng + ?Sized>(
    world: &SimWorld,
    scenario: &ScenarioConfig,
    system: &mut dyn ReputationSystem,
    rng: &mut R,
) -> RunResult {
    run_with_telemetry(world, scenario, system, rng, &Telemetry::new())
}

/// [`run`], publishing the cycle wall-time breakdown to `telemetry`:
/// `sim_cycle_seconds` (whole simulation cycle), `sim_query_phase_seconds`
/// (query cycles: selection, service, ratings, collusion), and
/// `sim_update_phase_seconds` (the reputation engine's `end_cycle`), one
/// observation per simulation cycle each.
///
/// This instruments the *engine loop* only; call
/// [`ReputationSystem::attach_telemetry`] (and
/// `SocialContext::attach_telemetry` via the world's shared context)
/// beforehand to capture the detector/cache/EigenTrust layers — plus the
/// per-cycle CSR snapshot's `snapshot_rebuilds_total` /
/// `snapshot_patches_total` / `snapshot_rebuild_seconds` — in the same
/// bundle — [`crate::runner::run_scenario_with_telemetry`] does all of it.
///
/// Within each simulation cycle the query phase mutates the shared context
/// (requests dirty the interaction tracker and request profiles); the
/// update phase then reads it through one epoch-validated
/// `GraphSnapshot`. Because only interaction/profile rows change in the
/// steady state, that refresh is an incremental row patch, not a rebuild —
/// structural churn (relationship falsification attacks) is what shows up
/// as `snapshot_rebuilds_total` and `snapshot_rebuild` events.
pub fn run_with_telemetry<R: Rng + ?Sized>(
    world: &SimWorld,
    scenario: &ScenarioConfig,
    system: &mut dyn ReputationSystem,
    rng: &mut R,
    telemetry: &Telemetry,
) -> RunResult {
    assert_eq!(
        system.node_count(),
        world.node_count(),
        "system/world node count mismatch"
    );
    let n = world.node_count();
    let colluders = scenario.colluder_ids();
    let normals = scenario.normal_ids();

    let cycle_seconds = telemetry.registry().histogram("sim_cycle_seconds");
    let query_seconds = telemetry.registry().histogram("sim_query_phase_seconds");
    let update_seconds = telemetry.registry().histogram("sim_update_phase_seconds");

    let mut requests_total: u64 = 0;
    let mut requests_to_colluders: u64 = 0;
    let mut per_cycle_colluder_mean = Vec::with_capacity(scenario.sim_cycles);
    let mut per_cycle_colluder_max = Vec::with_capacity(scenario.sim_cycles);
    let mut per_cycle_normal_mean = Vec::with_capacity(scenario.sim_cycles);
    let mut convergence = Vec::with_capacity(scenario.sim_cycles);
    let mut per_cycle_cache = Vec::with_capacity(scenario.sim_cycles);
    // Counter snapshot at run start: the context (and its cache) may be
    // shared across runs, so everything this run reports is a delta
    // against this baseline rather than a lifetime total.
    let run_start_cache = world.ctx.read().cache_stats();
    let mut cache_prev = run_start_cache;

    let mut capacity: Vec<u32> = vec![0; n];
    let mut candidates: Vec<NodeId> = Vec::with_capacity(64);
    let mut preferred: Vec<NodeId> = Vec::with_capacity(64);
    let mut reps_of: Vec<f64> = Vec::with_capacity(64);
    let mut pending: Vec<PendingRequest> = Vec::with_capacity(1024);
    // Reusable copy of the trust vector. A borrowed `system.reputations()`
    // slice cannot live across the `system.record(..)` calls below, so the
    // values are staged here — one buffer reused for the whole run instead
    // of a fresh `to_vec()` per query cycle (at 1M nodes that clone was 8 MB
    // of allocator traffic per cycle).
    let mut reputations: Vec<f64> = Vec::with_capacity(n);

    for cycle in 0..scenario.sim_cycles {
        let cycle_start = Instant::now();
        // One provenance trace per simulation cycle: detection verdicts,
        // Gaussian weights, rescales, and the EigenTrust update all hang
        // off this root (see telemetry's `trace::names`). The guard's
        // drop at the bottom of the loop commits the tree.
        let mut cycle_root = telemetry.tracer().begin_root(trace_names::CYCLE);
        if cycle_root.is_recording() {
            cycle_root.set_attr("cycle", cycle);
            cycle_root.set_attr("system", system.name());
        }
        let collusion_active = scenario.collusion_active_in_cycle(cycle);
        for _qc in 0..scenario.query_cycles {
            capacity.fill(scenario.capacity_per_query_cycle);
            pending.clear();
            reputations.clear();
            reputations.extend_from_slice(system.reputations());

            // --- Organic queries -------------------------------------
            for i in 0..n {
                let client = NodeId::from(i);
                if rng.gen::<f64>() >= world.active_prob[i] {
                    continue; // inactive this query cycle
                }
                let Some(interest) = world.request_dist[i].sample(rng) else {
                    continue;
                };
                candidates.clear();
                preferred.clear();
                for &p in &world.neighbors[i][interest.0 as usize] {
                    if capacity[p.index()] > 0 {
                        candidates.push(p);
                        if reputations[p.index()] > scenario.selection_reputation_threshold {
                            preferred.push(p);
                        }
                    }
                }
                // Selection per the paper: random among interest neighbors
                // above T_R — plus the upper half of the candidate set by
                // reputation, so that mid-pack nodes keep earning while
                // low-reputed nodes are shunned ("no nodes choose
                // low-reputed nodes for services"; "at the initial stage, a
                // node randomly chooses from a number of options with the
                // same reputation value 0").
                if !candidates.is_empty() {
                    reps_of.clear();
                    reps_of.extend(candidates.iter().map(|p| reputations[p.index()]));
                    reps_of.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    let median = reps_of[reps_of.len() / 2];
                    // Tolerant comparison: damped rating spam can leave a
                    // node an ε below an otherwise-identical peer; a strict
                    // cut would starve it forever on that knife edge.
                    let tol = median.abs() * 1e-6 + 1e-12;
                    for &p in &candidates {
                        let rep = reputations[p.index()];
                        if rep >= median - tol && rep <= scenario.selection_reputation_threshold {
                            // Above the candidate median but not already in
                            // the >T_R preferred set.
                            preferred.push(p);
                        }
                    }
                }
                let Some(&server) = preferred.choose(rng) else {
                    continue; // nobody can serve this interest right now
                };
                capacity[server.index()] -= 1;
                requests_total += 1;
                if scenario.is_colluder(server) {
                    requests_to_colluders += 1;
                }
                let authentic = rng.gen::<f64>() < world.behavior[server.index()];
                let value = if authentic { 1.0 } else { -1.0 };
                system.record(Rating::with_interest(client, server, value, interest));
                pending.push(PendingRequest {
                    from: client,
                    to: server,
                    interest,
                });
            }

            // --- Collusion ratings ------------------------------------
            let active_edges: &[crate::collusion::BoostEdge] = if collusion_active {
                &world.plan.edges
            } else {
                &[]
            };
            for edge in active_edges {
                let ratee_interests = world.interests[edge.ratee.index()].as_slice();
                for _ in 0..edge.rate {
                    // "a boosting node rates a boosted node … on an interest
                    // randomly selected from the interests of the boosted
                    // node".
                    let interest = ratee_interests
                        .choose(rng)
                        .copied()
                        .unwrap_or(InterestId(0));
                    system.record(
                        Rating::with_interest(edge.rater, edge.ratee, edge.value, interest)
                            .non_transactional(),
                    );
                    pending.push(PendingRequest {
                        from: edge.rater,
                        to: edge.ratee,
                        interest,
                    });
                }
            }

            // --- Fold this query cycle's interactions into the context ---
            if !pending.is_empty() {
                let mut ctx = world.ctx.write();
                for req in pending.drain(..) {
                    ctx.record_request(req.from, req.to, req.interest);
                }
            }
        }
        query_seconds.observe(cycle_start.elapsed().as_secs_f64());

        // Global reputation update, once per simulation cycle.
        let update_start = Instant::now();
        system.end_cycle();
        update_seconds.observe(update_start.elapsed().as_secs_f64());
        convergence.push(system.convergence());
        let cache_now = world.ctx.read().cache_stats();
        per_cycle_cache.push(cache_now.delta(cache_prev));
        cache_prev = cache_now;
        reputations.clear();
        reputations.extend_from_slice(system.reputations());
        per_cycle_colluder_mean.push(mean_over(&reputations, &colluders));
        per_cycle_colluder_max.push(max_over(&reputations, &colluders));
        per_cycle_normal_mean.push(mean_over(&reputations, &normals));

        // Population churn: a fraction of normal nodes departs; fresh
        // identities take their slots and the engine forgets them.
        if scenario.churn_rate > 0.0 {
            use rand::seq::SliceRandom as _;
            let count = ((normals.len() as f64) * scenario.churn_rate).round() as usize;
            let churned: Vec<NodeId> = normals
                .choose_multiple(rng, count.min(normals.len()))
                .copied()
                .collect();
            for v in churned {
                system.reset_node(v);
            }
        }

        // Whitewashing: colluders whose reputation collapsed below the
        // selection bar shed their identity and start over.
        if scenario.whitewash {
            let threshold = scenario.selection_reputation_threshold;
            let resets: Vec<NodeId> = colluders
                .iter()
                .copied()
                .filter(|c| reputations[c.index()] < threshold)
                .collect();
            for c in resets {
                system.reset_node(c);
            }
        }
        cycle_seconds.observe(cycle_start.elapsed().as_secs_f64());
    }

    RunResult {
        system_name: system.name(),
        final_summary: ReputationSummary::new(system.reputations().to_vec()),
        per_cycle_colluder_mean,
        per_cycle_colluder_max,
        per_cycle_normal_mean,
        requests_total,
        requests_to_colluders,
        ratings_adjusted: system.total_adjusted_ratings(),
        suspicions_flagged: system.total_suspicions(),
        cache: world.ctx.read().cache_stats().delta(run_start_cache),
        convergence,
        per_cycle_cache,
    }
}

fn mean_over(values: &[f64], nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.iter().map(|&v| values[v.index()]).sum::<f64>() / nodes.len() as f64
}

fn max_over(values: &[f64], nodes: &[NodeId]) -> f64 {
    nodes.iter().map(|&v| values[v.index()]).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::SimWorld;
    use crate::collusion::CollusionModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use socialtrust_reputation::prelude::{EBayModel, EigenTrust};

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn small_run(model: CollusionModel, seed: u64) -> (ScenarioConfig, RunResult) {
        let scenario = ScenarioConfig::small().with_collusion(model);
        let mut r = rng(seed);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids());
        let result = run(&world, &scenario, &mut system, &mut r);
        (scenario, result)
    }

    #[test]
    fn run_produces_complete_metrics() {
        let (scenario, result) = small_run(CollusionModel::None, 1);
        assert_eq!(result.per_cycle_colluder_mean.len(), scenario.sim_cycles);
        assert_eq!(result.per_cycle_colluder_max.len(), scenario.sim_cycles);
        assert_eq!(result.per_cycle_normal_mean.len(), scenario.sim_cycles);
        assert_eq!(result.final_summary.values().len(), scenario.nodes);
        assert!(result.requests_total > 0, "organic traffic must flow");
        assert!(result.requests_to_colluders <= result.requests_total);
        assert_eq!(result.system_name, "EigenTrust");
    }

    #[test]
    fn reputations_remain_a_distribution() {
        let (_, result) = small_run(CollusionModel::PairWise, 2);
        let sum: f64 = result.final_summary.values().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(result.final_summary.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn runs_are_deterministic_under_seed() {
        let (_, r1) = small_run(CollusionModel::MultiMutual, 3);
        let (_, r2) = small_run(CollusionModel::MultiMutual, 3);
        assert_eq!(r1.final_summary, r2.final_summary);
        assert_eq!(r1.requests_total, r2.requests_total);
        assert_eq!(r1.requests_to_colluders, r2.requests_to_colluders);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, r1) = small_run(CollusionModel::None, 4);
        let (_, r2) = small_run(CollusionModel::None, 5);
        assert_ne!(r1.final_summary, r2.final_summary);
    }

    #[test]
    fn collusion_boosts_colluders_in_ebay() {
        // eBay with B=0.6: mutual high-frequency positive ratings must push
        // colluder reputations above the honest mean (Figure 8(b)).
        let scenario = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_colluder_behavior(0.6);
        let mut r = rng(6);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EBayModel::new(scenario.nodes);
        let result = run(&world, &scenario, &mut system, &mut r);
        let colluder_mean = result
            .final_summary
            .mean_reputation(&scenario.colluder_ids());
        let normal_mean = result.final_summary.mean_reputation(&scenario.normal_ids());
        assert!(
            colluder_mean > normal_mean,
            "colluders {colluder_mean} should outrank normals {normal_mean} in unprotected eBay"
        );
    }

    #[test]
    fn no_collusion_keeps_low_behavior_nodes_down_in_eigentrust() {
        // Without collusion, B=0.2 nodes must end below the normal mean
        // (Figure 7(a)).
        let scenario = ScenarioConfig::small().with_colluder_behavior(0.2);
        let mut r = rng(7);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EigenTrust::with_defaults(scenario.nodes, &scenario.pretrusted_ids());
        let result = run(&world, &scenario, &mut system, &mut r);
        let malicious_mean = result
            .final_summary
            .mean_reputation(&scenario.colluder_ids());
        let normal_mean = result.final_summary.mean_reputation(&scenario.normal_ids());
        assert!(
            malicious_mean < normal_mean,
            "malicious {malicious_mean} vs normal {normal_mean}"
        );
    }

    #[test]
    fn interactions_accumulate_in_context() {
        let scenario = ScenarioConfig::small().with_collusion(CollusionModel::PairWise);
        let mut r = rng(8);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EBayModel::new(scenario.nodes);
        let _ = run(&world, &scenario, &mut system, &mut r);
        let ctx = world.ctx.read();
        // Colluding pairs interacted heavily.
        let (a, b) = world.plan.social_pairs[0];
        assert!(
            ctx.interactions().frequency(a, b) > 100.0,
            "collusion interactions must be tracked: f = {}",
            ctx.interactions().frequency(a, b)
        );
        // Interest profiles recorded requests.
        assert!(ctx.profile(a).total_requests() > 0);
    }

    #[test]
    fn oscillating_collusion_halves_the_spam() {
        let steady = ScenarioConfig::small().with_collusion(CollusionModel::PairWise);
        let bursty = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_oscillation(2); // collude every other cycle
        let run_spam = |scenario: &ScenarioConfig| {
            let mut r = rng(21);
            let world = SimWorld::build(scenario, &mut r);
            let mut system = EBayModel::new(scenario.nodes);
            let _ = run(&world, scenario, &mut system, &mut r);
            let ctx = world.ctx.read();
            let (a, b) = world.plan.social_pairs[0];
            ctx.interactions().frequency(a, b)
        };
        let full = run_spam(&steady);
        let half = run_spam(&bursty);
        assert!(
            half < full * 0.7,
            "bursty collusion must emit far fewer interactions: {half} vs {full}"
        );
        assert!(half > 0.0, "bursts still fire in active cycles");
    }

    #[test]
    fn whitewash_resets_colluder_records() {
        // Under eBay with B=0.2 in MCM, the *boosting* colluders receive no
        // spam themselves and accumulate negative service records;
        // whitewashing wipes them, so no washed colluder can end deeply
        // negative.
        let scenario = ScenarioConfig::small()
            .with_collusion(CollusionModel::MultiNode)
            .with_colluder_behavior(0.2)
            .with_whitewash(true);
        let mut r = rng(22);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EBayModel::new(scenario.nodes);
        let _ = run(&world, &scenario, &mut system, &mut r);
        for c in scenario.colluder_ids() {
            assert!(
                system.raw_score(c) >= -2.0,
                "whitewashed colluder {c} should not carry a deep negative record: {}",
                system.raw_score(c)
            );
        }
    }

    #[test]
    fn whitewash_changes_outcomes_deterministically() {
        let base = ScenarioConfig::small()
            .with_collusion(CollusionModel::MultiNode)
            .with_colluder_behavior(0.2);
        let run_with = |whitewash: bool| {
            let scenario = base.clone().with_whitewash(whitewash);
            let mut r = rng(23);
            let world = SimWorld::build(&scenario, &mut r);
            let mut system = EBayModel::new(scenario.nodes);
            run(&world, &scenario, &mut system, &mut r).final_summary
        };
        // Same seed, one flag flipped: the reset hook must actually bite.
        assert_ne!(run_with(true), run_with(false));
        // And stay reproducible.
        assert_eq!(run_with(true), run_with(true));
    }

    #[test]
    fn churn_resets_normal_nodes_but_spares_colluders() {
        let scenario = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_churn(0.3)
            .with_cycles(6);
        let mut r = rng(31);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EBayModel::new(scenario.nodes);
        let result = run(&world, &scenario, &mut system, &mut r);
        // Churned normals lose their accumulated standing, so the average
        // normal raw score must be well below the no-churn run's.
        let churned_mean: f64 = scenario
            .normal_ids()
            .iter()
            .map(|&v| system.raw_score(v))
            .sum::<f64>()
            / scenario.normal_ids().len() as f64;
        let baseline = {
            let s2 = ScenarioConfig::small()
                .with_collusion(CollusionModel::PairWise)
                .with_cycles(6);
            let mut r2 = rng(31);
            let world2 = SimWorld::build(&s2, &mut r2);
            let mut sys2 = EBayModel::new(s2.nodes);
            let _ = run(&world2, &s2, &mut sys2, &mut r2);
            s2.normal_ids()
                .iter()
                .map(|&v| sys2.raw_score(v))
                .sum::<f64>()
                / s2.normal_ids().len() as f64
        };
        assert!(
            churned_mean < baseline,
            "churn must erode accumulated normal standing: {churned_mean} vs {baseline}"
        );
        // Determinism with churn on.
        assert_eq!(result.final_summary, {
            let mut r3 = rng(31);
            let world3 = SimWorld::build(&scenario, &mut r3);
            let mut sys3 = EBayModel::new(scenario.nodes);
            run(&world3, &scenario, &mut sys3, &mut r3).final_summary
        });
    }

    #[test]
    fn capacity_is_respected_per_query_cycle() {
        // With capacity 1, each node issues at most one request per query
        // cycle, so the total is bounded by nodes × query cycles × cycles.
        let mut scenario = ScenarioConfig::small();
        scenario.capacity_per_query_cycle = 1;
        scenario.sim_cycles = 2;
        let mut r = rng(9);
        let world = SimWorld::build(&scenario, &mut r);
        let mut system = EBayModel::new(scenario.nodes);
        let result = run(&world, &scenario, &mut system, &mut r);
        let max_possible = (scenario.nodes * scenario.query_cycles * scenario.sim_cycles) as u64;
        assert!(result.requests_total <= max_possible);
        assert!(result.requests_total > 0);
    }
}
