//! # socialtrust-sim
//!
//! The P2P network simulator used to reproduce the evaluation (Section 5)
//! of the SocialTrust paper.
//!
//! The simulator implements the paper's experimental setup:
//!
//! * an unstructured P2P network of 200 nodes connected by shared
//!   interests (20 categories, 1–10 interests per node);
//! * simulation cycles of 30 query cycles; in each query cycle every
//!   active node (activity probability ∈ [0.5, 1]) issues one resource
//!   request on one of its interests (power-law weighted), served by an
//!   interest neighbor with free capacity (50/query cycle) and reputation
//!   above `T_R = 0.01`;
//! * node models: 9 pre-trusted nodes (authentic with probability 1),
//!   normal nodes (0.8), and 30 colluders (`B ∈ {0.2, 0.6}`);
//! * the three collusion models of the paper — pair-wise (PCM), multiple
//!   node (MCM), and multiple-and-mutual (MMM) — plus compromised
//!   pre-trusted variants and falsified-social-information variants;
//! * metrics: reputation distributions, percentage of requests served by
//!   colluders, and colluder-suppression convergence.
//!
//! Entry points: configure a [`scenario::ScenarioConfig`], pick a
//! [`runner::ReputationKind`], and call [`runner::run_scenario`] (single
//! seeded run) or [`runner::run_scenario_multi`] (n seeded runs in
//! parallel, with 95% confidence intervals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod collusion;
pub mod engine;
pub mod metrics;
pub mod runner;
pub mod scenario;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::collusion::{CollusionModel, CollusionPlan};
    pub use crate::metrics::{MultiRunSummary, ReputationSummary, RunResult};
    pub use crate::runner::{
        run_scenario, run_scenario_multi, run_scenario_multi_with_telemetry,
        run_scenario_with_telemetry, ReputationKind,
    };
    pub use crate::scenario::ScenarioConfig;
}
