//! Metrics collected from simulation runs: reputation summaries,
//! request-routing statistics, convergence, and multi-run aggregation with
//! 95% confidence intervals (the paper reports the mean of 5 runs with a
//! 95% CI).

use serde::{Deserialize, Serialize};
use socialtrust_reputation::system::ConvergenceRecord;
use socialtrust_socnet::cache::CacheStats;
use socialtrust_socnet::NodeId;

/// A snapshot of the global reputation vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReputationSummary {
    values: Vec<f64>,
}

impl ReputationSummary {
    /// Wrap a reputation vector.
    pub fn new(values: Vec<f64>) -> Self {
        ReputationSummary { values }
    }

    /// The full vector, indexed by node.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reputation of one node.
    pub fn get(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Mean reputation over a node set (0 for an empty set).
    pub fn mean_reputation(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().map(|&v| self.values[v.index()]).sum::<f64>() / nodes.len() as f64
    }

    /// Maximum reputation over a node set (0 for an empty set).
    pub fn max_reputation(&self, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|&v| self.values[v.index()])
            .fold(0.0, f64::max)
    }
}

/// The result of one seeded simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Name of the reputation system that produced this run.
    pub system_name: String,
    /// Final reputation vector after the last simulation cycle.
    pub final_summary: ReputationSummary,
    /// Mean colluder reputation after each simulation cycle.
    pub per_cycle_colluder_mean: Vec<f64>,
    /// Maximum colluder reputation after each simulation cycle (used for
    /// the Figure 19 convergence criterion).
    pub per_cycle_colluder_max: Vec<f64>,
    /// Mean normal-node reputation after each simulation cycle.
    pub per_cycle_normal_mean: Vec<f64>,
    /// Total organic service requests issued.
    pub requests_total: u64,
    /// Organic service requests served by colluders.
    pub requests_to_colluders: u64,
    /// Cumulative ratings adjusted by SocialTrust (0 for plain systems).
    pub ratings_adjusted: u64,
    /// Cumulative suspicions flagged by SocialTrust (0 for plain systems).
    pub suspicions_flagged: u64,
    /// Hit/miss/eviction counters of the social-coefficient cache accrued
    /// *during this run* — a delta against the counters at run start, so a
    /// context shared across runs never leaks earlier runs' totals here
    /// (all zero for plain systems, which never consult the cache).
    pub cache: CacheStats,
    /// How the reputation update converged after each simulation cycle
    /// (`None` entries for non-iterative engines).
    pub convergence: Vec<Option<ConvergenceRecord>>,
    /// Cache counters accrued in each individual simulation cycle.
    pub per_cycle_cache: Vec<CacheStats>,
}

impl RunResult {
    /// Percentage (0–100) of organic requests served by colluders —
    /// the Table 1 metric.
    pub fn percent_requests_to_colluders(&self) -> f64 {
        if self.requests_total == 0 {
            return 0.0;
        }
        100.0 * self.requests_to_colluders as f64 / self.requests_total as f64
    }

    /// First simulation cycle (1-based) after which **every** colluder's
    /// reputation stays below `threshold` for the rest of the run — the
    /// Figure 19 convergence metric. `None` if never suppressed.
    pub fn cycles_until_colluders_below(&self, threshold: f64) -> Option<usize> {
        let n = self.per_cycle_colluder_max.len();
        let mut first = None;
        for (i, &max) in self.per_cycle_colluder_max.iter().enumerate() {
            if max < threshold {
                first.get_or_insert(i + 1);
            } else {
                first = None;
            }
        }
        let _ = n;
        first
    }

    /// The last cycle's convergence record — the final EigenTrust
    /// iteration count and L1 residual of the run. `None` for
    /// non-iterative engines.
    pub fn final_convergence(&self) -> Option<ConvergenceRecord> {
        self.convergence.iter().rev().find_map(|c| *c)
    }

    /// Mean reputation-update iterations per simulation cycle, over the
    /// cycles that reported a convergence record.
    pub fn mean_iterations(&self) -> Option<f64> {
        let iters: Vec<f64> = self
            .convergence
            .iter()
            .filter_map(|c| c.map(|r| r.iterations as f64))
            .collect();
        if iters.is_empty() {
            None
        } else {
            Some(iters.iter().sum::<f64>() / iters.len() as f64)
        }
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom —
/// enough of the table for the run counts used here (the paper uses 5
/// runs ⇒ df = 4 ⇒ t = 2.776).
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Mean and 95% confidence half-width of a sample.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let half = t_975(n - 1) * (var / n as f64).sqrt();
    (mean, half)
}

/// The `p`-th percentile (0–100) of a sample, by nearest-rank.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be 0–100");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Aggregation of several seeded runs of the same scenario/system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiRunSummary {
    /// The individual runs.
    pub runs: Vec<RunResult>,
    /// Per-node mean final reputation across runs.
    pub mean_reputation: Vec<f64>,
    /// Per-node 95% CI half-width of the final reputation.
    pub ci95_reputation: Vec<f64>,
}

impl MultiRunSummary {
    /// Aggregate a non-empty set of runs.
    ///
    /// # Panics
    /// Panics if `runs` is empty or runs disagree on node count.
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs[0].final_summary.values().len();
        assert!(
            runs.iter().all(|r| r.final_summary.values().len() == n),
            "runs disagree on node count"
        );
        let mut mean_reputation = Vec::with_capacity(n);
        let mut ci95_reputation = Vec::with_capacity(n);
        for i in 0..n {
            let samples: Vec<f64> = runs.iter().map(|r| r.final_summary.values()[i]).collect();
            let (m, ci) = mean_ci95(&samples);
            mean_reputation.push(m);
            ci95_reputation.push(ci);
        }
        MultiRunSummary {
            runs,
            mean_reputation,
            ci95_reputation,
        }
    }

    /// Mean and 95% CI of the percent-of-requests-to-colluders metric.
    pub fn percent_requests_to_colluders(&self) -> (f64, f64) {
        let samples: Vec<f64> = self
            .runs
            .iter()
            .map(|r| r.percent_requests_to_colluders())
            .collect();
        mean_ci95(&samples)
    }

    /// Mean final reputation over a node set, averaged across runs.
    pub fn mean_reputation_of(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        nodes
            .iter()
            .map(|&v| self.mean_reputation[v.index()])
            .sum::<f64>()
            / nodes.len() as f64
    }

    /// Social-coefficient cache counters summed across runs.
    pub fn cache_stats(&self) -> CacheStats {
        self.runs
            .iter()
            .fold(CacheStats::default(), |acc, r| acc.merged(r.cache))
    }

    /// Mean and 95% CI of the final EigenTrust iteration count and L1
    /// residual across runs: `((iter_mean, iter_ci), (residual_mean,
    /// residual_ci))`. `None` when no run reported convergence (the
    /// engine is not iterative).
    pub fn final_convergence_stats(&self) -> Option<((f64, f64), (f64, f64))> {
        let records: Vec<ConvergenceRecord> = self
            .runs
            .iter()
            .filter_map(|r| r.final_convergence())
            .collect();
        if records.is_empty() {
            return None;
        }
        let iters: Vec<f64> = records.iter().map(|r| r.iterations as f64).collect();
        let residuals: Vec<f64> = records.iter().map(|r| r.residual).collect();
        Some((mean_ci95(&iters), mean_ci95(&residuals)))
    }

    /// Convergence percentiles (1st, 50th, 99th) of the cycles-until-
    /// suppressed metric (Figure 19). Runs that never converge are treated
    /// as taking the full run length.
    pub fn convergence_percentiles(&self, threshold: f64) -> (f64, f64, f64) {
        let samples: Vec<f64> = self
            .runs
            .iter()
            .map(|r| {
                r.cycles_until_colluders_below(threshold)
                    .unwrap_or(r.per_cycle_colluder_max.len()) as f64
            })
            .collect();
        (
            percentile(&samples, 1.0),
            percentile(&samples, 50.0),
            percentile(&samples, 99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(final_reps: Vec<f64>, colluder_max: Vec<f64>) -> RunResult {
        RunResult {
            system_name: "test".into(),
            final_summary: ReputationSummary::new(final_reps),
            per_cycle_colluder_mean: colluder_max.clone(),
            per_cycle_colluder_max: colluder_max,
            per_cycle_normal_mean: vec![],
            requests_total: 100,
            requests_to_colluders: 10,
            ratings_adjusted: 0,
            suspicions_flagged: 0,
            cache: CacheStats::default(),
            convergence: vec![],
            per_cycle_cache: vec![],
        }
    }

    #[test]
    fn convergence_helpers() {
        let mut r = run_with(vec![0.5], vec![]);
        assert_eq!(r.final_convergence(), None);
        assert_eq!(r.mean_iterations(), None);
        r.convergence = vec![
            None,
            Some(ConvergenceRecord {
                iterations: 10,
                residual: 1e-3,
                warm_started: false,
            }),
            Some(ConvergenceRecord {
                iterations: 4,
                residual: 1e-7,
                warm_started: true,
            }),
        ];
        let last = r.final_convergence().unwrap();
        assert_eq!(last.iterations, 4);
        assert!(last.warm_started);
        assert_eq!(r.mean_iterations(), Some(7.0));

        let m = MultiRunSummary::from_runs(vec![r.clone(), r]);
        let ((iter_mean, _), (res_mean, _)) = m.final_convergence_stats().unwrap();
        assert_eq!(iter_mean, 4.0);
        assert!((res_mean - 1e-7).abs() < 1e-12);
        let plain = MultiRunSummary::from_runs(vec![run_with(vec![0.5], vec![])]);
        assert!(plain.final_convergence_stats().is_none());
    }

    #[test]
    fn summary_accessors() {
        let s = ReputationSummary::new(vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(s.get(NodeId(2)), 0.3);
        assert!((s.mean_reputation(&[NodeId(0), NodeId(3)]) - 0.25).abs() < 1e-12);
        assert_eq!(s.max_reputation(&[NodeId(1), NodeId(2)]), 0.3);
        assert_eq!(s.mean_reputation(&[]), 0.0);
    }

    #[test]
    fn percent_requests() {
        let r = run_with(vec![0.5, 0.5], vec![]);
        assert!((r.percent_requests_to_colluders() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percent_requests_idle_run() {
        let mut r = run_with(vec![0.5], vec![]);
        r.requests_total = 0;
        assert_eq!(r.percent_requests_to_colluders(), 0.0);
    }

    #[test]
    fn convergence_requires_staying_below() {
        // Dips below at cycle 2 but relapses at 3; stays below from 4 on.
        let r = run_with(vec![], vec![0.5, 0.0001, 0.5, 0.0001, 0.0001]);
        assert_eq!(r.cycles_until_colluders_below(0.001), Some(4));
        // Never below:
        let r2 = run_with(vec![], vec![0.5, 0.5]);
        assert_eq!(r2.cycles_until_colluders_below(0.001), None);
        // Below from the start:
        let r3 = run_with(vec![], vec![0.0, 0.0]);
        assert_eq!(r3.cycles_until_colluders_below(0.001), Some(1));
    }

    #[test]
    fn mean_ci95_matches_t_table() {
        // 5 samples ⇒ df=4 ⇒ t=2.776.
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (mean, ci) = mean_ci95(&samples);
        assert!((mean - 3.0).abs() < 1e-12);
        // var = 2.5, se = sqrt(2.5/5) = 0.7071
        assert!((ci - 2.776 * (2.5f64 / 5.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn mean_ci95_degenerate_cases() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[7.0]), (7.0, 0.0));
        let (_, ci) = mean_ci95(&[2.0, 2.0, 2.0]);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 1.0), 10.0);
        assert_eq!(percentile(&s, 50.0), 20.0);
        assert_eq!(percentile(&s, 99.0), 40.0);
        assert_eq!(percentile(&s, 100.0), 40.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn multi_run_aggregation() {
        let runs = vec![
            run_with(vec![0.1, 0.3], vec![0.0]),
            run_with(vec![0.3, 0.5], vec![0.0]),
        ];
        let m = MultiRunSummary::from_runs(runs);
        assert!((m.mean_reputation[0] - 0.2).abs() < 1e-12);
        assert!((m.mean_reputation[1] - 0.4).abs() < 1e-12);
        assert!(m.ci95_reputation[0] > 0.0);
        assert!((m.mean_reputation_of(&[NodeId(0), NodeId(1)]) - 0.3).abs() < 1e-12);
        let (pct, _) = m.percent_requests_to_colluders();
        assert!((pct - 10.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_percentiles_handle_nonconverged() {
        let runs = vec![
            run_with(vec![0.0], vec![0.0, 0.0, 0.0]), // converges at 1
            run_with(vec![0.0], vec![0.5, 0.5, 0.5]), // never (counts as 3)
        ];
        let m = MultiRunSummary::from_runs(runs);
        let (p1, p50, p99) = m.convergence_percentiles(0.001);
        assert_eq!(p1, 1.0);
        assert!(p50 >= 1.0);
        assert_eq!(p99, 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_multi_run_rejected() {
        MultiRunSummary::from_runs(vec![]);
    }
}
