//! Scenario configuration: every knob of the paper's experimental setup
//! (Section 5.1), with the paper's values as defaults.

use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;

use crate::collusion::CollusionModel;

/// Full configuration of one simulation scenario.
///
/// Node id layout follows the paper: ids `0..pretrusted_count` are the
/// pre-trusted nodes (the paper's user IDs 1–9), the next
/// `colluder_count` ids are the colluders (the paper's IDs 10–39), and the
/// rest are normal nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Total number of nodes (paper: 200).
    pub nodes: usize,
    /// Number of pre-trusted nodes (paper: 9).
    pub pretrusted_count: usize,
    /// Number of colluders (paper: 30).
    pub colluder_count: usize,
    /// Number of interest categories in the system (paper: 20).
    pub total_interests: u16,
    /// Per-node interest count range (paper: [1, 10]).
    pub interests_per_node: (usize, usize),
    /// Service capacity per node per query cycle (paper: 50).
    pub capacity_per_query_cycle: u32,
    /// Query cycles per simulation cycle (paper: 30).
    pub query_cycles: usize,
    /// Simulation cycles per run (paper: 50).
    pub sim_cycles: usize,
    /// Node activity probability range (paper: [0.5, 1]).
    pub active_prob: (f64, f64),
    /// Probability a normal node serves authentically (paper: 0.8).
    pub normal_behavior: f64,
    /// Probability a pre-trusted node serves authentically (paper: 1.0).
    pub pretrusted_behavior: f64,
    /// Probability `B` a colluder serves authentically (paper: 0.2 / 0.6).
    pub colluder_behavior: f64,
    /// When set, each colluder/malicious node draws its own `B` uniformly
    /// from this range instead of using `colluder_behavior` — the Figure 7
    /// no-collusion baseline draws `B ∈ [0.2, 0.6]` per malicious node.
    pub colluder_behavior_range: Option<(f64, f64)>,
    /// Server-selection reputation threshold `T_R` (paper: 0.01).
    pub selection_reputation_threshold: f64,
    /// The collusion model in force.
    pub collusion: CollusionModel,
    /// Ratings per query cycle from a boosting node to its boosted target
    /// (paper: 20).
    pub boost_rate: u32,
    /// Ratings per query cycle from a boosted node back to each of its
    /// boosting nodes — only used by MMM (paper: 5).
    pub reciprocal_rate: u32,
    /// Number of boosted nodes in MCM/MMM (paper: 7).
    pub boosted_count: usize,
    /// Number of compromised pre-trusted nodes joining the collusion
    /// (paper: 0 or 7).
    pub compromised_pretrusted: usize,
    /// Colluders falsify their static social information: exactly one
    /// relationship per colluding pair and identical declared interests
    /// (Section 5.8).
    pub falsified_social_info: bool,
    /// Social distance between colluding pairs (paper default 1; Figure 20
    /// sweeps 1–3). Distances 2 and 3 route the pair through intermediary
    /// nodes instead of a direct clique edge.
    pub colluder_social_distance: u32,
    /// Relationship-count range for edges between normal nodes
    /// (paper: [1, 2]).
    pub normal_relationships: (usize, usize),
    /// Relationship-count range for edges between colluders (paper: [3, 5]).
    pub colluder_relationships: (usize, usize),
    /// Average social-graph degree for the normal backbone.
    pub social_avg_degree: f64,
    /// Overlay fan-out: how many providers of each of its interests a node
    /// links to in the unstructured overlay. Requests can only be routed to
    /// these interest neighbors, which is what keeps traffic (and hence
    /// reputation) spread across the population instead of collapsing onto
    /// the first nodes to cross `T_R`.
    pub overlay_per_interest: usize,
    /// Oscillating colluders (an extension beyond the paper, from its
    /// future-work list of "other collusion patterns"): when set to
    /// `Some(k)`, the collusion plan only fires during the *first half* of
    /// every `k`-simulation-cycle window — colluders alternate between
    /// quiet, well-behaved phases and collusion bursts, a classic
    /// detection-evasion strategy.
    pub oscillation_period: Option<usize>,
    /// Population churn (an extension beyond the paper): after every
    /// reputation update, this fraction of *normal* nodes departs and is
    /// replaced by fresh identities occupying the same slots — the
    /// reputation engine forgets them (`reset_node`). Classic P2P
    /// membership turnover; stresses reputation bootstrap.
    pub churn_rate: f64,
    /// Whitewashing (an extension beyond the paper): after every
    /// reputation update, any colluder whose reputation fell below the
    /// selection threshold abandons its identity and re-enters the system
    /// fresh — the reputation engine forgets all opinions by and about it.
    /// The social fingerprint (graph position, interaction history,
    /// request profile) persists: the same human colludes from the same
    /// social position, which is exactly what SocialTrust keys on.
    pub whitewash: bool,
}

impl ScenarioConfig {
    /// The paper's default setup (Section 5.1), with no collusion.
    pub fn paper_default() -> Self {
        ScenarioConfig {
            nodes: 200,
            pretrusted_count: 9,
            colluder_count: 30,
            total_interests: 20,
            interests_per_node: (1, 10),
            capacity_per_query_cycle: 50,
            query_cycles: 30,
            sim_cycles: 50,
            active_prob: (0.5, 1.0),
            normal_behavior: 0.8,
            pretrusted_behavior: 1.0,
            colluder_behavior: 0.6,
            colluder_behavior_range: None,
            selection_reputation_threshold: 0.01,
            collusion: CollusionModel::None,
            boost_rate: 20,
            reciprocal_rate: 5,
            boosted_count: 7,
            compromised_pretrusted: 0,
            falsified_social_info: false,
            colluder_social_distance: 1,
            normal_relationships: (1, 2),
            colluder_relationships: (3, 5),
            social_avg_degree: 6.0,
            overlay_per_interest: 10,
            oscillation_period: None,
            churn_rate: 0.0,
            whitewash: false,
        }
    }

    /// A small, fast variant for tests and doctests (40 nodes, 8 colluders,
    /// shorter cycles). Same structure, same dynamics — in particular the
    /// selection threshold keeps the paper's ratio of 2× the uniform
    /// reputation share (`0.01` vs `1/200`), which drives the
    /// winner-take-all request routing.
    pub fn small() -> Self {
        ScenarioConfig {
            nodes: 40,
            pretrusted_count: 3,
            colluder_count: 8,
            boosted_count: 3,
            query_cycles: 10,
            sim_cycles: 10,
            selection_reputation_threshold: 0.05,
            ..ScenarioConfig::paper_default()
        }
    }

    /// Builder: set the collusion model.
    pub fn with_collusion(mut self, model: CollusionModel) -> Self {
        self.collusion = model;
        self
    }

    /// Builder: set the colluder good-behavior probability `B`.
    pub fn with_colluder_behavior(mut self, b: f64) -> Self {
        self.colluder_behavior = b;
        self
    }

    /// Builder: draw each colluder's `B` uniformly from `range` (Figure 7's
    /// malicious-node model).
    pub fn with_colluder_behavior_range(mut self, range: (f64, f64)) -> Self {
        assert!(
            (0.0..=1.0).contains(&range.0) && range.0 <= range.1 && range.1 <= 1.0,
            "invalid behavior range {range:?}"
        );
        self.colluder_behavior_range = Some(range);
        self
    }

    /// Builder: set the number of simulation cycles.
    pub fn with_cycles(mut self, cycles: usize) -> Self {
        self.sim_cycles = cycles;
        self
    }

    /// Builder: compromise `count` pre-trusted nodes into the collusion.
    pub fn with_compromised_pretrusted(mut self, count: usize) -> Self {
        self.compromised_pretrusted = count;
        self
    }

    /// Builder: enable colluder falsification of static social info.
    pub fn with_falsified_social_info(mut self, on: bool) -> Self {
        self.falsified_social_info = on;
        self
    }

    /// Builder: make colluders oscillate — collude only during the first
    /// half of every `period`-cycle window.
    pub fn with_oscillation(mut self, period: usize) -> Self {
        assert!(period >= 2, "oscillation period must be at least 2 cycles");
        self.oscillation_period = Some(period);
        self
    }

    /// Builder: set the per-cycle normal-node churn fraction.
    pub fn with_churn(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "churn rate is a fraction");
        self.churn_rate = rate;
        self
    }

    /// Builder: enable colluder whitewashing (identity reset when their
    /// reputation collapses).
    pub fn with_whitewash(mut self, on: bool) -> Self {
        self.whitewash = on;
        self
    }

    /// Is the collusion plan active during simulation cycle `cycle`?
    pub fn collusion_active_in_cycle(&self, cycle: usize) -> bool {
        match self.oscillation_period {
            Some(period) => (cycle % period) < period / 2,
            None => true,
        }
    }

    /// Builder: set the social distance between colluding pairs (1–3).
    pub fn with_colluder_distance(mut self, hops: u32) -> Self {
        assert!((1..=3).contains(&hops), "colluder distance must be 1–3");
        self.colluder_social_distance = hops;
        self
    }

    /// The pre-trusted node ids (`0..pretrusted_count`).
    pub fn pretrusted_ids(&self) -> Vec<NodeId> {
        (0..self.pretrusted_count).map(NodeId::from).collect()
    }

    /// The colluder node ids (immediately after the pre-trusted block).
    pub fn colluder_ids(&self) -> Vec<NodeId> {
        (self.pretrusted_count..self.pretrusted_count + self.colluder_count)
            .map(NodeId::from)
            .collect()
    }

    /// Normal node ids (everything after pre-trusted and colluders).
    pub fn normal_ids(&self) -> Vec<NodeId> {
        (self.pretrusted_count + self.colluder_count..self.nodes)
            .map(NodeId::from)
            .collect()
    }

    /// Is `node` a colluder under this layout?
    pub fn is_colluder(&self, node: NodeId) -> bool {
        let i = node.index();
        i >= self.pretrusted_count && i < self.pretrusted_count + self.colluder_count
    }

    /// Is `node` pre-trusted?
    pub fn is_pretrusted(&self, node: NodeId) -> bool {
        node.index() < self.pretrusted_count
    }

    /// The authentic-service probability of `node`.
    pub fn behavior_of(&self, node: NodeId) -> f64 {
        if self.is_pretrusted(node) {
            self.pretrusted_behavior
        } else if self.is_colluder(node) {
            self.colluder_behavior
        } else {
            self.normal_behavior
        }
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    /// Panics on impossible configurations.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need nodes");
        assert!(
            self.pretrusted_count + self.colluder_count <= self.nodes,
            "pretrusted + colluders exceed node count"
        );
        assert!(
            self.compromised_pretrusted <= self.pretrusted_count,
            "cannot compromise more pretrusted nodes than exist"
        );
        assert!(
            self.boosted_count <= self.colluder_count.max(1),
            "boosted nodes must be colluders"
        );
        assert!(self.total_interests > 0);
        assert!(
            self.interests_per_node.0 >= 1
                && self.interests_per_node.0 <= self.interests_per_node.1
                && self.interests_per_node.1 <= self.total_interests as usize
        );
        for p in [
            self.normal_behavior,
            self.pretrusted_behavior,
            self.colluder_behavior,
            self.active_prob.0,
            self.active_prob.1,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        assert!(self.active_prob.0 <= self.active_prob.1);
        assert!((1..=3).contains(&self.colluder_social_distance));
        assert!(
            (0.0..=1.0).contains(&self.churn_rate),
            "churn rate must be a fraction"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5_1() {
        let s = ScenarioConfig::paper_default();
        s.validate();
        assert_eq!(s.nodes, 200);
        assert_eq!(s.pretrusted_count, 9);
        assert_eq!(s.colluder_count, 30);
        assert_eq!(s.total_interests, 20);
        assert_eq!(s.capacity_per_query_cycle, 50);
        assert_eq!(s.query_cycles, 30);
        assert_eq!(s.sim_cycles, 50);
        assert_eq!(s.selection_reputation_threshold, 0.01);
    }

    #[test]
    fn id_layout_partitions_nodes() {
        let s = ScenarioConfig::paper_default();
        let p = s.pretrusted_ids();
        let c = s.colluder_ids();
        let n = s.normal_ids();
        assert_eq!(p.len() + c.len() + n.len(), s.nodes);
        assert_eq!(p.last(), Some(&NodeId(8)));
        assert_eq!(c.first(), Some(&NodeId(9)));
        assert_eq!(c.last(), Some(&NodeId(38)));
        assert_eq!(n.first(), Some(&NodeId(39)));
        assert!(s.is_pretrusted(NodeId(0)));
        assert!(s.is_colluder(NodeId(9)));
        assert!(s.is_colluder(NodeId(38)));
        assert!(!s.is_colluder(NodeId(39)));
        assert!(!s.is_pretrusted(NodeId(9)));
    }

    #[test]
    fn behavior_assignment() {
        let s = ScenarioConfig::paper_default().with_colluder_behavior(0.2);
        assert_eq!(s.behavior_of(NodeId(0)), 1.0);
        assert_eq!(s.behavior_of(NodeId(10)), 0.2);
        assert_eq!(s.behavior_of(NodeId(100)), 0.8);
    }

    #[test]
    fn builders_chain() {
        let s = ScenarioConfig::paper_default()
            .with_collusion(CollusionModel::MultiMutual)
            .with_colluder_behavior(0.2)
            .with_cycles(10)
            .with_compromised_pretrusted(7)
            .with_falsified_social_info(true)
            .with_colluder_distance(2);
        s.validate();
        assert_eq!(s.collusion, CollusionModel::MultiMutual);
        assert_eq!(s.sim_cycles, 10);
        assert_eq!(s.compromised_pretrusted, 7);
        assert!(s.falsified_social_info);
        assert_eq!(s.colluder_social_distance, 2);
    }

    #[test]
    #[should_panic(expected = "compromise")]
    fn validate_rejects_too_many_compromised() {
        ScenarioConfig::paper_default()
            .with_compromised_pretrusted(10)
            .validate();
    }

    #[test]
    #[should_panic(expected = "1–3")]
    fn distance_out_of_range_rejected() {
        ScenarioConfig::paper_default().with_colluder_distance(4);
    }

    #[test]
    fn small_is_consistent() {
        ScenarioConfig::small().validate();
    }
}
