//! Scenario runners: build the world, pick a reputation system, run it —
//! once or many times in parallel.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use socialtrust_core::config::SocialTrustConfig;
use socialtrust_core::decorator::WithSocialTrust;
use socialtrust_core::manager::ManagedSocialTrust;
use socialtrust_reputation::average::SimpleAverage;
use socialtrust_reputation::ebay::EBayModel;
use socialtrust_reputation::eigentrust::EigenTrust;
use socialtrust_reputation::feedback_similarity::FeedbackSimilarity;
use socialtrust_reputation::power_trust::PowerTrust;
use socialtrust_reputation::system::ReputationSystem;
use socialtrust_telemetry::Telemetry;

use crate::build::SimWorld;
use crate::engine;
use crate::metrics::{MultiRunSummary, RunResult};
use crate::scenario::ScenarioConfig;

/// Which reputation system to run the scenario against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReputationKind {
    /// Plain EigenTrust (pre-trusted weight 0.5, as in the paper).
    EigenTrust,
    /// Plain eBay-style accumulation.
    EBay,
    /// Naive mean-rating baseline (ablation only).
    SimpleAverage,
    /// TrustGuard-style feedback-similarity credibility baseline (no
    /// social information; ablation comparator).
    FeedbackSimilarity,
    /// PowerTrust-style engine with dynamically-elected power nodes
    /// (ablation comparator).
    PowerTrust,
    /// EigenTrust wrapped with SocialTrust.
    EigenTrustWithSocialTrust,
    /// eBay wrapped with SocialTrust.
    EBayWithSocialTrust,
    /// EigenTrust + SocialTrust in the distributed (resource-manager)
    /// deployment. Result-identical to the centralized variant; adds
    /// overhead accounting.
    EigenTrustWithSocialTrustDistributed,
}

impl ReputationKind {
    /// All kinds, for exhaustive sweeps.
    pub const ALL: [ReputationKind; 8] = [
        ReputationKind::EigenTrust,
        ReputationKind::EBay,
        ReputationKind::SimpleAverage,
        ReputationKind::FeedbackSimilarity,
        ReputationKind::PowerTrust,
        ReputationKind::EigenTrustWithSocialTrust,
        ReputationKind::EBayWithSocialTrust,
        ReputationKind::EigenTrustWithSocialTrustDistributed,
    ];

    /// Does this kind include the SocialTrust layer?
    pub fn has_socialtrust(self) -> bool {
        matches!(
            self,
            ReputationKind::EigenTrustWithSocialTrust
                | ReputationKind::EBayWithSocialTrust
                | ReputationKind::EigenTrustWithSocialTrustDistributed
        )
    }
}

impl std::fmt::Display for ReputationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReputationKind::EigenTrust => "EigenTrust",
            ReputationKind::EBay => "eBay",
            ReputationKind::SimpleAverage => "SimpleAverage",
            ReputationKind::FeedbackSimilarity => "FeedbackSimilarity",
            ReputationKind::PowerTrust => "PowerTrust",
            ReputationKind::EigenTrustWithSocialTrust => "EigenTrust+SocialTrust",
            ReputationKind::EBayWithSocialTrust => "eBay+SocialTrust",
            ReputationKind::EigenTrustWithSocialTrustDistributed => {
                "EigenTrust+SocialTrust (distributed)"
            }
        };
        f.write_str(s)
    }
}

/// The SocialTrust configuration a scenario calls for: the hardened
/// Section 4.4 mode when colluders falsify social information, the default
/// mode otherwise.
pub fn socialtrust_config_for(scenario: &ScenarioConfig) -> SocialTrustConfig {
    let mut cfg = if scenario.falsified_social_info {
        SocialTrustConfig::falsification_resilient()
    } else {
        SocialTrustConfig::default()
    };
    // The paper uses a single T_R both for server selection and for the
    // B2 "low-reputed ratee" test; keep them in sync when the scenario
    // scales the selection threshold to its network size.
    cfg.low_reputation = scenario.selection_reputation_threshold;
    cfg
}

/// Instantiate the reputation system for a built world.
pub fn make_system(
    kind: ReputationKind,
    scenario: &ScenarioConfig,
    world: &SimWorld,
) -> Box<dyn ReputationSystem> {
    let n = scenario.nodes;
    let pretrusted = scenario.pretrusted_ids();
    let st_config = socialtrust_config_for(scenario);
    match kind {
        ReputationKind::EigenTrust => Box::new(EigenTrust::with_defaults(n, &pretrusted)),
        ReputationKind::EBay => Box::new(EBayModel::new(n)),
        ReputationKind::SimpleAverage => Box::new(SimpleAverage::new(n)),
        ReputationKind::FeedbackSimilarity => Box::new(FeedbackSimilarity::new(n)),
        ReputationKind::PowerTrust => Box::new(PowerTrust::with_defaults(n)),
        ReputationKind::EigenTrustWithSocialTrust => Box::new(WithSocialTrust::new(
            EigenTrust::with_defaults(n, &pretrusted),
            world.ctx.clone(),
            st_config,
        )),
        ReputationKind::EBayWithSocialTrust => Box::new(WithSocialTrust::new(
            EBayModel::new(n),
            world.ctx.clone(),
            st_config,
        )),
        ReputationKind::EigenTrustWithSocialTrustDistributed => Box::new(ManagedSocialTrust::new(
            EigenTrust::with_defaults(n, &pretrusted),
            world.ctx.clone(),
            st_config,
            (n / 10).max(1),
        )),
    }
}

/// Run one seeded simulation of `scenario` under `kind`.
///
/// The seed controls world generation *and* simulation randomness, so a
/// `(scenario, kind, seed)` triple is fully reproducible.
pub fn run_scenario(scenario: &ScenarioConfig, kind: ReputationKind, seed: u64) -> RunResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let world = SimWorld::build(scenario, &mut rng);
    let mut system = make_system(kind, scenario, &world);
    engine::run(&world, scenario, system.as_mut(), &mut rng)
}

/// [`run_scenario`], with every layer wired to `telemetry`: the world's
/// social context (coefficient-cache counters and eviction-storm events),
/// the reputation stack (detector trigger counters, Gaussian/update
/// latency, EigenTrust convergence), and the engine loop's per-cycle wall
/// time. Results are identical to [`run_scenario`] for the same
/// `(scenario, kind, seed)` — instrumentation never touches the
/// simulation's randomness or arithmetic.
pub fn run_scenario_with_telemetry(
    scenario: &ScenarioConfig,
    kind: ReputationKind,
    seed: u64,
    telemetry: &Telemetry,
) -> RunResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let world = SimWorld::build(scenario, &mut rng);
    world.ctx.write().attach_telemetry(telemetry);
    let mut system = make_system(kind, scenario, &world);
    system.attach_telemetry(telemetry);
    engine::run_with_telemetry(&world, scenario, system.as_mut(), &mut rng, telemetry)
}

/// [`run_scenario_multi`], attaching every run to the same `telemetry`
/// bundle. Runs execute *sequentially* (unlike the plain multi runner):
/// counters and histograms aggregate across runs, gauges reflect the last
/// run, and events interleave in run order.
pub fn run_scenario_multi_with_telemetry(
    scenario: &ScenarioConfig,
    kind: ReputationKind,
    base_seed: u64,
    runs: usize,
    telemetry: &Telemetry,
) -> MultiRunSummary {
    assert!(runs > 0, "need at least one run");
    let results: Vec<RunResult> = (0..runs as u64)
        .map(|i| run_scenario_with_telemetry(scenario, kind, base_seed + i, telemetry))
        .collect();
    MultiRunSummary::from_runs(results)
}

/// Run `runs` seeded simulations in parallel (seeds `base_seed..base_seed +
/// runs`) and aggregate. The paper runs each experiment 5 times and reports
/// the average with a 95% confidence interval.
pub fn run_scenario_multi(
    scenario: &ScenarioConfig,
    kind: ReputationKind,
    base_seed: u64,
    runs: usize,
) -> MultiRunSummary {
    assert!(runs > 0, "need at least one run");
    let results: Vec<RunResult> = (0..runs as u64)
        .into_par_iter()
        .map(|i| run_scenario(scenario, kind, base_seed + i))
        .collect();
    MultiRunSummary::from_runs(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collusion::CollusionModel;

    #[test]
    fn kinds_display_names() {
        assert_eq!(ReputationKind::EigenTrust.to_string(), "EigenTrust");
        assert_eq!(
            ReputationKind::EBayWithSocialTrust.to_string(),
            "eBay+SocialTrust"
        );
        assert!(ReputationKind::EigenTrustWithSocialTrust.has_socialtrust());
        assert!(!ReputationKind::EBay.has_socialtrust());
    }

    #[test]
    fn run_scenario_is_reproducible() {
        let s = ScenarioConfig::small().with_cycles(3);
        let r1 = run_scenario(&s, ReputationKind::EigenTrust, 42);
        let r2 = run_scenario(&s, ReputationKind::EigenTrust, 42);
        assert_eq!(r1.final_summary, r2.final_summary);
    }

    #[test]
    fn multi_run_aggregates_across_seeds() {
        let s = ScenarioConfig::small().with_cycles(3);
        let m = run_scenario_multi(&s, ReputationKind::EBay, 1, 3);
        assert_eq!(m.runs.len(), 3);
        assert_eq!(m.mean_reputation.len(), s.nodes);
        // Seeds differ ⇒ at least some CI half-widths are positive.
        assert!(m.ci95_reputation.iter().any(|&c| c > 0.0));
    }

    #[test]
    fn socialtrust_kinds_flag_suspicions_under_collusion() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_cycles(5);
        let r = run_scenario(&s, ReputationKind::EigenTrustWithSocialTrust, 7);
        assert!(
            r.suspicions_flagged > 0,
            "SocialTrust must flag the colluding pairs"
        );
        assert!(r.ratings_adjusted > 0);
    }

    #[test]
    fn plain_kinds_report_zero_adjustments() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_cycles(3);
        let r = run_scenario(&s, ReputationKind::EigenTrust, 7);
        assert_eq!(r.suspicions_flagged, 0);
        assert_eq!(r.ratings_adjusted, 0);
    }

    #[test]
    fn falsified_scenario_selects_hardened_config() {
        let s = ScenarioConfig::small().with_falsified_social_info(true);
        let cfg = socialtrust_config_for(&s);
        assert!(cfg.weighted_similarity);
        assert!(cfg.closeness.weighted_relationships);
        let cfg_plain = socialtrust_config_for(&ScenarioConfig::small());
        assert!(!cfg_plain.weighted_similarity);
    }

    #[test]
    fn telemetry_run_is_result_identical_and_populates_registry() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::PairWise)
            .with_cycles(3);
        let plain = run_scenario(&s, ReputationKind::EigenTrustWithSocialTrust, 7);
        let telemetry = Telemetry::new();
        let instrumented = run_scenario_with_telemetry(
            &s,
            ReputationKind::EigenTrustWithSocialTrust,
            7,
            &telemetry,
        );
        assert_eq!(plain.final_summary, instrumented.final_summary);
        assert_eq!(plain.requests_total, instrumented.requests_total);

        let snap = telemetry.registry().snapshot();
        // Per-cycle spans: one observation per simulation cycle.
        for name in [
            "sim_cycle_seconds",
            "sim_query_phase_seconds",
            "sim_update_phase_seconds",
        ] {
            assert_eq!(
                snap.histogram(name).expect(name).count,
                s.sim_cycles as u64,
                "{name}"
            );
        }
        // Cache counters re-homed onto the registry match the run delta
        // (this world's context is fresh, so delta == totals).
        assert_eq!(snap.counter("cache_hits_total"), instrumented.cache.hits);
        assert_eq!(
            snap.counter("cache_misses_total"),
            instrumented.cache.misses
        );
        // Detector and EigenTrust layers flow into the same registry.
        assert!(snap.counter("detector_suspicions_total") > 0);
        assert!(snap.gauge("eigentrust_iterations").is_some());
        // Per-cycle records surfaced in the result.
        assert_eq!(instrumented.convergence.len(), s.sim_cycles);
        assert!(instrumented.final_convergence().is_some());
        assert_eq!(instrumented.per_cycle_cache.len(), s.sim_cycles);
        let summed = instrumented.per_cycle_cache.iter().fold(
            socialtrust_socnet::cache::CacheStats::default(),
            |acc, &c| acc.merged(c),
        );
        assert_eq!(summed, instrumented.cache);
    }

    #[test]
    fn multi_run_with_telemetry_aggregates() {
        let s = ScenarioConfig::small().with_cycles(2);
        let telemetry = Telemetry::new();
        let m = run_scenario_multi_with_telemetry(&s, ReputationKind::EigenTrust, 1, 2, &telemetry);
        assert_eq!(m.runs.len(), 2);
        let snap = telemetry.registry().snapshot();
        // 2 runs × 2 cycles = 4 cycle spans on the shared registry.
        assert_eq!(snap.histogram("sim_cycle_seconds").unwrap().count, 4);
        assert!(m.final_convergence_stats().is_some());
    }

    #[test]
    fn distributed_kind_matches_centralized_results() {
        let s = ScenarioConfig::small()
            .with_collusion(CollusionModel::MultiMutual)
            .with_cycles(4);
        let central = run_scenario(&s, ReputationKind::EigenTrustWithSocialTrust, 11);
        let distributed =
            run_scenario(&s, ReputationKind::EigenTrustWithSocialTrustDistributed, 11);
        assert_eq!(central.final_summary, distributed.final_summary);
    }
}
