//! Property-based tests for the simulator crate (world construction and
//! collusion-plan invariants; the engine-level properties live in the
//! workspace-level `tests/cross_crate_properties.rs`).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use socialtrust_sim::build::SimWorld;
use socialtrust_sim::collusion::{CollusionModel, CollusionPlan};
use socialtrust_sim::scenario::ScenarioConfig;
use socialtrust_socnet::distance::distances_from;
use socialtrust_socnet::NodeId;

fn scenario(model_idx: usize, compromised: usize) -> ScenarioConfig {
    let model = [
        CollusionModel::None,
        CollusionModel::PairWise,
        CollusionModel::MultiNode,
        CollusionModel::MultiMutual,
        CollusionModel::NegativeCampaign,
    ][model_idx];
    ScenarioConfig::small()
        .with_collusion(model)
        .with_compromised_pretrusted(compromised)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collusion_plans_are_well_formed(
        model_idx in 0usize..5,
        compromised in 0usize..3,
        seed in 0u64..100,
    ) {
        let s = scenario(model_idx, compromised);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let plan = CollusionPlan::build(&s, &mut rng);
        for e in &plan.edges {
            prop_assert!(e.rater != e.ratee, "no self-boost edges");
            prop_assert!(e.rate > 0);
            prop_assert!(e.value == 1.0 || e.value == -1.0);
            // Raters are colluders or compromised pretrusted nodes.
            prop_assert!(
                s.is_colluder(e.rater) || plan.compromised.contains(&e.rater)
                    || plan.compromised.contains(&e.ratee),
                "edge {:?} has an unexpected rater", e
            );
        }
        prop_assert_eq!(plan.compromised.len(), compromised);
        for &v in &plan.victims {
            prop_assert!(!s.is_colluder(v) && !s.is_pretrusted(v));
        }
        // Negative campaigns only produce negative edges, boosts only
        // positive ones.
        match s.collusion {
            CollusionModel::NegativeCampaign => {
                prop_assert!(plan
                    .edges
                    .iter()
                    .filter(|e| !plan.compromised.contains(&e.rater)
                        && !plan.compromised.contains(&e.ratee))
                    .all(|e| e.value < 0.0));
            }
            CollusionModel::None => {
                prop_assert_eq!(
                    plan.edges.len(),
                    compromised * 2,
                    "only compromised-pretrusted edges"
                );
            }
            _ => {}
        }
    }

    #[test]
    fn worlds_are_structurally_consistent(
        model_idx in 0usize..5,
        seed in 0u64..60,
    ) {
        let s = scenario(model_idx, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = SimWorld::build(&s, &mut rng);
        prop_assert_eq!(w.node_count(), s.nodes);
        // Overlay neighbors only cover interests the node declares, and
        // all point at actual providers.
        for i in 0..s.nodes {
            for (l, neigh) in w.neighbors[i].iter().enumerate() {
                if !w.interests[i].contains(socialtrust_socnet::interest::InterestId(l as u16)) {
                    prop_assert!(neigh.is_empty());
                }
                for &p in neigh {
                    prop_assert!(p != NodeId::from(i), "no self-links");
                    prop_assert!(w.providers[l].contains(&p));
                    prop_assert!(neigh.len() <= s.overlay_per_interest);
                }
            }
        }
        // Social graph stays connected enough for closeness to exist:
        // every node reaches node 0 (builder guarantees a connected
        // backbone; colluder rewiring never removes backbone edges other
        // than the pair edge itself).
        let ctx = w.ctx.read();
        let d = distances_from(ctx.graph(), NodeId(0), None);
        let reachable = d.iter().filter(|x| x.is_some()).count();
        prop_assert!(
            reachable >= s.nodes - s.colluder_count,
            "only colluder rewiring may disconnect a handful of nodes: {reachable}"
        );
    }

    #[test]
    fn oscillation_schedule_has_expected_duty_cycle(period in 2usize..12) {
        let s = ScenarioConfig::small().with_oscillation(period);
        let active: usize = (0..period).filter(|&c| s.collusion_active_in_cycle(c)).count();
        prop_assert_eq!(active, period / 2);
        // And the schedule repeats.
        for c in 0..period {
            prop_assert_eq!(
                s.collusion_active_in_cycle(c),
                s.collusion_active_in_cycle(c + period)
            );
        }
    }

    #[test]
    fn behavior_range_draws_stay_in_range(seed in 0u64..30) {
        let s = ScenarioConfig::small().with_colluder_behavior_range((0.2, 0.6));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = SimWorld::build(&s, &mut rng);
        for c in s.colluder_ids() {
            prop_assert!((0.2..=0.6).contains(&w.behavior[c.index()]));
        }
        for n in s.normal_ids() {
            prop_assert_eq!(w.behavior[n.index()], s.normal_behavior);
        }
    }
}
