//! Property-based tests for the social-network substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use socialtrust_socnet::builder::{connected_random_graph, random_interests};
use socialtrust_socnet::cache::SocialCoefficientCache;
use socialtrust_socnet::closeness::{closeness_for_pairs, ClosenessConfig, ClosenessModel};
use socialtrust_socnet::distance::{bfs_distance, distances_from};
use socialtrust_socnet::interaction::InteractionTracker;
use socialtrust_socnet::interest::{
    similarity, weighted_similarity, InterestId, InterestProfile, InterestSet,
};
use socialtrust_socnet::relationship::{weighted_relationship_sum, Relationship, RelationshipKind};
use socialtrust_socnet::snapshot::SnapshotStore;
use socialtrust_socnet::NodeId;

fn interest_set_strategy() -> impl Strategy<Value = InterestSet> {
    proptest::collection::vec(0u16..30, 0..12).prop_map(InterestSet::from_ids)
}

fn profile_strategy() -> impl Strategy<Value = InterestProfile> {
    (
        interest_set_strategy(),
        proptest::collection::vec((0u16..30, 1u64..50), 0..10),
    )
        .prop_map(|(set, reqs)| {
            let mut p = InterestProfile::new(set);
            for (cat, count) in reqs {
                p.record_requests(InterestId(cat), count);
            }
            p
        })
}

/// A random graph + interaction environment generated from a seed, so that
/// proptest shrinks over a single u64.
fn env(seed: u64, n: usize) -> (socialtrust_socnet::graph::SocialGraph, InteractionTracker) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = connected_random_graph(n, 4.0, (1, 2), &mut rng);
    let mut t = InteractionTracker::new(n);
    use rand::Rng;
    for _ in 0..(n * 4) {
        let a = NodeId::from(rng.gen_range(0..n));
        let b = NodeId::from(rng.gen_range(0..n));
        if a != b {
            t.record(a, b, rng.gen_range(1..10) as f64);
        }
    }
    (g, t)
}

proptest! {
    #[test]
    fn similarity_is_bounded_and_symmetric(a in interest_set_strategy(), b in interest_set_strategy()) {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, similarity(&b, &a));
    }

    #[test]
    fn similarity_with_self_is_one_or_zero(a in interest_set_strategy()) {
        let s = similarity(&a, &a);
        if a.is_empty() {
            prop_assert_eq!(s, 0.0);
        } else {
            prop_assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn weighted_similarity_is_bounded(a in profile_strategy(), b in profile_strategy()) {
        let s = weighted_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "out of bounds: {}", s);
    }

    #[test]
    fn intersection_size_bounded_by_min(a in interest_set_strategy(), b in interest_set_strategy()) {
        let i = a.intersection_size(&b);
        prop_assert!(i <= a.len().min(b.len()));
        prop_assert_eq!(i, b.intersection_size(&a));
    }

    #[test]
    fn union_size_is_inclusion_exclusion(a in interest_set_strategy(), b in interest_set_strategy()) {
        let u = a.union(&b);
        prop_assert_eq!(u.len(), a.len() + b.len() - a.intersection_size(&b));
    }

    #[test]
    fn weighted_rel_sum_bounded_by_count(
        weights in proptest::collection::vec(0.01f64..=1.0, 0..8),
        lambda in 0.5f64..=1.0,
    ) {
        let rels: Vec<Relationship> = weights
            .iter()
            .map(|&w| Relationship::with_weight(RelationshipKind::Other, w))
            .collect();
        let s = weighted_relationship_sum(&rels, lambda);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= rels.len() as f64 + 1e-9);
    }

    #[test]
    fn weighted_rel_sum_monotone_in_lambda(
        weights in proptest::collection::vec(0.01f64..=1.0, 1..8),
    ) {
        let rels: Vec<Relationship> = weights
            .iter()
            .map(|&w| Relationship::with_weight(RelationshipKind::Other, w))
            .collect();
        let lo = weighted_relationship_sum(&rels, 0.5);
        let hi = weighted_relationship_sum(&rels, 1.0);
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn bfs_distance_is_a_metric_on_connected_graphs(seed in 0u64..500, n in 2usize..40) {
        let (g, _) = env(seed, n);
        let a = NodeId(0);
        let b = NodeId((n as u32) / 2);
        let c = NodeId(n as u32 - 1);
        let dab = bfs_distance(&g, a, b, None).expect("connected");
        let dba = bfs_distance(&g, b, a, None).expect("connected");
        prop_assert_eq!(dab, dba, "symmetry");
        let dac = bfs_distance(&g, a, c, None).expect("connected");
        let dbc = bfs_distance(&g, b, c, None).expect("connected");
        prop_assert!(dac <= dab + dbc, "triangle inequality");
        prop_assert_eq!(bfs_distance(&g, a, a, None), Some(0));
    }

    #[test]
    fn distances_from_consistent_with_pairwise(seed in 0u64..200, n in 2usize..25) {
        let (g, _) = env(seed, n);
        let d = distances_from(&g, NodeId(0), None);
        for (v, &dist) in d.iter().enumerate().take(n) {
            prop_assert_eq!(dist, bfs_distance(&g, NodeId(0), NodeId::from(v), None));
        }
    }

    #[test]
    fn closeness_is_nonnegative_and_finite(seed in 0u64..300, n in 2usize..30) {
        let (g, t) = env(seed, n);
        let m = ClosenessModel::new(&g, &t, ClosenessConfig::default());
        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                let c = m.closeness(NodeId::from(i), NodeId::from(j));
                prop_assert!(c.is_finite());
                prop_assert!(c >= 0.0);
            }
        }
    }

    #[test]
    fn weighted_closeness_never_exceeds_unweighted(seed in 0u64..200, n in 2usize..25) {
        // Eq. (10) numerator ≤ m(i,j) because every w ≤ 1 and λ ≤ 1.
        let (g, t) = env(seed, n);
        let plain = ClosenessModel::new(&g, &t, ClosenessConfig::default());
        let weighted = ClosenessModel::new(&g, &t, ClosenessConfig::weighted(0.8));
        for i in 0..n.min(5) {
            for j in 0..n.min(5) {
                if i == j { continue; }
                let (a, b) = (NodeId::from(i), NodeId::from(j));
                if g.are_adjacent(a, b) {
                    prop_assert!(
                        weighted.adjacent_closeness(a, b) <= plain.adjacent_closeness(a, b) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn random_interests_within_bounds(seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sets = random_interests(50, 20, (1, 10), &mut rng);
        for s in sets {
            prop_assert!((1..=10).contains(&s.len()));
        }
    }

    #[test]
    fn builder_graphs_are_connected(seed in 0u64..100, n in 1usize..60) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_random_graph(n, 4.0, (1, 2), &mut rng);
        let d = distances_from(&g, NodeId(0), None);
        prop_assert!(d.iter().all(|x| x.is_some()));
    }

    #[test]
    fn cached_closeness_matches_uncached_bit_for_bit(
        seed in 0u64..300,
        n in 2usize..25,
        weighted in proptest::bool::ANY,
    ) {
        let (g, t) = env(seed, n);
        let config = if weighted {
            ClosenessConfig::weighted(0.8)
        } else {
            ClosenessConfig::default()
        };
        let model = ClosenessModel::new(&g, &t, config);
        let cache = SocialCoefficientCache::new();
        let k = n.min(6);
        for i in 0..k {
            for j in 0..k {
                let (a, b) = (NodeId::from(i), NodeId::from(j));
                // Query twice: the first may compute, the second must hit the
                // memo — both must equal the uncached model exactly.
                let fresh = model.closeness(a, b);
                prop_assert_eq!(cache.closeness(&g, &t, config, a, b).to_bits(), fresh.to_bits());
                prop_assert_eq!(cache.closeness(&g, &t, config, a, b).to_bits(), fresh.to_bits());
                if g.are_adjacent(a, b) {
                    prop_assert_eq!(
                        cache.adjacent_closeness(&g, &t, config, a, b).to_bits(),
                        model.adjacent_closeness(a, b).to_bits()
                    );
                }
            }
        }
        // The bulk path must agree with the uncached bulk path too.
        let pairs: Vec<(NodeId, NodeId)> = (0..k)
            .flat_map(|i| (0..k).map(move |j| (NodeId::from(i), NodeId::from(j))))
            .collect();
        let cached = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let uncached = closeness_for_pairs(&g, &t, config, &pairs);
        for (c, u) in cached.iter().zip(&uncached) {
            prop_assert_eq!(c.to_bits(), u.to_bits());
        }
    }

    #[test]
    fn cached_closeness_tracks_random_mutation_sequences(
        seed in 0u64..200,
        n in 3usize..20,
        ops in proptest::collection::vec((0u8..4, 0u64..u64::MAX), 1..20),
    ) {
        let (mut g, mut t) = env(seed, n);
        let config = ClosenessConfig::default();
        let cache = SocialCoefficientCache::new();
        let check = |g: &socialtrust_socnet::graph::SocialGraph,
                     t: &InteractionTracker|
         -> Result<(), TestCaseError> {
            let model = ClosenessModel::new(g, t, config);
            for i in 0..n.min(5) {
                for j in 0..n.min(5) {
                    let (a, b) = (NodeId::from(i), NodeId::from(j));
                    prop_assert_eq!(
                        cache.closeness(g, t, config, a, b).to_bits(),
                        model.closeness(a, b).to_bits()
                    );
                }
            }
            Ok(())
        };
        check(&g, &t)?;
        for (op, raw) in ops {
            let a = NodeId::from((raw % n as u64) as usize);
            let b = NodeId::from(((raw / n as u64) % n as u64) as usize);
            match op {
                0 => {
                    if a != b {
                        g.add_relationship(a, b, Relationship::friendship());
                    }
                }
                1 => {
                    g.remove_edge(a, b);
                }
                2 => {
                    if a != b {
                        t.record(a, b, (raw % 9 + 1) as f64);
                    }
                }
                _ => {
                    t.clear();
                }
            }
            // After every mutation the cache must transparently refresh.
            check(&g, &t)?;
        }
    }

    /// The incremental-invalidation stress test: interleave *sparse*
    /// mutations with queries of single pairs, so most memoized entries sit
    /// unqueried across many dirty-set drains. Any entry the targeted
    /// eviction wrongly retains will be caught stale by the final
    /// full-pair sweep against a fresh `ClosenessModel`.
    #[test]
    fn incremental_cache_matches_fresh_model_under_sparse_interleaving(
        seed in 0u64..200,
        n in 4usize..24,
        weighted in proptest::bool::ANY,
        script in proptest::collection::vec((0u8..6, 0u64..u64::MAX), 1..40),
    ) {
        let (mut g, mut t) = env(seed, n);
        let config = if weighted {
            ClosenessConfig::weighted(0.8)
        } else {
            ClosenessConfig::default()
        };
        let cache = SocialCoefficientCache::new();
        for (op, raw) in script {
            let a = NodeId::from((raw % n as u64) as usize);
            let b = NodeId::from(((raw / n as u64) % n as u64) as usize);
            match op {
                0 if a != b => {
                    g.add_relationship(a, b, Relationship::friendship());
                }
                1 => {
                    g.remove_edge(a, b);
                }
                2 | 3 if a != b => {
                    t.record(a, b, (raw % 7 + 1) as f64);
                }
                // 4 and 5 are pure query steps: no mutation at all.
                _ => {}
            }
            // Query only this step's pair; everything else stays memoized
            // (or gets evicted) without being observed.
            let model = ClosenessModel::new(&g, &t, config);
            prop_assert_eq!(
                cache.closeness(&g, &t, config, a, b).to_bits(),
                model.closeness(a, b).to_bits()
            );
            prop_assert_eq!(
                cache.closeness(&g, &t, config, b, a).to_bits(),
                model.closeness(b, a).to_bits()
            );
        }
        // Final sweep: every pair — including ones last memoized many
        // mutations ago — must agree bit-for-bit with a fresh model.
        let model = ClosenessModel::new(&g, &t, config);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (NodeId::from(i), NodeId::from(j));
                prop_assert_eq!(
                    cache.closeness(&g, &t, config, a, b).to_bits(),
                    model.closeness(a, b).to_bits(),
                    "stale entry for ({}, {})", a, b
                );
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits + stats.misses > 0);
    }

    /// The CSR-snapshot analogue of the incremental-cache stress test:
    /// interleave graph/interaction/profile mutations with epoch-validated
    /// snapshot refreshes, and require every snapshot kernel — closeness
    /// (both directions), plain and weighted interest similarity, the
    /// batched single-source sweep, and the grouped pair kernel — to agree
    /// **bit-for-bit** with the live `ClosenessModel` / `interest` path at
    /// every step. Sparse interaction dirt exercises the row-patch path;
    /// edge mutations exercise the structural full rebuild; profile edits
    /// exercise the interest-table repatch.
    #[test]
    fn snapshot_matches_live_path_under_mutation_interleaving(
        seed in 0u64..200,
        n in 4usize..24,
        weighted in proptest::bool::ANY,
        script in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 1..40),
    ) {
        let (mut g, mut t) = env(seed, n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut profiles: Vec<InterestProfile> =
            socialtrust_socnet::builder::random_interests(n, 25, (1, 8), &mut rng)
                .into_iter()
                .map(InterestProfile::new)
                .collect();
        let mut pv = 0u64;
        let config = if weighted {
            ClosenessConfig::weighted(0.8)
        } else {
            ClosenessConfig::default()
        };
        let store = SnapshotStore::new();
        for (op, raw) in script {
            let a = NodeId::from((raw % n as u64) as usize);
            let b = NodeId::from(((raw / n as u64) % n as u64) as usize);
            let cat = InterestId((raw % 25) as u16);
            match op {
                0 if a != b => {
                    g.add_relationship(a, b, Relationship::friendship());
                }
                1 => {
                    g.remove_edge(a, b);
                }
                2 | 3 if a != b => {
                    t.record(a, b, (raw % 7 + 1) as f64);
                }
                4 => {
                    profiles[a.index()].record_requests(cat, raw % 9 + 1);
                    pv += 1;
                }
                5 => {
                    let declared = profiles[a.index()].declared_mut();
                    if raw % 2 == 0 {
                        declared.insert(cat);
                    } else {
                        declared.remove(cat);
                    }
                    pv += 1;
                }
                // 6 and 7 are pure query steps: no mutation at all.
                _ => {}
            }
            let snap = store.snapshot(&g, &t, &profiles, pv, config);
            let model = ClosenessModel::new(&g, &t, config);
            prop_assert_eq!(
                snap.closeness(a, b).to_bits(),
                model.closeness(a, b).to_bits(),
                "closeness({}, {}) diverged after op {}", a, b, op
            );
            prop_assert_eq!(
                snap.closeness(b, a).to_bits(),
                model.closeness(b, a).to_bits()
            );
            prop_assert_eq!(
                snap.similarity(a, b).to_bits(),
                similarity(profiles[a.index()].declared(), profiles[b.index()].declared())
                    .to_bits()
            );
            prop_assert_eq!(
                snap.weighted_similarity(a, b).to_bits(),
                weighted_similarity(&profiles[a.index()], &profiles[b.index()]).to_bits()
            );
        }
        // Final sweep: the refreshed snapshot — whatever mix of patches and
        // rebuilds produced it — must agree with a fresh model everywhere,
        // through every kernel.
        let snap = store.snapshot(&g, &t, &profiles, pv, config);
        let model = ClosenessModel::new(&g, &t, config);
        let targets: Vec<NodeId> = (0..n).map(NodeId::from).collect();
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (NodeId::from(i), NodeId::from(j))))
            .collect();
        let bulk = snap.closeness_for_pairs(&pairs);
        for i in 0..n {
            let batched = snap.closeness_to_all(NodeId::from(i), &targets);
            for j in 0..n {
                let (a, b) = (NodeId::from(i), NodeId::from(j));
                let fresh = model.closeness(a, b);
                prop_assert_eq!(
                    snap.closeness(a, b).to_bits(),
                    fresh.to_bits(),
                    "stale snapshot closeness for ({}, {})", a, b
                );
                prop_assert_eq!(batched[j].to_bits(), fresh.to_bits());
                prop_assert_eq!(bulk[i * n + j].to_bits(), fresh.to_bits());
                prop_assert_eq!(
                    snap.similarity(a, b).to_bits(),
                    similarity(profiles[i].declared(), profiles[j].declared()).to_bits()
                );
                prop_assert_eq!(
                    snap.weighted_similarity(a, b).to_bits(),
                    weighted_similarity(&profiles[i], &profiles[j]).to_bits()
                );
            }
        }
        let (rebuilds, _patches) = store.stats();
        prop_assert!(rebuilds >= 1);
    }

    /// Shard-count transparency: stores pinned to P ∈ {1, 2, 8} shards must
    /// produce snapshots that agree **bit-for-bit** with the
    /// auto-partitioned store through every kernel, at every step of a
    /// random mutation/refresh interleaving. Sparse interaction dirt
    /// exercises the per-shard row patch, edge mutations the
    /// dirty-shard-only rebuild, and profile edits the shared interest
    /// tables — none of which may leak shard boundaries into results.
    #[test]
    fn sharded_snapshot_is_bit_for_bit_equal_to_unsharded(
        seed in 0u64..150,
        n in 4usize..24,
        weighted in proptest::bool::ANY,
        script in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 1..30),
    ) {
        let (mut g, mut t) = env(seed, n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a4d);
        let profiles: Vec<InterestProfile> =
            socialtrust_socnet::builder::random_interests(n, 25, (1, 8), &mut rng)
                .into_iter()
                .map(InterestProfile::new)
                .collect();
        let mut pv = 0u64;
        let config = if weighted {
            ClosenessConfig::weighted(0.8)
        } else {
            ClosenessConfig::default()
        };
        let baseline = SnapshotStore::new();
        let sharded: Vec<SnapshotStore> =
            [1, 2, 8].iter().map(|&p| SnapshotStore::with_shards(p)).collect();
        for (op, raw) in script {
            let a = NodeId::from((raw % n as u64) as usize);
            let b = NodeId::from(((raw / n as u64) % n as u64) as usize);
            match op {
                0 if a != b => {
                    g.add_relationship(a, b, Relationship::friendship());
                }
                1 => {
                    g.remove_edge(a, b);
                }
                2 | 3 if a != b => {
                    t.record(a, b, (raw % 7 + 1) as f64);
                }
                4 | 5 => {
                    pv += 1;
                }
                // 6 and 7 are pure query steps: no mutation at all.
                _ => {}
            }
            let base = baseline.snapshot(&g, &t, &profiles, pv, config);
            for store in &sharded {
                let snap = store.snapshot(&g, &t, &profiles, pv, config);
                prop_assert_eq!(
                    snap.closeness(a, b).to_bits(),
                    base.closeness(a, b).to_bits(),
                    "closeness({}, {}) diverged at P={} after op {}",
                    a, b, snap.shard_count(), op
                );
                prop_assert_eq!(
                    snap.closeness(b, a).to_bits(),
                    base.closeness(b, a).to_bits()
                );
            }
        }
        // Final sweep: every pair, every kernel, every shard count.
        let base = baseline.snapshot(&g, &t, &profiles, pv, config);
        let targets: Vec<NodeId> = (0..n).map(NodeId::from).collect();
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (NodeId::from(i), NodeId::from(j))))
            .collect();
        let base_bulk = base.closeness_for_pairs(&pairs);
        for store in &sharded {
            let snap = store.snapshot(&g, &t, &profiles, pv, config);
            prop_assert_eq!(snap.node_count(), base.node_count());
            let bulk = snap.closeness_for_pairs(&pairs);
            for i in 0..n {
                let batched = snap.closeness_to_all(NodeId::from(i), &targets);
                for j in 0..n {
                    let (a, b) = (NodeId::from(i), NodeId::from(j));
                    prop_assert_eq!(
                        snap.closeness(a, b).to_bits(),
                        base.closeness(a, b).to_bits(),
                        "P={} closeness({}, {})", snap.shard_count(), a, b
                    );
                    prop_assert_eq!(batched[j].to_bits(), base.closeness(a, b).to_bits());
                    prop_assert_eq!(bulk[i * n + j].to_bits(), base_bulk[i * n + j].to_bits());
                    prop_assert_eq!(
                        snap.similarity(a, b).to_bits(),
                        base.similarity(a, b).to_bits()
                    );
                    prop_assert_eq!(
                        snap.weighted_similarity(a, b).to_bits(),
                        base.weighted_similarity(a, b).to_bits()
                    );
                    prop_assert_eq!(
                        snap.interest_similarity(a, b, weighted).to_bits(),
                        base.interest_similarity(a, b, weighted).to_bits()
                    );
                }
            }
        }
    }
}
