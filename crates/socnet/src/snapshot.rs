//! Immutable, epoch-stamped CSR snapshot of the social substrate, with
//! batched single-source closeness kernels and bitset interest similarity.
//!
//! The detection pipeline and the Gaussian rescaling layer are
//! read-dominated: each cycle evaluates `Ωc(i,j)` and `Ωs(i,j)` for
//! thousands of (rater, ratee) pairs against a graph that mutates only
//! sparsely between cycles. Serving those reads straight from
//! [`SocialGraph`] means pointer-chasing `Vec<Vec<NodeId>>` adjacency, a
//! `BTreeMap` probe per interaction frequency, and one full BFS per
//! non-adjacent pair. [`GraphSnapshot`] freezes everything the closeness
//! and similarity equations consume into flat arrays:
//!
//! * **CSR adjacency** — `offsets`/`neighbors` with *edge-parallel* arrays:
//!   the interaction frequency `f(i,j)` and the Eq. (2)/(10) relationship
//!   numerator per edge slot, plus the per-node denominator
//!   `Σ_{k∈S_i} f(i,k)`. Adjacent closeness becomes one multiply-divide;
//!   common friends (Eq. (3)) an allocation-free sorted-slice intersection.
//! * **Batched Eq. (4)** — one capped BFS per rater serves *all* of its
//!   path-fallback ratees from a single traversal
//!   ([`GraphSnapshot::closeness_to_all`]), on reusable
//!   [`BfsScratch`](crate::distance::BfsScratch) buffers.
//! * **Interned interest bitsets** — fixed-width `u64` blocks per node;
//!   Eq. (1)/(7) overlap is AND + popcount, Eq. (11) walks the AND mask's
//!   set bits against per-node request-weight rows.
//!
//! Every kernel reproduces the corresponding live-path computation
//! **bit-for-bit** (same floating-point evaluation order as
//! [`ClosenessModel`](crate::closeness::ClosenessModel) and the
//! [`crate::interest`] free functions); the property tests in
//! `tests/properties.rs` drive random mutation/rebuild interleavings to
//! prove it.
//!
//! # Epoch semantics and refresh
//!
//! A snapshot is stamped with the graph epoch, interaction epoch, and a
//! caller-supplied profiles version, plus the [`ClosenessConfig`] whose
//! numerators are baked into its edge slots. [`SnapshotStore`] keeps the
//! most recent snapshot and refreshes it from
//! [`DirtyLog::changes_since`](crate::dirty::DirtyLog::changes_since)
//! deltas: interaction-only dirt patches just the dirty rows' frequency
//! slots and denominators; any structural change (edge add/remove,
//! whole-state reset) or config switch forces a full rebuild (and emits a
//! `snapshot_rebuild` telemetry event carrying the dirty-node count).
//! Consumers that hold one `Arc<GraphSnapshot>` for a whole cycle are
//! guaranteed a frozen, mutually consistent view — no lock traffic, no
//! mid-cycle epoch drift.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use socialtrust_telemetry::{Counter, Event, EventSink, Histogram, Telemetry};

use crate::closeness::ClosenessConfig;
use crate::dirty::DirtyDelta;
use crate::distance::{with_thread_scratch, BfsScratch};
use crate::graph::SocialGraph;
use crate::interaction::InteractionTracker;
use crate::interest::InterestProfile;
use crate::relationship::weighted_relationship_sum;
use crate::NodeId;

/// An immutable CSR view of graph + interactions + interest profiles,
/// valid for (and stamped with) one epoch triple and one
/// [`ClosenessConfig`].
///
/// Build one with [`GraphSnapshot::build`], or let a [`SnapshotStore`]
/// manage refreshes. All query methods take `&self` and are safe to share
/// across rayon workers (`Arc<GraphSnapshot>` is `Send + Sync`).
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph_epoch: u64,
    interaction_epoch: u64,
    profiles_version: u64,
    config: ClosenessConfig,
    /// Number of nodes (CSR rows).
    n: usize,

    /// CSR row boundaries: node `i`'s neighbors live in slots
    /// `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// Neighbor ids per slot, ascending within each row (mirrors
    /// [`SocialGraph::neighbors`] order, which the equations' sums follow).
    neighbors: Vec<u32>,
    /// Edge-parallel `f(i, neighbors[slot])`.
    freq: Vec<f64>,
    /// Edge-parallel Eq. (2)/(10) numerator for the owning row's direction
    /// (relationship count, or the λ-decayed weighted sum floored at 1).
    /// Relationships are per-edge, so the value is identical for both
    /// directions, but it is stored per slot to keep the kernels branchless.
    numerator: Vec<f64>,
    /// `Σ_{k ∈ S_i} f(i,k)` per node — the Eq. (2)/(10) denominator,
    /// accumulated over the row in neighbor order.
    friend_total: Vec<f64>,

    /// Width of each interest bitset row, in `u64` words.
    words: usize,
    /// Declared interest bitsets, `n × words` (Eq. (1)/(7)).
    declared_bits: Vec<u64>,
    /// Effective (declared ∪ requested) interest bitsets, `n × words`
    /// (Eq. (11)).
    effective_bits: Vec<u64>,
    /// `|Vi|` of the declared set per node.
    declared_len: Vec<u32>,
    /// CSR row boundaries into `eff_ids`/`eff_weights`.
    eff_offsets: Vec<u32>,
    /// Effective-set category ids per node, ascending.
    eff_ids: Vec<u16>,
    /// Request weight `ws(i,l)` parallel to `eff_ids`.
    eff_weights: Vec<f64>,
}

/// What a [`SnapshotStore`] refresh did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The previous snapshot's CSR structure was reused; only the dirty
    /// rows' frequency slots / denominators (and, on a profiles-version
    /// bump, the interest tables) were recomputed.
    Patched {
        /// Number of CSR rows whose interaction slots were repatched.
        rows: usize,
    },
    /// A full rebuild. `structural_dirty` is `Some(count)` when a
    /// structural flush (edge add/remove or whole-state graph reset)
    /// forced it, carrying the dirty-node count the log reported — this is
    /// the case that emits an [`Event::SnapshotRebuild`].
    Rebuilt {
        /// Dirty-node count when the rebuild was forced by graph
        /// structure; `None` for config switches and interaction resets.
        structural_dirty: Option<usize>,
    },
}

impl GraphSnapshot {
    /// Build a snapshot of the current state of `graph`, `interactions`,
    /// and `profiles`, baking in `config`'s Eq. (2)/(10) numerators.
    ///
    /// `profiles_version` is a caller-maintained counter stamped into the
    /// snapshot (interest profiles carry no dirty log of their own); bump
    /// it on every profile mutation so [`SnapshotStore`] can detect
    /// staleness.
    pub fn build(
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> GraphSnapshot {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut freq = Vec::new();
        let mut numerator = Vec::new();
        let mut friend_total = Vec::with_capacity(n);
        offsets.push(0u32);
        for i in 0..n {
            let v = NodeId::from(i);
            let mut total = 0.0;
            for &w in graph.neighbors(v) {
                let f = interactions.frequency(v, w);
                neighbors.push(w.0);
                freq.push(f);
                numerator.push(edge_numerator(graph.relationships(v, w), config));
                total += f;
            }
            friend_total.push(total);
            offsets.push(neighbors.len() as u32);
        }
        let mut snapshot = GraphSnapshot {
            graph_epoch: graph.epoch(),
            interaction_epoch: interactions.epoch(),
            profiles_version,
            config,
            n,
            offsets,
            neighbors,
            freq,
            numerator,
            friend_total,
            words: 0,
            declared_bits: Vec::new(),
            effective_bits: Vec::new(),
            declared_len: Vec::new(),
            eff_offsets: Vec::new(),
            eff_ids: Vec::new(),
            eff_weights: Vec::new(),
        };
        snapshot.rebuild_interest(profiles);
        snapshot
    }

    /// Produce an up-to-date snapshot from `prev`, patching dirty CSR rows
    /// in place when the deltas allow it and rebuilding from scratch
    /// otherwise. Returns the new snapshot and what was done. The caller is
    /// responsible for having checked [`GraphSnapshot::is_fresh`] first
    /// (refreshing a fresh snapshot performs a pointless copy).
    pub fn refreshed(
        prev: &GraphSnapshot,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> (GraphSnapshot, RefreshOutcome) {
        let rebuild = |structural_dirty: Option<usize>| {
            (
                GraphSnapshot::build(graph, interactions, profiles, profiles_version, config),
                RefreshOutcome::Rebuilt { structural_dirty },
            )
        };
        if config_key(prev.config) != config_key(config) {
            return rebuild(None);
        }
        let graph_delta = graph.changes_since(prev.graph_epoch);
        match &graph_delta {
            DirtyDelta::Full => return rebuild(Some(graph.node_count())),
            DirtyDelta::Sparse {
                nodes,
                structural: true,
            } => return rebuild(Some(nodes.len())),
            // Non-structural graph dirt is node *addition* only; anything
            // claiming to have touched a pre-existing row non-structurally
            // is outside the patch contract, so fall back to a rebuild.
            DirtyDelta::Sparse { nodes, .. } if nodes.iter().any(|v| v.index() < prev.n) => {
                return rebuild(None);
            }
            _ => {}
        }
        let inter_delta = interactions.changes_since(prev.interaction_epoch);
        if matches!(inter_delta, DirtyDelta::Full) {
            return rebuild(None);
        }
        let inter_nodes = match inter_delta {
            DirtyDelta::Sparse { nodes, .. } => nodes,
            _ => Vec::new(),
        };

        let mut next = prev.clone();
        let n = graph.node_count();
        let grew = n > next.n;
        if grew {
            // New nodes arrive isolated (edge additions are structural), so
            // their CSR rows are empty.
            let end = *next.offsets.last().expect("offsets never empty");
            next.offsets.resize(n + 1, end);
            next.friend_total.resize(n, 0.0);
            next.n = n;
        }
        let mut rows = 0usize;
        for &v in &inter_nodes {
            let i = v.index();
            if i >= next.n {
                continue; // tracker covers more nodes than the graph
            }
            let (start, end) = (next.offsets[i] as usize, next.offsets[i + 1] as usize);
            let mut total = 0.0;
            for slot in start..end {
                let f = interactions.frequency(v, NodeId(next.neighbors[slot]));
                next.freq[slot] = f;
                total += f;
            }
            next.friend_total[i] = total;
            rows += 1;
        }
        if grew || profiles_version != next.profiles_version {
            next.rebuild_interest(profiles);
            next.profiles_version = profiles_version;
        }
        next.graph_epoch = graph.epoch();
        next.interaction_epoch = interactions.epoch();
        (next, RefreshOutcome::Patched { rows })
    }

    /// Rebuild the interned interest tables (bitsets, lengths, and
    /// request-weight rows) from `profiles`. Nodes past `profiles.len()`
    /// get empty rows.
    fn rebuild_interest(&mut self, profiles: &[InterestProfile]) {
        let n = self.n;
        self.declared_len.clear();
        self.eff_offsets.clear();
        self.eff_ids.clear();
        self.eff_weights.clear();
        self.eff_offsets.push(0);
        let mut universe = 0usize;
        for i in 0..n {
            match profiles.get(i) {
                Some(p) => {
                    for (id, w) in p.effective_weights() {
                        self.eff_ids.push(id.0);
                        self.eff_weights.push(w);
                        universe = universe.max(id.0 as usize + 1);
                    }
                    self.declared_len.push(p.declared().len() as u32);
                }
                None => self.declared_len.push(0),
            }
            self.eff_offsets.push(self.eff_ids.len() as u32);
        }
        let words = universe.div_ceil(64);
        self.words = words;
        self.declared_bits.clear();
        self.declared_bits.resize(n * words, 0);
        self.effective_bits.clear();
        self.effective_bits.resize(n * words, 0);
        for i in 0..n {
            if let Some(p) = profiles.get(i) {
                for id in p.declared().as_slice() {
                    self.declared_bits[i * words + (id.0 as usize >> 6)] |= 1u64 << (id.0 & 63);
                }
            }
            let (start, end) = (
                self.eff_offsets[i] as usize,
                self.eff_offsets[i + 1] as usize,
            );
            for &id in &self.eff_ids[start..end] {
                self.effective_bits[i * words + (id as usize >> 6)] |= 1u64 << (id & 63);
            }
        }
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The `(graph, interaction, profiles)` epoch triple the snapshot was
    /// built at.
    pub fn epochs(&self) -> (u64, u64, u64) {
        (
            self.graph_epoch,
            self.interaction_epoch,
            self.profiles_version,
        )
    }

    /// The configuration whose numerators are baked into the edge slots.
    pub fn config(&self) -> ClosenessConfig {
        self.config
    }

    /// Whether the snapshot still reflects the live structures (and would
    /// serve `config` — a snapshot answers only for the config it was
    /// built with).
    pub fn is_fresh(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> bool {
        self.graph_epoch == graph.epoch()
            && self.interaction_epoch == interactions.epoch()
            && self.profiles_version == profiles_version
            && config_key(self.config) == config_key(config)
    }

    /// The CSR neighbor row of node `i` (ascending ids).
    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Global slot index of edge `i → j`, if adjacent.
    #[inline]
    fn slot(&self, i: usize, j: u32) -> Option<usize> {
        let start = self.offsets[i] as usize;
        self.row(i).binary_search(&j).ok().map(|p| start + p)
    }

    /// Eq. (2)/(10) value for the edge at `slot` of row `i`.
    #[inline]
    fn adjacent_at(&self, i: usize, slot: usize) -> f64 {
        let total = self.friend_total[i];
        if total <= 0.0 {
            return 0.0;
        }
        self.numerator[slot] * self.freq[slot] / total
    }

    /// Closeness between *adjacent* nodes — Eq. (2)/(10). `0.0` when not
    /// adjacent. Bit-for-bit equal to
    /// [`ClosenessModel::adjacent_closeness`](crate::closeness::ClosenessModel::adjacent_closeness).
    pub fn adjacent_closeness(&self, i: NodeId, j: NodeId) -> f64 {
        match self.slot(i.index(), j.0) {
            Some(slot) => self.adjacent_at(i.index(), slot),
            None => 0.0,
        }
    }

    /// `Ωc(i,i)`: the maximum adjacent closeness of `i` (matches the
    /// live model's self-closeness convention).
    fn self_closeness(&self, i: usize) -> f64 {
        let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        let mut best = 0.0f64;
        for slot in start..end {
            best = f64::max(best, self.adjacent_at(i, slot));
        }
        best
    }

    /// The Eq. (3) common-friend sum, or `None` when the rows share no
    /// common friend. Allocation-free sorted-slice intersection over the
    /// two CSR rows, accumulating in ascending-id order (the live model's
    /// summation order).
    fn common_friend_sum(&self, i: usize, j: NodeId) -> Option<f64> {
        let ra = self.row(i);
        let rb = self.row(j.index());
        let start_a = self.offsets[i] as usize;
        let mut sum = 0.0;
        let mut any = false;
        let (mut x, mut y) = (0usize, 0usize);
        while x < ra.len() && y < rb.len() {
            match ra[x].cmp(&rb[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let k = ra[x];
                    let a_ik = self.adjacent_at(i, start_a + x);
                    let a_kj = self.adjacent_closeness(NodeId(k), j);
                    sum += (a_ik + a_kj) / 2.0;
                    any = true;
                    x += 1;
                    y += 1;
                }
            }
        }
        any.then_some(sum)
    }

    /// Full closeness `Ωc(i,j)` — Eqs. (2)/(3)/(4)/(10) — using this
    /// thread's shared BFS scratch for the Eq. (4) fallback. Bit-for-bit
    /// equal to [`ClosenessModel::closeness`](crate::closeness::ClosenessModel::closeness).
    pub fn closeness(&self, i: NodeId, j: NodeId) -> f64 {
        with_thread_scratch(|scratch| self.closeness_with(i, j, scratch))
    }

    /// [`GraphSnapshot::closeness`] on a caller-provided scratch.
    pub fn closeness_with(&self, i: NodeId, j: NodeId, scratch: &mut BfsScratch) -> f64 {
        let iu = i.index();
        if i == j {
            return self.self_closeness(iu);
        }
        if let Some(slot) = self.slot(iu, j.0) {
            return self.adjacent_at(iu, slot);
        }
        if let Some(sum) = self.common_friend_sum(iu, j) {
            return sum;
        }
        if !self.bfs_to(iu, j.0, scratch) {
            return 0.0;
        }
        self.min_on_path(j.0, scratch)
    }

    /// Closeness from `i` to every target, in order. Targets on the
    /// Eq. (4) fallback are all served from **one** capped BFS rooted at
    /// `i` — the batched single-source kernel this snapshot exists for.
    pub fn closeness_to_all(&self, i: NodeId, targets: &[NodeId]) -> Vec<f64> {
        with_thread_scratch(|scratch| self.closeness_to_all_with(i, targets, scratch))
    }

    /// [`GraphSnapshot::closeness_to_all`] on a caller-provided scratch.
    pub fn closeness_to_all_with(
        &self,
        i: NodeId,
        targets: &[NodeId],
        scratch: &mut BfsScratch,
    ) -> Vec<f64> {
        let iu = i.index();
        let mut out = vec![0.0f64; targets.len()];
        let mut fallback: Vec<(usize, u32)> = Vec::new();
        for (idx, &j) in targets.iter().enumerate() {
            if i == j {
                out[idx] = self.self_closeness(iu);
            } else if let Some(slot) = self.slot(iu, j.0) {
                out[idx] = self.adjacent_at(iu, slot);
            } else if let Some(sum) = self.common_friend_sum(iu, j) {
                out[idx] = sum;
            } else {
                fallback.push((idx, j.0));
            }
        }
        if fallback.is_empty() {
            return out;
        }
        let mut wanted: Vec<u32> = fallback.iter().map(|&(_, dst)| dst).collect();
        wanted.sort_unstable();
        wanted.dedup();
        self.bfs_all(iu, &wanted, scratch);
        for (idx, dst) in fallback {
            out[idx] = if scratch.visited(dst as usize) {
                self.min_on_path(dst, scratch)
            } else {
                0.0
            };
        }
        out
    }

    /// Capped BFS from `src` that stops as soon as `dst` is discovered.
    /// Returns whether it was. The expansion order (sorted CSR rows, FIFO
    /// frontier, first-parent-wins) is identical to
    /// [`shortest_path`](crate::distance::shortest_path), so the parent
    /// chain of `dst` reconstructs the exact same path; truncating at the
    /// hop cap yields the same `0.0` the live model's post-hoc length
    /// check produces.
    fn bfs_to(&self, src: usize, dst: u32, scratch: &mut BfsScratch) -> bool {
        let cap = self.config.path_hop_cap;
        scratch.begin(self.n);
        scratch.visit(src);
        scratch.dist[src] = 0;
        scratch.parent[src] = u32::MAX;
        scratch.queue.push_back(src as u32);
        while let Some(v) = scratch.queue.pop_front() {
            let d = scratch.dist[v as usize];
            if let Some(c) = cap {
                if d >= c {
                    continue;
                }
            }
            for &w in self.row(v as usize) {
                if scratch.visit(w as usize) {
                    scratch.dist[w as usize] = d + 1;
                    scratch.parent[w as usize] = v;
                    if w == dst {
                        return true;
                    }
                    scratch.queue.push_back(w);
                }
            }
        }
        false
    }

    /// Capped BFS from `src` that stops once every node in `wanted`
    /// (sorted, deduped) has been discovered — or the capped ball is
    /// exhausted for the ones that are unreachable. A node's shortest-path
    /// parent chain is final the moment it is discovered, so cutting the
    /// traversal afterwards leaves every discovered chain identical to
    /// what an uncut (or single-target early-exit) search would have
    /// produced.
    fn bfs_all(&self, src: usize, wanted: &[u32], scratch: &mut BfsScratch) {
        let cap = self.config.path_hop_cap;
        let mut remaining = wanted.len();
        scratch.begin(self.n);
        scratch.visit(src);
        scratch.dist[src] = 0;
        scratch.parent[src] = u32::MAX;
        scratch.queue.push_back(src as u32);
        while let Some(v) = scratch.queue.pop_front() {
            let d = scratch.dist[v as usize];
            if let Some(c) = cap {
                if d >= c {
                    continue;
                }
            }
            for &w in self.row(v as usize) {
                if scratch.visit(w as usize) {
                    scratch.dist[w as usize] = d + 1;
                    scratch.parent[w as usize] = v;
                    if wanted.binary_search(&w).is_ok() {
                        remaining -= 1;
                        if remaining == 0 {
                            return;
                        }
                    }
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    /// Eq. (4): the minimum adjacent closeness along the BFS-tree path to
    /// `dst`, folded source→destination exactly like the live model folds
    /// `path.windows(2)` (same order, same `f64::min` association).
    fn min_on_path(&self, dst: u32, scratch: &mut BfsScratch) -> f64 {
        let mut path = std::mem::take(&mut scratch.path);
        path.clear();
        let mut cur = dst;
        path.push(cur);
        while scratch.parent[cur as usize] != u32::MAX {
            cur = scratch.parent[cur as usize];
            path.push(cur);
        }
        let mut min = f64::INFINITY;
        for t in (1..path.len()).rev() {
            let a = path[t] as usize; // nearer the source
            let b = path[t - 1]; // one hop toward dst
            let slot = self
                .slot(a, b)
                .expect("BFS tree edges are adjacent by construction");
            min = f64::min(min, self.adjacent_at(a, slot));
        }
        scratch.path = path;
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Closeness for many `(rater, ratee)` pairs, grouped by rater so each
    /// rater's Eq. (4) targets share one BFS, with the groups fanned out
    /// over rayon (thread-local scratch per worker). Results are in input
    /// order and bit-for-bit equal to per-pair [`GraphSnapshot::closeness`]
    /// calls.
    pub fn closeness_for_pairs(&self, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        use rayon::prelude::*;
        let mut group_of: HashMap<NodeId, usize> = HashMap::new();
        let mut groups: Vec<(NodeId, Vec<(usize, NodeId)>)> = Vec::new();
        for (idx, &(i, j)) in pairs.iter().enumerate() {
            let g = *group_of.entry(i).or_insert_with(|| {
                groups.push((i, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push((idx, j));
        }
        let scattered: Vec<Vec<(usize, f64)>> = groups
            .par_iter()
            .map(|(rater, items)| {
                with_thread_scratch(|scratch| {
                    let targets: Vec<NodeId> = items.iter().map(|&(_, j)| j).collect();
                    let values = self.closeness_to_all_with(*rater, &targets, scratch);
                    items
                        .iter()
                        .zip(values)
                        .map(|(&(idx, _), v)| (idx, v))
                        .collect()
                })
            })
            .collect();
        let mut out = vec![0.0f64; pairs.len()];
        for chunk in scattered {
            for (idx, v) in chunk {
                out[idx] = v;
            }
        }
        out
    }

    /// Plain interest similarity — Eq. (1)/(7) over the declared bitsets:
    /// AND + popcount, divided by the smaller declared-set size. Bit-for-bit
    /// equal to [`crate::interest::similarity`] on the live sets.
    pub fn similarity(&self, i: NodeId, j: NodeId) -> f64 {
        let (iu, ju) = (i.index(), j.index());
        let (la, lb) = (self.declared_len[iu], self.declared_len[ju]);
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let mut inter = 0u32;
        let (ra, rb) = (iu * self.words, ju * self.words);
        for w in 0..self.words {
            inter += (self.declared_bits[ra + w] & self.declared_bits[rb + w]).count_ones();
        }
        inter as f64 / la.min(lb) as f64
    }

    /// Request-weighted interest similarity — Eq. (11) over the effective
    /// bitsets, walking the AND mask's set bits (ascending category order)
    /// against the per-node weight rows. Bit-for-bit equal to
    /// [`crate::interest::weighted_similarity`] on the live profiles.
    pub fn weighted_similarity(&self, i: NodeId, j: NodeId) -> f64 {
        let (iu, ju) = (i.index(), j.index());
        let la = self.eff_offsets[iu + 1] - self.eff_offsets[iu];
        let lb = self.eff_offsets[ju + 1] - self.eff_offsets[ju];
        if la == 0 || lb == 0 {
            return 0.0;
        }
        // `Iterator::sum::<f64>()` folds from -0.0, so an empty
        // intersection must yield -0.0 to stay bit-identical to the live
        // path (products of non-negative weights can never be -0.0, so any
        // non-empty sum is unaffected by the seed).
        let mut numerator = -0.0f64;
        let (ra, rb) = (iu * self.words, ju * self.words);
        for w in 0..self.words {
            let mut mask = self.effective_bits[ra + w] & self.effective_bits[rb + w];
            while mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                let id = ((w << 6) + bit) as u16;
                numerator += self.eff_weight(iu, id) * self.eff_weight(ju, id);
                mask &= mask - 1;
            }
        }
        numerator / u32::min(la, lb) as f64
    }

    /// Interest similarity in either mode, mirroring the live
    /// `SocialContext::similarity` dispatch.
    pub fn interest_similarity(&self, i: NodeId, j: NodeId, weighted: bool) -> f64 {
        if weighted {
            self.weighted_similarity(i, j)
        } else {
            self.similarity(i, j)
        }
    }

    /// `ws(node, id)` from the interned weight rows. `id` must be in the
    /// node's effective set (guaranteed when it came from the AND mask).
    #[inline]
    fn eff_weight(&self, node: usize, id: u16) -> f64 {
        let (start, end) = (
            self.eff_offsets[node] as usize,
            self.eff_offsets[node + 1] as usize,
        );
        match self.eff_ids[start..end].binary_search(&id) {
            Ok(pos) => self.eff_weights[start + pos],
            Err(_) => 0.0,
        }
    }
}

/// The Eq. (2)/(10) numerator for one edge's relationship list under
/// `config` — the exact expression `ClosenessModel::adjacent_closeness`
/// evaluates per query, hoisted to build time.
fn edge_numerator(rels: &[crate::relationship::Relationship], config: ClosenessConfig) -> f64 {
    if rels.is_empty() {
        return 0.0;
    }
    if config.weighted_relationships {
        weighted_relationship_sum(rels, config.lambda).max(1.0)
    } else {
        rels.len() as f64
    }
}

/// Hashable identity of a [`ClosenessConfig`] (λ keyed by bit pattern).
#[inline]
fn config_key(config: ClosenessConfig) -> (bool, u64, Option<u32>) {
    (
        config.weighted_relationships,
        config.lambda.to_bits(),
        config.path_hop_cap,
    )
}

/// Holder of the most recent [`GraphSnapshot`], refreshing it on demand
/// and reporting rebuild/patch telemetry.
///
/// `snapshot()` takes `&self` (interior `RwLock`), so an owner exposing it
/// through shared references stays queryable from parallel readers; all
/// callers inside one cycle receive clones of the same `Arc`.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Option<Arc<GraphSnapshot>>>,
    /// Full rebuilds performed (`snapshot_rebuilds_total` once attached).
    rebuilds: Counter,
    /// Incremental row-patch refreshes (`snapshot_patches_total`).
    patches: Counter,
    /// Wall-clock seconds per full rebuild (`snapshot_rebuild_seconds`).
    rebuild_seconds: Histogram,
    /// Destination for [`Event::SnapshotRebuild`]; disabled by default.
    sink: EventSink,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore {
            current: RwLock::new(None),
            rebuilds: Counter::detached(),
            patches: Counter::detached(),
            rebuild_seconds: Histogram::detached(),
            sink: EventSink::disabled(),
        }
    }
}

/// Cloning a store yields an **empty** store (same rationale as the
/// coefficient cache: the clone may be paired with a diverging copy of the
/// graph, and snapshots are semantically transparent).
impl Clone for SnapshotStore {
    fn clone(&self) -> Self {
        SnapshotStore::new()
    }
}

impl SnapshotStore {
    /// An empty store; the first [`SnapshotStore::snapshot`] call builds.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Re-homes the rebuild/patch counters onto `telemetry`'s registry
    /// (`snapshot_rebuilds_total` / `snapshot_patches_total`, counts
    /// migrated), registers the `snapshot_rebuild_seconds` histogram, and
    /// routes `snapshot_rebuild` events to its sink.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        for (cell, name) in [
            (&mut self.rebuilds, "snapshot_rebuilds_total"),
            (&mut self.patches, "snapshot_patches_total"),
        ] {
            let registered = registry.counter(name);
            if !registered.same_cell(cell) {
                registered.add(cell.get());
                *cell = registered;
            }
        }
        self.rebuild_seconds = registry.histogram("snapshot_rebuild_seconds");
        self.sink = telemetry.sink().clone();
    }

    /// The current snapshot for the given state and config, refreshed if
    /// stale. Hold the returned `Arc` for the whole read cycle — repeated
    /// calls are cheap (`Arc` clone after one epoch comparison) but each
    /// re-validates against the live epochs.
    pub fn snapshot(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> Arc<GraphSnapshot> {
        if let Some(cur) = &*self.current.read() {
            if cur.is_fresh(graph, interactions, profiles_version, config) {
                return Arc::clone(cur);
            }
        }
        let mut slot = self.current.write();
        if let Some(cur) = &*slot {
            if cur.is_fresh(graph, interactions, profiles_version, config) {
                return Arc::clone(cur); // refreshed while we waited
            }
        }
        let started = Instant::now();
        let (snapshot, outcome) = match &*slot {
            Some(prev) => GraphSnapshot::refreshed(
                prev,
                graph,
                interactions,
                profiles,
                profiles_version,
                config,
            ),
            None => (
                GraphSnapshot::build(graph, interactions, profiles, profiles_version, config),
                RefreshOutcome::Rebuilt {
                    structural_dirty: None,
                },
            ),
        };
        match outcome {
            RefreshOutcome::Patched { .. } => self.patches.inc(),
            RefreshOutcome::Rebuilt { structural_dirty } => {
                self.rebuilds.inc();
                self.rebuild_seconds
                    .observe(started.elapsed().as_secs_f64());
                if let Some(dirty_nodes) = structural_dirty {
                    if self.sink.is_enabled() {
                        self.sink.emit(Event::SnapshotRebuild {
                            dirty_nodes: dirty_nodes as u64,
                        });
                    }
                }
            }
        }
        let arc = Arc::new(snapshot);
        *slot = Some(Arc::clone(&arc));
        arc
    }

    /// Drop the held snapshot; the next [`SnapshotStore::snapshot`] call
    /// rebuilds from scratch.
    pub fn invalidate(&self) {
        *self.current.write() = None;
    }

    /// `(rebuilds, patches)` performed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.rebuilds.get(), self.patches.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closeness::ClosenessModel;
    use crate::interest::{
        similarity as live_similarity, weighted_similarity as live_weighted, InterestId,
        InterestSet,
    };
    use crate::relationship::Relationship;

    /// The hand-computable fixture shared with `closeness::tests`.
    fn fixture() -> (SocialGraph, InteractionTracker) {
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        let mut t = InteractionTracker::new(5);
        t.record(NodeId(0), NodeId(1), 6.0);
        t.record(NodeId(0), NodeId(3), 2.0);
        t.record(NodeId(1), NodeId(0), 1.0);
        t.record(NodeId(1), NodeId(2), 3.0);
        t.record(NodeId(3), NodeId(0), 1.0);
        t.record(NodeId(3), NodeId(2), 1.0);
        t.record(NodeId(2), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 2.0);
        (g, t)
    }

    fn profiles() -> Vec<InterestProfile> {
        let mut p: Vec<InterestProfile> = vec![
            InterestProfile::new(InterestSet::from_ids([1, 2, 3])),
            InterestProfile::new(InterestSet::from_ids([2, 3])),
            InterestProfile::new(InterestSet::from_ids([7, 70])),
            InterestProfile::new(InterestSet::new()),
            InterestProfile::new(InterestSet::from_ids([1, 70])),
        ];
        p[0].record_requests(InterestId(1), 3);
        p[0].record_requests(InterestId(9), 1);
        p[1].record_requests(InterestId(2), 4);
        p[2].record_requests(InterestId(70), 2);
        p[4].record_requests(InterestId(70), 5);
        p
    }

    #[test]
    fn snapshot_matches_live_model_on_fixture() {
        let (g, t) = fixture();
        let p = profiles();
        for config in [
            ClosenessConfig::default(),
            ClosenessConfig::weighted(0.8),
            ClosenessConfig {
                path_hop_cap: None,
                ..ClosenessConfig::default()
            },
        ] {
            let snap = GraphSnapshot::build(&g, &t, &p, 0, config);
            let model = ClosenessModel::new(&g, &t, config);
            for i in 0..5u32 {
                for j in 0..5u32 {
                    let (a, b) = (NodeId(i), NodeId(j));
                    assert_eq!(
                        snap.closeness(a, b).to_bits(),
                        model.closeness(a, b).to_bits(),
                        "Ωc({a},{b})"
                    );
                    assert_eq!(
                        snap.adjacent_closeness(a, b).to_bits(),
                        model.adjacent_closeness(a, b).to_bits()
                    );
                    assert_eq!(
                        snap.similarity(a, b).to_bits(),
                        live_similarity(p[i as usize].declared(), p[j as usize].declared())
                            .to_bits(),
                        "Ωs({a},{b})"
                    );
                    assert_eq!(
                        snap.weighted_similarity(a, b).to_bits(),
                        live_weighted(&p[i as usize], &p[j as usize]).to_bits(),
                        "weighted Ωs({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_kernels_match_per_pair_queries() {
        let (g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let snap = GraphSnapshot::build(&g, &t, &p, 0, config);
        let targets: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        for i in 0..5u32 {
            let batched = snap.closeness_to_all(NodeId(i), &targets);
            for (j, v) in batched.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    snap.closeness(NodeId(i), NodeId(j as u32)).to_bits()
                );
            }
        }
        let pairs: Vec<(NodeId, NodeId)> = (0..5u32)
            .flat_map(|i| (0..5u32).map(move |j| (NodeId(i), NodeId(j))))
            .collect();
        let bulk = snap.closeness_for_pairs(&pairs);
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(bulk[idx].to_bits(), snap.closeness(a, b).to_bits());
        }
    }

    #[test]
    fn eq4_fallback_served_by_single_bfs_matches_model() {
        // Path 0-1-2-3-4-5: pairs ≥2 hops apart with no common friends all
        // fall through to Eq. (4).
        let mut g = SocialGraph::new(6);
        let mut t = InteractionTracker::new(6);
        for v in 0..5u32 {
            g.add_relationship(NodeId(v), NodeId(v + 1), Relationship::friendship());
            t.record(NodeId(v), NodeId(v + 1), (v + 1) as f64);
            t.record(NodeId(v + 1), NodeId(v), 1.0);
        }
        for config in [
            ClosenessConfig::default(),
            ClosenessConfig {
                path_hop_cap: Some(2),
                ..ClosenessConfig::default()
            },
            ClosenessConfig {
                path_hop_cap: None,
                ..ClosenessConfig::default()
            },
        ] {
            let snap = GraphSnapshot::build(&g, &t, &[], 0, config);
            let model = ClosenessModel::new(&g, &t, config);
            let targets: Vec<NodeId> = (0..6u32).map(NodeId).collect();
            for i in 0..6u32 {
                let batched = snap.closeness_to_all(NodeId(i), &targets);
                for (j, &value) in batched.iter().enumerate() {
                    assert_eq!(
                        value.to_bits(),
                        model.closeness(NodeId(i), NodeId(j as u32)).to_bits(),
                        "Ωc({i},{j}) cap={:?}",
                        config.path_hop_cap
                    );
                }
            }
        }
    }

    #[test]
    fn interaction_dirt_is_patched_not_rebuilt() {
        let (g, mut t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        t.record(NodeId(0), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 1.0);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 0, config);
        assert_eq!(outcome, RefreshOutcome::Patched { rows: 2 });
        let model = ClosenessModel::new(&g, &t, config);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(
                    next.closeness(NodeId(i), NodeId(j)).to_bits(),
                    model.closeness(NodeId(i), NodeId(j)).to_bits()
                );
            }
        }
        assert!(next.is_fresh(&g, &t, 0, config));
        assert!(!prev.is_fresh(&g, &t, 0, config));
    }

    #[test]
    fn structural_change_forces_rebuild_with_dirty_count() {
        let (mut g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        g.add_relationship(NodeId(1), NodeId(4), Relationship::friendship());
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 0, config);
        assert_eq!(
            outcome,
            RefreshOutcome::Rebuilt {
                structural_dirty: Some(2)
            }
        );
        let model = ClosenessModel::new(&g, &t, config);
        assert_eq!(
            next.closeness(NodeId(0), NodeId(4)).to_bits(),
            model.closeness(NodeId(0), NodeId(4)).to_bits()
        );
    }

    #[test]
    fn config_switch_rebuilds_without_structural_event() {
        let (g, t) = fixture();
        let prev = GraphSnapshot::build(&g, &t, &[], 0, ClosenessConfig::default());
        let weighted = ClosenessConfig::weighted(0.6);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &[], 0, weighted);
        assert_eq!(
            outcome,
            RefreshOutcome::Rebuilt {
                structural_dirty: None
            }
        );
        let model = ClosenessModel::new(&g, &t, weighted);
        assert_eq!(
            next.closeness(NodeId(0), NodeId(1)).to_bits(),
            model.closeness(NodeId(0), NodeId(1)).to_bits()
        );
    }

    #[test]
    fn profile_version_bump_repatches_interest_tables() {
        let (g, t) = fixture();
        let mut p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        p[3].declared_mut().insert(InterestId(2));
        p[3].record_requests(InterestId(2), 9);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 1, config);
        assert_eq!(outcome, RefreshOutcome::Patched { rows: 0 });
        assert_eq!(
            next.similarity(NodeId(3), NodeId(1)).to_bits(),
            live_similarity(p[3].declared(), p[1].declared()).to_bits()
        );
        assert_eq!(
            next.weighted_similarity(NodeId(3), NodeId(1)).to_bits(),
            live_weighted(&p[3], &p[1]).to_bits()
        );
        // The stale snapshot still reports the old tables.
        assert_eq!(prev.similarity(NodeId(3), NodeId(1)), 0.0);
    }

    #[test]
    fn store_serves_same_arc_until_epochs_move() {
        let (g, mut t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let store = SnapshotStore::new();
        let a = store.snapshot(&g, &t, &p, 0, config);
        let b = store.snapshot(&g, &t, &p, 0, config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats(), (1, 0));
        t.record(NodeId(0), NodeId(1), 1.0);
        let c = store.snapshot(&g, &t, &p, 0, config);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.stats(), (1, 1), "interaction dirt must patch");
        store.invalidate();
        let _ = store.snapshot(&g, &t, &p, 0, config);
        assert_eq!(store.stats(), (2, 1));
        assert!(store.clone().stats() == (0, 0), "clones start empty");
    }

    #[test]
    fn store_attach_migrates_counts_and_emits_rebuild_events() {
        let (mut g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let mut store = SnapshotStore::new();
        let _ = store.snapshot(&g, &t, &p, 0, config);
        assert_eq!(store.stats(), (1, 0));

        let telemetry = Telemetry::with_sink(EventSink::in_memory());
        store.attach_telemetry(&telemetry);
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("snapshot_rebuilds_total"), 1);
        assert_eq!(snap.counter("snapshot_patches_total"), 0);
        // Idempotent re-attach.
        store.attach_telemetry(&telemetry);
        assert_eq!(
            telemetry
                .registry()
                .snapshot()
                .counter("snapshot_rebuilds_total"),
            1
        );

        // A structural flush forces a rebuild and reports the dirty count.
        g.add_relationship(NodeId(2), NodeId(4), Relationship::friendship());
        let _ = store.snapshot(&g, &t, &p, 0, config);
        let events = telemetry.sink().events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SnapshotRebuild { dirty_nodes: 2 })),
            "expected a snapshot_rebuild event, got {events:?}"
        );
        let after = telemetry.registry().snapshot();
        assert_eq!(after.counter("snapshot_rebuilds_total"), 2);
        assert!(
            after.histogram("snapshot_rebuild_seconds").is_some(),
            "rebuild timings must be recorded"
        );
    }

    #[test]
    fn node_growth_patches_with_empty_rows() {
        let (mut g, mut t) = fixture();
        let mut p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        let v = g.add_node();
        t.ensure_nodes(g.node_count());
        p.push(InterestProfile::new(InterestSet::from_ids([2])));
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 1, config);
        assert!(matches!(outcome, RefreshOutcome::Patched { .. }));
        assert_eq!(next.node_count(), 6);
        assert_eq!(next.closeness(v, NodeId(0)), 0.0);
        assert_eq!(
            next.similarity(v, NodeId(1)).to_bits(),
            live_similarity(p[v.index()].declared(), p[1].declared()).to_bits()
        );
    }
}
