//! Immutable, epoch-stamped CSR snapshot of the social substrate,
//! partitioned into node-range shards, with batched single-source
//! closeness kernels and bitset interest similarity.
//!
//! The detection pipeline and the Gaussian rescaling layer are
//! read-dominated: each cycle evaluates `Ωc(i,j)` and `Ωs(i,j)` for
//! thousands of (rater, ratee) pairs against a graph that mutates only
//! sparsely between cycles. Serving those reads straight from
//! [`SocialGraph`] means pointer-chasing `Vec<Vec<NodeId>>` adjacency, a
//! sorted-row probe per interaction frequency, and one full BFS per
//! non-adjacent pair. [`GraphSnapshot`] freezes everything the closeness
//! and similarity equations consume into flat arrays:
//!
//! * **Sharded CSR adjacency** — the node range `0..n` is split into P
//!   contiguous shards ([`CsrShard`]); each holds its own
//!   `offsets`/`neighbors` slab with *edge-parallel* arrays: the
//!   interaction frequency `f(i,j)` and the Eq. (2)/(10) relationship
//!   numerator per edge slot, plus the per-node denominator
//!   `Σ_{k∈S_i} f(i,k)`. Adjacent closeness becomes one multiply-divide;
//!   common friends (Eq. (3)) an allocation-free sorted-slice
//!   intersection. Shards are `Arc`-shared between snapshot generations:
//!   a refresh clones only the shards it touches.
//! * **Batched Eq. (4)** — one capped BFS per rater serves *all* of its
//!   path-fallback ratees from a single traversal
//!   ([`GraphSnapshot::closeness_to_all`]), on reusable
//!   [`BfsScratch`](crate::distance::BfsScratch) buffers.
//! * **Interned interest bitsets** — fixed-width `u64` blocks per node,
//!   global across shards (profiles have no shard locality); Eq. (1)/(7)
//!   overlap is AND + popcount, Eq. (11) walks the AND mask's set bits
//!   against per-node request-weight rows.
//!
//! Every kernel reproduces the corresponding live-path computation
//! **bit-for-bit** (same floating-point evaluation order as
//! [`ClosenessModel`](crate::closeness::ClosenessModel) and the
//! [`crate::interest`] free functions), *independent of the shard count*:
//! all arithmetic is per-row or walks rows through the same accessor, so
//! shard boundaries never change an evaluation order. The property tests
//! in `tests/properties.rs` drive random mutation/refresh interleavings
//! across P ∈ {1, 2, 8} to prove it.
//!
//! # Epoch semantics and refresh
//!
//! A snapshot is stamped with the graph epoch, interaction epoch, and a
//! caller-supplied profiles version, plus the [`ClosenessConfig`] whose
//! numerators are baked into its edge slots. [`SnapshotStore`] keeps the
//! most recent snapshot and refreshes it from borrowed
//! [`DirtyLog::changes_since_ref`](crate::dirty::DirtyLog::changes_since_ref)
//! deltas, routed per shard:
//!
//! * interaction-only dirt repatches just the dirty rows' frequency slots
//!   and denominators, inside the owning shard only;
//! * structural churn (edge add/remove) rebuilds **only the shards owning
//!   a dirty endpoint** — sound because an edge mutation rewrites exactly
//!   its two endpoints' adjacency rows, and both endpoints are in the
//!   dirty set — and repatches interaction dirt in the surviving shards;
//! * a whole-state flush or config switch rebuilds every shard (fanned
//!   out over rayon).
//!
//! Rebuild refreshes emit a `snapshot_rebuild` telemetry event carrying
//! the dirty-node count. Consumers that hold one `Arc<GraphSnapshot>` for
//! a whole cycle are guaranteed a frozen, mutually consistent view — no
//! lock traffic, no mid-cycle epoch drift.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use socialtrust_telemetry::{Counter, Event, EventSink, Gauge, Histogram, Telemetry};

use crate::closeness::ClosenessConfig;
use crate::dirty::DirtyDeltaRef;
use crate::distance::{with_thread_scratch, BfsScratch};
use crate::graph::SocialGraph;
use crate::interaction::InteractionTracker;
use crate::interest::InterestProfile;
use crate::relationship::weighted_relationship_sum;
use crate::NodeId;

/// Node count one shard aims to cover under the default (adaptive) shard
/// policy. Small graphs stay single-shard; a 1M-node graph splits into
/// [`MAX_SHARDS`] ranges of ~16k rows, so structural churn touching a few
/// endpoints rebuilds ~1/64th of the CSR instead of all of it.
const SHARD_TARGET_NODES: usize = 8192;
/// Upper bound on the adaptive shard count.
const MAX_SHARDS: usize = 64;

/// Default shard count for an `n`-node snapshot: deterministic (no
/// dependence on machine parallelism), one shard per
/// [`SHARD_TARGET_NODES`] rows, clamped to `1..=`[`MAX_SHARDS`].
pub fn default_shard_count(n: usize) -> usize {
    (n / SHARD_TARGET_NODES).clamp(1, MAX_SHARDS)
}

/// One contiguous node range's CSR slab: rows `start..start+len` with
/// *local* offsets (row `i` of the snapshot is row `i - start` here).
#[derive(Debug, Clone)]
struct CsrShard {
    /// First global node id covered by this shard.
    start: usize,
    /// Local row boundaries: row `li`'s slots are
    /// `offsets[li]..offsets[li+1]`. Length is `len + 1`.
    offsets: Vec<u32>,
    /// Neighbor ids (global) per slot, ascending within each row.
    neighbors: Vec<u32>,
    /// Edge-parallel `f(i, neighbors[slot])`.
    freq: Vec<f64>,
    /// Edge-parallel Eq. (2)/(10) numerator for the owning row's
    /// direction. Relationships are per-edge, so the value is identical
    /// for both directions, but it is stored per slot to keep the kernels
    /// branchless.
    numerator: Vec<f64>,
    /// `Σ_{k ∈ S_i} f(i,k)` per local row — the Eq. (2)/(10) denominator,
    /// accumulated over the row in neighbor order.
    friend_total: Vec<f64>,
}

impl CsrShard {
    /// Build the slab for rows `start..end` from live structures. The
    /// per-row loop is identical to the historical unsharded build, so
    /// the arrays are bit-for-bit what a single-slab build would hold in
    /// this range.
    fn build(
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        start: usize,
        end: usize,
    ) -> CsrShard {
        let len = end - start;
        let mut offsets = Vec::with_capacity(len + 1);
        let mut neighbors = Vec::new();
        let mut freq = Vec::new();
        let mut numerator = Vec::new();
        let mut friend_total = Vec::with_capacity(len);
        offsets.push(0u32);
        for i in start..end {
            let v = NodeId::from(i);
            let mut total = 0.0;
            for &w in graph.neighbors(v) {
                let f = interactions.frequency(v, w);
                neighbors.push(w.0);
                freq.push(f);
                numerator.push(edge_numerator(graph.relationships(v, w), config));
                total += f;
            }
            friend_total.push(total);
            offsets.push(neighbors.len() as u32);
        }
        CsrShard {
            start,
            offsets,
            neighbors,
            freq,
            numerator,
            friend_total,
        }
    }

    /// Eq. (2)/(10) value for the edge at `slot` of local row `li`.
    #[inline]
    fn value_at(&self, li: usize, slot: usize) -> f64 {
        let total = self.friend_total[li];
        if total <= 0.0 {
            return 0.0;
        }
        self.numerator[slot] * self.freq[slot] / total
    }

    /// Repatch local row `li`'s frequency slots and denominator from the
    /// live tracker (the interaction-dirt fast path).
    fn patch_row(&mut self, li: usize, v: NodeId, interactions: &InteractionTracker) {
        let (s, e) = (self.offsets[li] as usize, self.offsets[li + 1] as usize);
        let mut total = 0.0;
        for slot in s..e {
            let f = interactions.frequency(v, NodeId(self.neighbors[slot]));
            self.freq[slot] = f;
            total += f;
        }
        self.friend_total[li] = total;
    }

    /// Heap bytes held by the slab.
    fn bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.neighbors.capacity() * std::mem::size_of::<u32>()
            + self.freq.capacity() * std::mem::size_of::<f64>()
            + self.numerator.capacity() * std::mem::size_of::<f64>()
            + self.friend_total.capacity() * std::mem::size_of::<f64>()
    }
}

/// The interned interest tables, global across shards (interest overlap
/// has no node-range locality and rebuilds only on a profiles-version
/// bump, so sharding it would buy nothing).
#[derive(Debug, Clone, Default)]
struct InterestTables {
    /// Width of each bitset row, in `u64` words.
    words: usize,
    /// Declared interest bitsets, `n × words` (Eq. (1)/(7)).
    declared_bits: Vec<u64>,
    /// Effective (declared ∪ requested) interest bitsets, `n × words`
    /// (Eq. (11)).
    effective_bits: Vec<u64>,
    /// `|Vi|` of the declared set per node.
    declared_len: Vec<u32>,
    /// CSR row boundaries into `eff_ids`/`eff_weights`.
    eff_offsets: Vec<u32>,
    /// Effective-set category ids per node, ascending.
    eff_ids: Vec<u16>,
    /// Request weight `ws(i,l)` parallel to `eff_ids`.
    eff_weights: Vec<f64>,
}

impl InterestTables {
    /// Intern `profiles` for `n` nodes. Nodes past `profiles.len()` get
    /// empty rows.
    fn build(n: usize, profiles: &[InterestProfile]) -> InterestTables {
        let mut t = InterestTables::default();
        t.eff_offsets.push(0);
        let mut universe = 0usize;
        for i in 0..n {
            match profiles.get(i) {
                Some(p) => {
                    for (id, w) in p.effective_weights() {
                        t.eff_ids.push(id.0);
                        t.eff_weights.push(w);
                        universe = universe.max(id.0 as usize + 1);
                    }
                    t.declared_len.push(p.declared().len() as u32);
                }
                None => t.declared_len.push(0),
            }
            t.eff_offsets.push(t.eff_ids.len() as u32);
        }
        let words = universe.div_ceil(64);
        t.words = words;
        t.declared_bits.resize(n * words, 0);
        t.effective_bits.resize(n * words, 0);
        for i in 0..n {
            if let Some(p) = profiles.get(i) {
                for id in p.declared().as_slice() {
                    t.declared_bits[i * words + (id.0 as usize >> 6)] |= 1u64 << (id.0 & 63);
                }
            }
            let (start, end) = (t.eff_offsets[i] as usize, t.eff_offsets[i + 1] as usize);
            for &id in &t.eff_ids[start..end] {
                t.effective_bits[i * words + (id as usize >> 6)] |= 1u64 << (id & 63);
            }
        }
        t
    }

    /// Heap bytes held by the tables.
    fn bytes(&self) -> usize {
        self.declared_bits.capacity() * 8
            + self.effective_bits.capacity() * 8
            + self.declared_len.capacity() * 4
            + self.eff_offsets.capacity() * 4
            + self.eff_ids.capacity() * 2
            + self.eff_weights.capacity() * 8
    }
}

/// An immutable, shard-partitioned CSR view of graph + interactions +
/// interest profiles, valid for (and stamped with) one epoch triple and
/// one [`ClosenessConfig`].
///
/// Build one with [`GraphSnapshot::build`] (adaptive shard count) or
/// [`GraphSnapshot::build_with_shards`], or let a [`SnapshotStore`]
/// manage refreshes. All query methods take `&self` and are safe to share
/// across rayon workers (`Arc<GraphSnapshot>` is `Send + Sync`). Query
/// results are bit-for-bit identical across shard counts.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph_epoch: u64,
    interaction_epoch: u64,
    profiles_version: u64,
    config: ClosenessConfig,
    /// Number of nodes (CSR rows across all shards).
    n: usize,
    /// Nodes per shard at build time; the *last* shard absorbs the
    /// remainder and any nodes added after the build, so
    /// `shard index = min(i / shard_size, P-1)`.
    shard_size: usize,
    /// The P node-range slabs. `Arc`-shared with the previous snapshot
    /// generation: a refresh clones only the shards it mutates, so
    /// untouched slabs cost one refcount, not one copy.
    shards: Vec<Arc<CsrShard>>,
    /// Interest tables, shared across generations until a
    /// profiles-version bump (or node growth) rebuilds them.
    interest: Arc<InterestTables>,
}

/// What a [`SnapshotStore`] refresh did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The previous snapshot's CSR structure was reused; only the dirty
    /// rows' frequency slots / denominators (and, on a profiles-version
    /// bump, the interest tables) were recomputed.
    Patched {
        /// Number of CSR rows whose interaction slots were repatched.
        rows: usize,
    },
    /// A rebuild. `structural_dirty` is `Some(count)` when a structural
    /// flush (edge add/remove or whole-state graph reset) forced it,
    /// carrying the dirty-node count the log reported — this is the case
    /// that emits an [`Event::SnapshotRebuild`]. Under sharding a
    /// structural rebuild reconstructs only the shards owning dirty
    /// endpoints; the remaining slabs are reused (and interaction-patched
    /// if needed).
    Rebuilt {
        /// Dirty-node count when the rebuild was forced by graph
        /// structure; `None` for config switches and interaction resets.
        structural_dirty: Option<usize>,
    },
}

impl GraphSnapshot {
    /// Build a snapshot of the current state of `graph`, `interactions`,
    /// and `profiles`, baking in `config`'s Eq. (2)/(10) numerators, with
    /// the [`default_shard_count`] for the graph's size.
    ///
    /// `profiles_version` is a caller-maintained counter stamped into the
    /// snapshot (interest profiles carry no dirty log of their own); bump
    /// it on every profile mutation so [`SnapshotStore`] can detect
    /// staleness.
    pub fn build(
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> GraphSnapshot {
        Self::build_with_shards(
            graph,
            interactions,
            profiles,
            profiles_version,
            config,
            default_shard_count(graph.node_count()),
        )
    }

    /// [`GraphSnapshot::build`] with an explicit shard count `p ≥ 1`.
    /// Shards cover contiguous node ranges of `ceil(n / p)` rows each;
    /// construction fans out one rayon task per shard.
    pub fn build_with_shards(
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
        p: usize,
    ) -> GraphSnapshot {
        use rayon::prelude::*;
        let n = graph.node_count();
        let shard_size = n.div_ceil(p.max(1)).max(1);
        let bounds = shard_bounds(n, shard_size);
        let shards: Vec<Arc<CsrShard>> = bounds
            .par_iter()
            .map(|&(start, end)| Arc::new(CsrShard::build(graph, interactions, config, start, end)))
            .collect();
        GraphSnapshot {
            graph_epoch: graph.epoch(),
            interaction_epoch: interactions.epoch(),
            profiles_version,
            config,
            n,
            shard_size,
            shards,
            interest: Arc::new(InterestTables::build(n, profiles)),
        }
    }

    /// Produce an up-to-date snapshot from `prev`, keeping `prev`'s shard
    /// layout: interaction dirt patches only the dirty rows inside their
    /// owning shards; structural dirt rebuilds only the shards owning a
    /// dirty endpoint; config switches and whole-state flushes rebuild
    /// everything (at `prev`'s shard count). Returns the new snapshot and
    /// what was done. The caller is responsible for having checked
    /// [`GraphSnapshot::is_fresh`] first (refreshing a fresh snapshot
    /// performs a pointless copy).
    pub fn refreshed(
        prev: &GraphSnapshot,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> (GraphSnapshot, RefreshOutcome) {
        let p = prev.shards.len();
        let full = |structural_dirty: Option<usize>| {
            (
                GraphSnapshot::build_with_shards(
                    graph,
                    interactions,
                    profiles,
                    profiles_version,
                    config,
                    p,
                ),
                RefreshOutcome::Rebuilt { structural_dirty },
            )
        };
        if config_key(prev.config) != config_key(config) {
            return full(None);
        }
        let graph_delta = graph.changes_since_ref(prev.graph_epoch);
        let structural_dirty = match graph_delta {
            DirtyDeltaRef::Full => return full(Some(graph.node_count())),
            DirtyDeltaRef::Sparse {
                structural: true, ..
            } => Some(graph_delta.nodes().count()),
            // Non-structural graph dirt is node *addition* only; anything
            // claiming to have touched a pre-existing row non-structurally
            // is outside the patch contract, so fall back to a rebuild.
            DirtyDeltaRef::Sparse { .. } if graph_delta.nodes().any(|v| v.index() < prev.n) => {
                return full(None);
            }
            _ => None,
        };
        let inter_delta = interactions.changes_since_ref(prev.interaction_epoch);
        if matches!(inter_delta, DirtyDeltaRef::Full) {
            // Whole-tracker reset: every frequency slot is stale, so even
            // a structural partial rebuild cannot save the other shards.
            return full(structural_dirty);
        }

        let mut next = prev.clone();
        let n = graph.node_count();
        let grew = n > next.n;

        if let Some(dirty_count) = structural_dirty {
            // Partial structural rebuild: reconstruct exactly the shards
            // owning a dirty endpoint. Sound because an edge mutation
            // rewrites only its two endpoints' adjacency rows and dirties
            // both endpoints; rows in other shards are byte-identical to
            // what a full rebuild would produce — up to interaction dirt,
            // which is repatched below.
            next.rebuild_shards_for(graph_delta, graph, interactions, grew.then_some(n));
            next.n = n;
            next.patch_interactions(inter_delta, interactions);
            if grew || profiles_version != next.profiles_version {
                next.interest = Arc::new(InterestTables::build(n, profiles));
            }
            next.profiles_version = profiles_version;
            next.graph_epoch = graph.epoch();
            next.interaction_epoch = interactions.epoch();
            return (
                next,
                RefreshOutcome::Rebuilt {
                    structural_dirty: Some(dirty_count),
                },
            );
        }

        if grew {
            // New nodes arrive isolated (edge additions are structural),
            // so their CSR rows are empty; the last shard absorbs them.
            let last = Arc::make_mut(next.shards.last_mut().expect("at least one shard"));
            let end = *last.offsets.last().expect("offsets never empty");
            last.offsets.resize(n - last.start + 1, end);
            last.friend_total.resize(n - last.start, 0.0);
            next.n = n;
        }
        let rows = next.patch_interactions(inter_delta, interactions);
        if grew || profiles_version != next.profiles_version {
            next.interest = Arc::new(InterestTables::build(n, profiles));
            next.profiles_version = profiles_version;
        }
        next.graph_epoch = graph.epoch();
        next.interaction_epoch = interactions.epoch();
        (next, RefreshOutcome::Patched { rows })
    }

    /// Rebuild the shards owning a node dirtied by `graph_delta` (plus
    /// the last shard when the graph grew to `grown_n`), reusing every
    /// other slab by `Arc` clone. Rebuilds fan out over rayon.
    fn rebuild_shards_for(
        &mut self,
        graph_delta: DirtyDeltaRef<'_>,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        grown_n: Option<usize>,
    ) {
        use rayon::prelude::*;
        let p = self.shards.len();
        let n = grown_n.unwrap_or(self.n);
        let mut dirty = vec![false; p];
        for v in graph_delta.nodes() {
            dirty[(v.index() / self.shard_size).min(p - 1)] = true;
        }
        if grown_n.is_some() {
            dirty[p - 1] = true;
        }
        let config = self.config;
        let shard_size = self.shard_size;
        let dirty = &dirty;
        let rebuilt: Vec<Option<Arc<CsrShard>>> = (0..p)
            .into_par_iter()
            .map(|k| {
                if !dirty[k] {
                    return None;
                }
                let start = k * shard_size;
                let end = if k + 1 == p { n } else { start + shard_size };
                Some(Arc::new(CsrShard::build(
                    graph,
                    interactions,
                    config,
                    start,
                    end,
                )))
            })
            .collect();
        for (k, slab) in rebuilt.into_iter().enumerate() {
            if let Some(slab) = slab {
                self.shards[k] = slab;
            }
        }
    }

    /// Repatch interaction-dirty rows, batched per owning shard. Dirt is
    /// first grouped by shard, then each touched shard is brought up to
    /// date exactly once: slabs this snapshot already owns uniquely (e.g.
    /// just rebuilt by a structural pass this refresh — the patch is
    /// idempotent there) are patched in place with no copy, while slabs
    /// still shared with older snapshot generations are clone+patched in
    /// parallel over rayon. Row patches only write their own frequency
    /// slots and denominator, so batch order never changes a result and
    /// the refresh stays bit-for-bit equal to the per-row path. Returns
    /// the number of rows patched.
    fn patch_interactions(
        &mut self,
        inter_delta: DirtyDeltaRef<'_>,
        interactions: &InteractionTracker,
    ) -> usize {
        use rayon::prelude::*;
        let p = self.shards.len();
        // Group the dirty rows by owning shard.
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); p];
        let mut rows = 0usize;
        for v in inter_delta.nodes() {
            let i = v.index();
            if i >= self.n {
                continue; // tracker covers more nodes than the graph
            }
            buckets[(i / self.shard_size).min(p - 1)].push(v);
            rows += 1;
        }
        // In-place pass for uniquely-owned slabs; collect the shared ones.
        let mut shared: Vec<usize> = Vec::new();
        for (k, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            match Arc::get_mut(&mut self.shards[k]) {
                Some(shard) => {
                    for &v in bucket {
                        shard.patch_row(v.index() - shard.start, v, interactions);
                    }
                }
                None => shared.push(k),
            }
        }
        if shared.is_empty() {
            return rows;
        }
        // Clone+patch every still-shared shard concurrently: the slab
        // memcpy dominates the sparse-dirt patch path, and the copies are
        // independent.
        let shards = &self.shards;
        let buckets = &buckets;
        let repatched: Vec<(usize, Arc<CsrShard>)> = shared
            .into_par_iter()
            .map(|k| {
                let mut shard = CsrShard::clone(&shards[k]);
                for &v in &buckets[k] {
                    shard.patch_row(v.index() - shard.start, v, interactions);
                }
                (k, Arc::new(shard))
            })
            .collect();
        for (k, slab) in repatched {
            self.shards[k] = slab;
        }
        rows
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of node-range shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The `(graph, interaction, profiles)` epoch triple the snapshot was
    /// built at.
    pub fn epochs(&self) -> (u64, u64, u64) {
        (
            self.graph_epoch,
            self.interaction_epoch,
            self.profiles_version,
        )
    }

    /// The configuration whose numerators are baked into the edge slots.
    pub fn config(&self) -> ClosenessConfig {
        self.config
    }

    /// Heap bytes held by the snapshot (CSR slabs + interest tables).
    /// O(P): sums per-shard capacities, not elements.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes()).sum::<usize>()
            + self.interest.bytes()
            + self.shards.capacity() * std::mem::size_of::<Arc<CsrShard>>()
    }

    /// [`GraphSnapshot::bytes`] per node — the memory-budget figure the
    /// telemetry gauge `snapshot_bytes_per_node` reports.
    pub fn bytes_per_node(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.bytes() as f64 / self.n as f64
    }

    /// Whether the snapshot still reflects the live structures (and would
    /// serve `config` — a snapshot answers only for the config it was
    /// built with).
    pub fn is_fresh(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> bool {
        self.graph_epoch == graph.epoch()
            && self.interaction_epoch == interactions.epoch()
            && self.profiles_version == profiles_version
            && config_key(self.config) == config_key(config)
    }

    /// The shard owning global row `i`, and `i`'s local row index.
    #[inline]
    fn shard_and_local(&self, i: usize) -> (&CsrShard, usize) {
        let k = (i / self.shard_size).min(self.shards.len() - 1);
        let s = &self.shards[k];
        (s, i - s.start)
    }

    /// The CSR neighbor row of node `i` (ascending ids).
    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        let (s, li) = self.shard_and_local(i);
        &s.neighbors[s.offsets[li] as usize..s.offsets[li + 1] as usize]
    }

    /// Eq. (2)/(10) value for edge `i → j`, or `None` when not adjacent.
    #[inline]
    fn edge_closeness(&self, i: usize, j: u32) -> Option<f64> {
        let (s, li) = self.shard_and_local(i);
        let start = s.offsets[li] as usize;
        let row = &s.neighbors[start..s.offsets[li + 1] as usize];
        row.binary_search(&j)
            .ok()
            .map(|p| s.value_at(li, start + p))
    }

    /// Closeness between *adjacent* nodes — Eq. (2)/(10). `0.0` when not
    /// adjacent. Bit-for-bit equal to
    /// [`ClosenessModel::adjacent_closeness`](crate::closeness::ClosenessModel::adjacent_closeness).
    pub fn adjacent_closeness(&self, i: NodeId, j: NodeId) -> f64 {
        self.edge_closeness(i.index(), j.0).unwrap_or(0.0)
    }

    /// `Ωc(i,i)`: the maximum adjacent closeness of `i` (matches the
    /// live model's self-closeness convention).
    fn self_closeness(&self, i: usize) -> f64 {
        let (s, li) = self.shard_and_local(i);
        let (start, end) = (s.offsets[li] as usize, s.offsets[li + 1] as usize);
        let mut best = 0.0f64;
        for slot in start..end {
            best = f64::max(best, s.value_at(li, slot));
        }
        best
    }

    /// The Eq. (3) common-friend sum, or `None` when the rows share no
    /// common friend. Allocation-free sorted-slice intersection over the
    /// two CSR rows, accumulating in ascending-id order (the live model's
    /// summation order).
    fn common_friend_sum(&self, i: usize, j: NodeId) -> Option<f64> {
        let (si, li) = self.shard_and_local(i);
        let start_a = si.offsets[li] as usize;
        let ra = &si.neighbors[start_a..si.offsets[li + 1] as usize];
        let rb = self.row(j.index());
        let mut sum = 0.0;
        let mut any = false;
        let (mut x, mut y) = (0usize, 0usize);
        while x < ra.len() && y < rb.len() {
            match ra[x].cmp(&rb[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let k = ra[x];
                    let a_ik = si.value_at(li, start_a + x);
                    let a_kj = self.adjacent_closeness(NodeId(k), j);
                    sum += (a_ik + a_kj) / 2.0;
                    any = true;
                    x += 1;
                    y += 1;
                }
            }
        }
        any.then_some(sum)
    }

    /// Full closeness `Ωc(i,j)` — Eqs. (2)/(3)/(4)/(10) — using this
    /// thread's shared BFS scratch for the Eq. (4) fallback. Bit-for-bit
    /// equal to [`ClosenessModel::closeness`](crate::closeness::ClosenessModel::closeness).
    pub fn closeness(&self, i: NodeId, j: NodeId) -> f64 {
        with_thread_scratch(|scratch| self.closeness_with(i, j, scratch))
    }

    /// [`GraphSnapshot::closeness`] on a caller-provided scratch.
    pub fn closeness_with(&self, i: NodeId, j: NodeId, scratch: &mut BfsScratch) -> f64 {
        let iu = i.index();
        if i == j {
            return self.self_closeness(iu);
        }
        if let Some(value) = self.edge_closeness(iu, j.0) {
            return value;
        }
        if let Some(sum) = self.common_friend_sum(iu, j) {
            return sum;
        }
        if !self.bfs_to(iu, j.0, scratch) {
            return 0.0;
        }
        self.min_on_path(j.0, scratch)
    }

    /// Closeness from `i` to every target, in order. Targets on the
    /// Eq. (4) fallback are all served from **one** capped BFS rooted at
    /// `i` — the batched single-source kernel this snapshot exists for.
    pub fn closeness_to_all(&self, i: NodeId, targets: &[NodeId]) -> Vec<f64> {
        with_thread_scratch(|scratch| self.closeness_to_all_with(i, targets, scratch))
    }

    /// [`GraphSnapshot::closeness_to_all`] on a caller-provided scratch.
    pub fn closeness_to_all_with(
        &self,
        i: NodeId,
        targets: &[NodeId],
        scratch: &mut BfsScratch,
    ) -> Vec<f64> {
        let iu = i.index();
        let mut out = vec![0.0f64; targets.len()];
        let mut fallback: Vec<(usize, u32)> = Vec::new();
        for (idx, &j) in targets.iter().enumerate() {
            if i == j {
                out[idx] = self.self_closeness(iu);
            } else if let Some(value) = self.edge_closeness(iu, j.0) {
                out[idx] = value;
            } else if let Some(sum) = self.common_friend_sum(iu, j) {
                out[idx] = sum;
            } else {
                fallback.push((idx, j.0));
            }
        }
        if fallback.is_empty() {
            return out;
        }
        let mut wanted: Vec<u32> = fallback.iter().map(|&(_, dst)| dst).collect();
        wanted.sort_unstable();
        wanted.dedup();
        self.bfs_all(iu, &wanted, scratch);
        for (idx, dst) in fallback {
            out[idx] = if scratch.visited(dst as usize) {
                self.min_on_path(dst, scratch)
            } else {
                0.0
            };
        }
        out
    }

    /// Capped BFS from `src` that stops as soon as `dst` is discovered.
    /// Returns whether it was. The expansion order (sorted CSR rows, FIFO
    /// frontier, first-parent-wins) is identical to
    /// [`shortest_path`](crate::distance::shortest_path), so the parent
    /// chain of `dst` reconstructs the exact same path; truncating at the
    /// hop cap yields the same `0.0` the live model's post-hoc length
    /// check produces.
    fn bfs_to(&self, src: usize, dst: u32, scratch: &mut BfsScratch) -> bool {
        let cap = self.config.path_hop_cap;
        scratch.begin(self.n);
        scratch.visit(src);
        scratch.dist[src] = 0;
        scratch.parent[src] = u32::MAX;
        scratch.queue.push_back(src as u32);
        while let Some(v) = scratch.queue.pop_front() {
            let d = scratch.dist[v as usize];
            if let Some(c) = cap {
                if d >= c {
                    continue;
                }
            }
            for &w in self.row(v as usize) {
                if scratch.visit(w as usize) {
                    scratch.dist[w as usize] = d + 1;
                    scratch.parent[w as usize] = v;
                    if w == dst {
                        return true;
                    }
                    scratch.queue.push_back(w);
                }
            }
        }
        false
    }

    /// Capped BFS from `src` that stops once every node in `wanted`
    /// (sorted, deduped) has been discovered — or the capped ball is
    /// exhausted for the ones that are unreachable. A node's shortest-path
    /// parent chain is final the moment it is discovered, so cutting the
    /// traversal afterwards leaves every discovered chain identical to
    /// what an uncut (or single-target early-exit) search would have
    /// produced.
    fn bfs_all(&self, src: usize, wanted: &[u32], scratch: &mut BfsScratch) {
        let cap = self.config.path_hop_cap;
        let mut remaining = wanted.len();
        scratch.begin(self.n);
        scratch.visit(src);
        scratch.dist[src] = 0;
        scratch.parent[src] = u32::MAX;
        scratch.queue.push_back(src as u32);
        while let Some(v) = scratch.queue.pop_front() {
            let d = scratch.dist[v as usize];
            if let Some(c) = cap {
                if d >= c {
                    continue;
                }
            }
            for &w in self.row(v as usize) {
                if scratch.visit(w as usize) {
                    scratch.dist[w as usize] = d + 1;
                    scratch.parent[w as usize] = v;
                    if wanted.binary_search(&w).is_ok() {
                        remaining -= 1;
                        if remaining == 0 {
                            return;
                        }
                    }
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    /// Eq. (4): the minimum adjacent closeness along the BFS-tree path to
    /// `dst`, folded source→destination exactly like the live model folds
    /// `path.windows(2)` (same order, same `f64::min` association).
    fn min_on_path(&self, dst: u32, scratch: &mut BfsScratch) -> f64 {
        let mut path = std::mem::take(&mut scratch.path);
        path.clear();
        let mut cur = dst;
        path.push(cur);
        while scratch.parent[cur as usize] != u32::MAX {
            cur = scratch.parent[cur as usize];
            path.push(cur);
        }
        let mut min = f64::INFINITY;
        for t in (1..path.len()).rev() {
            let a = path[t] as usize; // nearer the source
            let b = path[t - 1]; // one hop toward dst
            let value = self
                .edge_closeness(a, b)
                .expect("BFS tree edges are adjacent by construction");
            min = f64::min(min, value);
        }
        scratch.path = path;
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Closeness for many `(rater, ratee)` pairs, grouped by rater so each
    /// rater's Eq. (4) targets share one BFS, with the groups fanned out
    /// over rayon (thread-local scratch per worker). Results are in input
    /// order and bit-for-bit equal to per-pair [`GraphSnapshot::closeness`]
    /// calls.
    pub fn closeness_for_pairs(&self, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        use rayon::prelude::*;
        let mut group_of: HashMap<NodeId, usize> = HashMap::new();
        let mut groups: Vec<(NodeId, Vec<(usize, NodeId)>)> = Vec::new();
        for (idx, &(i, j)) in pairs.iter().enumerate() {
            let g = *group_of.entry(i).or_insert_with(|| {
                groups.push((i, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push((idx, j));
        }
        let scattered: Vec<Vec<(usize, f64)>> = groups
            .par_iter()
            .map(|(rater, items)| {
                with_thread_scratch(|scratch| {
                    let targets: Vec<NodeId> = items.iter().map(|&(_, j)| j).collect();
                    let values = self.closeness_to_all_with(*rater, &targets, scratch);
                    items
                        .iter()
                        .zip(values)
                        .map(|(&(idx, _), v)| (idx, v))
                        .collect()
                })
            })
            .collect();
        let mut out = vec![0.0f64; pairs.len()];
        for chunk in scattered {
            for (idx, v) in chunk {
                out[idx] = v;
            }
        }
        out
    }

    /// Plain interest similarity — Eq. (1)/(7) over the declared bitsets:
    /// AND + popcount, divided by the smaller declared-set size. Bit-for-bit
    /// equal to [`crate::interest::similarity`] on the live sets.
    pub fn similarity(&self, i: NodeId, j: NodeId) -> f64 {
        let t = &*self.interest;
        let (iu, ju) = (i.index(), j.index());
        let (la, lb) = (t.declared_len[iu], t.declared_len[ju]);
        if la == 0 || lb == 0 {
            return 0.0;
        }
        let mut inter = 0u32;
        let (ra, rb) = (iu * t.words, ju * t.words);
        for w in 0..t.words {
            inter += (t.declared_bits[ra + w] & t.declared_bits[rb + w]).count_ones();
        }
        inter as f64 / la.min(lb) as f64
    }

    /// Request-weighted interest similarity — Eq. (11) over the effective
    /// bitsets, walking the AND mask's set bits (ascending category order)
    /// against the per-node weight rows. Bit-for-bit equal to
    /// [`crate::interest::weighted_similarity`] on the live profiles.
    pub fn weighted_similarity(&self, i: NodeId, j: NodeId) -> f64 {
        let t = &*self.interest;
        let (iu, ju) = (i.index(), j.index());
        let la = t.eff_offsets[iu + 1] - t.eff_offsets[iu];
        let lb = t.eff_offsets[ju + 1] - t.eff_offsets[ju];
        if la == 0 || lb == 0 {
            return 0.0;
        }
        // `Iterator::sum::<f64>()` folds from -0.0, so an empty
        // intersection must yield -0.0 to stay bit-identical to the live
        // path (products of non-negative weights can never be -0.0, so any
        // non-empty sum is unaffected by the seed).
        let mut numerator = -0.0f64;
        let (ra, rb) = (iu * t.words, ju * t.words);
        for w in 0..t.words {
            let mut mask = t.effective_bits[ra + w] & t.effective_bits[rb + w];
            while mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                let id = ((w << 6) + bit) as u16;
                numerator += self.eff_weight(iu, id) * self.eff_weight(ju, id);
                mask &= mask - 1;
            }
        }
        numerator / u32::min(la, lb) as f64
    }

    /// Interest similarity in either mode, mirroring the live
    /// `SocialContext::similarity` dispatch.
    pub fn interest_similarity(&self, i: NodeId, j: NodeId, weighted: bool) -> f64 {
        if weighted {
            self.weighted_similarity(i, j)
        } else {
            self.similarity(i, j)
        }
    }

    /// `ws(node, id)` from the interned weight rows. `id` must be in the
    /// node's effective set (guaranteed when it came from the AND mask).
    #[inline]
    fn eff_weight(&self, node: usize, id: u16) -> f64 {
        let t = &*self.interest;
        let (start, end) = (
            t.eff_offsets[node] as usize,
            t.eff_offsets[node + 1] as usize,
        );
        match t.eff_ids[start..end].binary_search(&id) {
            Ok(pos) => t.eff_weights[start + pos],
            Err(_) => 0.0,
        }
    }
}

/// `(start, end)` node ranges for shards of `shard_size` covering `0..n`.
/// Always at least one range (possibly empty, for `n = 0`).
fn shard_bounds(n: usize, shard_size: usize) -> Vec<(usize, usize)> {
    let count = (n.div_ceil(shard_size)).max(1);
    (0..count)
        .map(|k| {
            let start = k * shard_size;
            let end = if k + 1 == count {
                n
            } else {
                start + shard_size
            };
            (start, end)
        })
        .collect()
}

/// The Eq. (2)/(10) numerator for one edge's relationship list under
/// `config` — the exact expression `ClosenessModel::adjacent_closeness`
/// evaluates per query, hoisted to build time.
fn edge_numerator(rels: &[crate::relationship::Relationship], config: ClosenessConfig) -> f64 {
    if rels.is_empty() {
        return 0.0;
    }
    if config.weighted_relationships {
        weighted_relationship_sum(rels, config.lambda).max(1.0)
    } else {
        rels.len() as f64
    }
}

/// Hashable identity of a [`ClosenessConfig`] (λ keyed by bit pattern).
#[inline]
fn config_key(config: ClosenessConfig) -> (bool, u64, Option<u32>) {
    (
        config.weighted_relationships,
        config.lambda.to_bits(),
        config.path_hop_cap,
    )
}

/// Holder of the most recent [`GraphSnapshot`], refreshing it on demand
/// and reporting rebuild/patch telemetry.
///
/// `snapshot()` takes `&self` (interior `RwLock`), so an owner exposing it
/// through shared references stays queryable from parallel readers; all
/// callers inside one cycle receive clones of the same `Arc`.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Option<Arc<GraphSnapshot>>>,
    /// Explicit shard count; `None` uses [`default_shard_count`].
    shard_count: Option<usize>,
    /// Full or partial rebuilds performed (`snapshot_rebuilds_total`).
    rebuilds: Counter,
    /// Incremental row-patch refreshes (`snapshot_patches_total`).
    patches: Counter,
    /// Wall-clock seconds per rebuild (`snapshot_rebuild_seconds`).
    rebuild_seconds: Histogram,
    /// CSR + interest heap bytes per node (`snapshot_bytes_per_node`),
    /// updated after every refresh.
    bytes_per_node: Gauge,
    /// Destination for [`Event::SnapshotRebuild`]; disabled by default.
    sink: EventSink,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore {
            current: RwLock::new(None),
            shard_count: None,
            rebuilds: Counter::detached(),
            patches: Counter::detached(),
            rebuild_seconds: Histogram::detached(),
            bytes_per_node: Gauge::detached(),
            sink: EventSink::disabled(),
        }
    }
}

/// Cloning a store yields an **empty** store with the same shard policy
/// (same rationale as the coefficient cache: the clone may be paired with
/// a diverging copy of the graph, and snapshots are semantically
/// transparent).
impl Clone for SnapshotStore {
    fn clone(&self) -> Self {
        SnapshotStore {
            shard_count: self.shard_count,
            ..SnapshotStore::default()
        }
    }
}

impl SnapshotStore {
    /// An empty store; the first [`SnapshotStore::snapshot`] call builds,
    /// with the adaptive [`default_shard_count`] for the graph's size.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// An empty store whose snapshots are partitioned into at most `p`
    /// node-range shards (rows split into ranges of `ceil(n / p)`, so the
    /// realized count can round down). Results are bit-for-bit identical for every
    /// `p ≥ 1`; the shard count trades refresh granularity (structural
    /// churn rebuilds only dirty shards) against per-shard overhead.
    pub fn with_shards(p: usize) -> Self {
        SnapshotStore {
            shard_count: Some(p.max(1)),
            ..SnapshotStore::default()
        }
    }

    /// Re-homes the rebuild/patch counters onto `telemetry`'s registry
    /// (`snapshot_rebuilds_total` / `snapshot_patches_total`, counts
    /// migrated), registers the `snapshot_rebuild_seconds` histogram and
    /// the `snapshot_bytes_per_node` gauge, and routes `snapshot_rebuild`
    /// events to its sink.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        for (cell, name) in [
            (&mut self.rebuilds, "snapshot_rebuilds_total"),
            (&mut self.patches, "snapshot_patches_total"),
        ] {
            let registered = registry.counter(name);
            if !registered.same_cell(cell) {
                registered.add(cell.get());
                *cell = registered;
            }
        }
        self.rebuild_seconds = registry.histogram("snapshot_rebuild_seconds");
        self.bytes_per_node = registry.gauge("snapshot_bytes_per_node");
        self.sink = telemetry.sink().clone();
    }

    /// The current snapshot for the given state and config, refreshed if
    /// stale. Hold the returned `Arc` for the whole read cycle — repeated
    /// calls are cheap (`Arc` clone after one epoch comparison) but each
    /// re-validates against the live epochs.
    pub fn snapshot(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        profiles: &[InterestProfile],
        profiles_version: u64,
        config: ClosenessConfig,
    ) -> Arc<GraphSnapshot> {
        if let Some(cur) = &*self.current.read() {
            if cur.is_fresh(graph, interactions, profiles_version, config) {
                return Arc::clone(cur);
            }
        }
        let mut slot = self.current.write();
        if let Some(cur) = &*slot {
            if cur.is_fresh(graph, interactions, profiles_version, config) {
                return Arc::clone(cur); // refreshed while we waited
            }
        }
        let started = Instant::now();
        let (snapshot, outcome) = match &*slot {
            Some(prev) => GraphSnapshot::refreshed(
                prev,
                graph,
                interactions,
                profiles,
                profiles_version,
                config,
            ),
            None => (
                GraphSnapshot::build_with_shards(
                    graph,
                    interactions,
                    profiles,
                    profiles_version,
                    config,
                    self.shard_count
                        .unwrap_or_else(|| default_shard_count(graph.node_count())),
                ),
                RefreshOutcome::Rebuilt {
                    structural_dirty: None,
                },
            ),
        };
        match outcome {
            RefreshOutcome::Patched { .. } => self.patches.inc(),
            RefreshOutcome::Rebuilt { structural_dirty } => {
                self.rebuilds.inc();
                self.rebuild_seconds
                    .observe(started.elapsed().as_secs_f64());
                if let Some(dirty_nodes) = structural_dirty {
                    if self.sink.is_enabled() {
                        self.sink.emit(Event::SnapshotRebuild {
                            dirty_nodes: dirty_nodes as u64,
                        });
                    }
                }
            }
        }
        self.bytes_per_node.set(snapshot.bytes_per_node());
        let arc = Arc::new(snapshot);
        *slot = Some(Arc::clone(&arc));
        arc
    }

    /// Drop the held snapshot; the next [`SnapshotStore::snapshot`] call
    /// rebuilds from scratch.
    pub fn invalidate(&self) {
        *self.current.write() = None;
    }

    /// `(rebuilds, patches)` performed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.rebuilds.get(), self.patches.get())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::closeness::ClosenessModel;
    use crate::interest::{
        similarity as live_similarity, weighted_similarity as live_weighted, InterestId,
        InterestSet,
    };
    use crate::relationship::Relationship;

    /// The hand-computable fixture shared with `closeness::tests`.
    fn fixture() -> (SocialGraph, InteractionTracker) {
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        let mut t = InteractionTracker::new(5);
        t.record(NodeId(0), NodeId(1), 6.0);
        t.record(NodeId(0), NodeId(3), 2.0);
        t.record(NodeId(1), NodeId(0), 1.0);
        t.record(NodeId(1), NodeId(2), 3.0);
        t.record(NodeId(3), NodeId(0), 1.0);
        t.record(NodeId(3), NodeId(2), 1.0);
        t.record(NodeId(2), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 2.0);
        (g, t)
    }

    fn profiles() -> Vec<InterestProfile> {
        let mut p: Vec<InterestProfile> = vec![
            InterestProfile::new(InterestSet::from_ids([1, 2, 3])),
            InterestProfile::new(InterestSet::from_ids([2, 3])),
            InterestProfile::new(InterestSet::from_ids([7, 70])),
            InterestProfile::new(InterestSet::new()),
            InterestProfile::new(InterestSet::from_ids([1, 70])),
        ];
        p[0].record_requests(InterestId(1), 3);
        p[0].record_requests(InterestId(9), 1);
        p[1].record_requests(InterestId(2), 4);
        p[2].record_requests(InterestId(70), 2);
        p[4].record_requests(InterestId(70), 5);
        p
    }

    #[test]
    fn snapshot_matches_live_model_on_fixture() {
        let (g, t) = fixture();
        let p = profiles();
        for config in [
            ClosenessConfig::default(),
            ClosenessConfig::weighted(0.8),
            ClosenessConfig {
                path_hop_cap: None,
                ..ClosenessConfig::default()
            },
        ] {
            let snap = GraphSnapshot::build(&g, &t, &p, 0, config);
            let model = ClosenessModel::new(&g, &t, config);
            for i in 0..5u32 {
                for j in 0..5u32 {
                    let (a, b) = (NodeId(i), NodeId(j));
                    assert_eq!(
                        snap.closeness(a, b).to_bits(),
                        model.closeness(a, b).to_bits(),
                        "Ωc({a},{b})"
                    );
                    assert_eq!(
                        snap.adjacent_closeness(a, b).to_bits(),
                        model.adjacent_closeness(a, b).to_bits()
                    );
                    assert_eq!(
                        snap.similarity(a, b).to_bits(),
                        live_similarity(p[i as usize].declared(), p[j as usize].declared())
                            .to_bits(),
                        "Ωs({a},{b})"
                    );
                    assert_eq!(
                        snap.weighted_similarity(a, b).to_bits(),
                        live_weighted(&p[i as usize], &p[j as usize]).to_bits(),
                        "weighted Ωs({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_kernels_match_per_pair_queries() {
        let (g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let snap = GraphSnapshot::build(&g, &t, &p, 0, config);
        let targets: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        for i in 0..5u32 {
            let batched = snap.closeness_to_all(NodeId(i), &targets);
            for (j, v) in batched.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    snap.closeness(NodeId(i), NodeId(j as u32)).to_bits()
                );
            }
        }
        let pairs: Vec<(NodeId, NodeId)> = (0..5u32)
            .flat_map(|i| (0..5u32).map(move |j| (NodeId(i), NodeId(j))))
            .collect();
        let bulk = snap.closeness_for_pairs(&pairs);
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(bulk[idx].to_bits(), snap.closeness(a, b).to_bits());
        }
    }

    #[test]
    fn eq4_fallback_served_by_single_bfs_matches_model() {
        // Path 0-1-2-3-4-5: pairs ≥2 hops apart with no common friends all
        // fall through to Eq. (4).
        let mut g = SocialGraph::new(6);
        let mut t = InteractionTracker::new(6);
        for v in 0..5u32 {
            g.add_relationship(NodeId(v), NodeId(v + 1), Relationship::friendship());
            t.record(NodeId(v), NodeId(v + 1), (v + 1) as f64);
            t.record(NodeId(v + 1), NodeId(v), 1.0);
        }
        for config in [
            ClosenessConfig::default(),
            ClosenessConfig {
                path_hop_cap: Some(2),
                ..ClosenessConfig::default()
            },
            ClosenessConfig {
                path_hop_cap: None,
                ..ClosenessConfig::default()
            },
        ] {
            let snap = GraphSnapshot::build(&g, &t, &[], 0, config);
            let model = ClosenessModel::new(&g, &t, config);
            let targets: Vec<NodeId> = (0..6u32).map(NodeId).collect();
            for i in 0..6u32 {
                let batched = snap.closeness_to_all(NodeId(i), &targets);
                for (j, &value) in batched.iter().enumerate() {
                    assert_eq!(
                        value.to_bits(),
                        model.closeness(NodeId(i), NodeId(j as u32)).to_bits(),
                        "Ωc({i},{j}) cap={:?}",
                        config.path_hop_cap
                    );
                }
            }
        }
    }

    #[test]
    fn interaction_dirt_is_patched_not_rebuilt() {
        let (g, mut t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        t.record(NodeId(0), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 1.0);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 0, config);
        assert_eq!(outcome, RefreshOutcome::Patched { rows: 2 });
        let model = ClosenessModel::new(&g, &t, config);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(
                    next.closeness(NodeId(i), NodeId(j)).to_bits(),
                    model.closeness(NodeId(i), NodeId(j)).to_bits()
                );
            }
        }
        assert!(next.is_fresh(&g, &t, 0, config));
        assert!(!prev.is_fresh(&g, &t, 0, config));
    }

    #[test]
    fn structural_change_forces_rebuild_with_dirty_count() {
        let (mut g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        g.add_relationship(NodeId(1), NodeId(4), Relationship::friendship());
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 0, config);
        assert_eq!(
            outcome,
            RefreshOutcome::Rebuilt {
                structural_dirty: Some(2)
            }
        );
        let model = ClosenessModel::new(&g, &t, config);
        assert_eq!(
            next.closeness(NodeId(0), NodeId(4)).to_bits(),
            model.closeness(NodeId(0), NodeId(4)).to_bits()
        );
    }

    #[test]
    fn config_switch_rebuilds_without_structural_event() {
        let (g, t) = fixture();
        let prev = GraphSnapshot::build(&g, &t, &[], 0, ClosenessConfig::default());
        let weighted = ClosenessConfig::weighted(0.6);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &[], 0, weighted);
        assert_eq!(
            outcome,
            RefreshOutcome::Rebuilt {
                structural_dirty: None
            }
        );
        let model = ClosenessModel::new(&g, &t, weighted);
        assert_eq!(
            next.closeness(NodeId(0), NodeId(1)).to_bits(),
            model.closeness(NodeId(0), NodeId(1)).to_bits()
        );
    }

    #[test]
    fn profile_version_bump_repatches_interest_tables() {
        let (g, t) = fixture();
        let mut p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        p[3].declared_mut().insert(InterestId(2));
        p[3].record_requests(InterestId(2), 9);
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 1, config);
        assert_eq!(outcome, RefreshOutcome::Patched { rows: 0 });
        assert_eq!(
            next.similarity(NodeId(3), NodeId(1)).to_bits(),
            live_similarity(p[3].declared(), p[1].declared()).to_bits()
        );
        assert_eq!(
            next.weighted_similarity(NodeId(3), NodeId(1)).to_bits(),
            live_weighted(&p[3], &p[1]).to_bits()
        );
        // The stale snapshot still reports the old tables.
        assert_eq!(prev.similarity(NodeId(3), NodeId(1)), 0.0);
    }

    #[test]
    fn store_serves_same_arc_until_epochs_move() {
        let (g, mut t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let store = SnapshotStore::new();
        let a = store.snapshot(&g, &t, &p, 0, config);
        let b = store.snapshot(&g, &t, &p, 0, config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats(), (1, 0));
        t.record(NodeId(0), NodeId(1), 1.0);
        let c = store.snapshot(&g, &t, &p, 0, config);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.stats(), (1, 1), "interaction dirt must patch");
        store.invalidate();
        let _ = store.snapshot(&g, &t, &p, 0, config);
        assert_eq!(store.stats(), (2, 1));
        assert!(store.clone().stats() == (0, 0), "clones start empty");
    }

    #[test]
    fn store_attach_migrates_counts_and_emits_rebuild_events() {
        let (mut g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let mut store = SnapshotStore::new();
        let _ = store.snapshot(&g, &t, &p, 0, config);
        assert_eq!(store.stats(), (1, 0));

        let telemetry = Telemetry::with_sink(EventSink::in_memory());
        store.attach_telemetry(&telemetry);
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("snapshot_rebuilds_total"), 1);
        assert_eq!(snap.counter("snapshot_patches_total"), 0);
        // Idempotent re-attach.
        store.attach_telemetry(&telemetry);
        assert_eq!(
            telemetry
                .registry()
                .snapshot()
                .counter("snapshot_rebuilds_total"),
            1
        );

        // A structural flush forces a rebuild and reports the dirty count.
        g.add_relationship(NodeId(2), NodeId(4), Relationship::friendship());
        let _ = store.snapshot(&g, &t, &p, 0, config);
        let events = telemetry.sink().events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SnapshotRebuild { dirty_nodes: 2 })),
            "expected a snapshot_rebuild event, got {events:?}"
        );
        let after = telemetry.registry().snapshot();
        assert_eq!(after.counter("snapshot_rebuilds_total"), 2);
        assert!(
            after.histogram("snapshot_rebuild_seconds").is_some(),
            "rebuild timings must be recorded"
        );
    }

    #[test]
    fn sharded_build_is_bit_for_bit_equal_across_shard_counts() {
        let (g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        let base = GraphSnapshot::build_with_shards(&g, &t, &p, 0, config, 1);
        for shards in [2, 3, 8, 64] {
            let snap = GraphSnapshot::build_with_shards(&g, &t, &p, 0, config, shards);
            for i in 0..g.node_count() {
                for j in 0..g.node_count() {
                    let (a, b) = (NodeId::from(i), NodeId::from(j));
                    assert_eq!(
                        snap.closeness(a, b).to_bits(),
                        base.closeness(a, b).to_bits(),
                        "closeness({i},{j}) diverged at P={shards}"
                    );
                    assert_eq!(
                        snap.weighted_similarity(a, b).to_bits(),
                        base.weighted_similarity(a, b).to_bits(),
                        "weighted_similarity({i},{j}) diverged at P={shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn structural_refresh_rebuilds_only_shards_owning_dirty_endpoints() {
        let (mut g, t) = fixture();
        let p = profiles();
        let config = ClosenessConfig::default();
        // 5 nodes, 5 shards: one row each.
        let prev = GraphSnapshot::build_with_shards(&g, &t, &p, 0, config, 5);
        assert_eq!(prev.shard_count(), 5);
        g.add_relationship(NodeId(2), NodeId(4), Relationship::friendship());
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 0, config);
        assert_eq!(
            outcome,
            RefreshOutcome::Rebuilt {
                structural_dirty: Some(2)
            }
        );
        // The shards owning rows 2 and 4 were rebuilt; rows 0, 1, 3 still
        // share the previous generation's slabs.
        for i in [0usize, 1, 3] {
            assert!(
                Arc::ptr_eq(&prev.shards[i], &next.shards[i]),
                "clean shard {i} should be Arc-shared across the refresh"
            );
        }
        for i in [2usize, 4] {
            assert!(
                !Arc::ptr_eq(&prev.shards[i], &next.shards[i]),
                "dirty shard {i} must have been rebuilt"
            );
        }
        // And the partially rebuilt snapshot equals a from-scratch build.
        let fresh = GraphSnapshot::build_with_shards(&g, &t, &p, 0, config, 5);
        for i in 0..g.node_count() {
            for j in 0..g.node_count() {
                let (a, b) = (NodeId::from(i), NodeId::from(j));
                assert_eq!(
                    next.closeness(a, b).to_bits(),
                    fresh.closeness(a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn store_with_shards_reports_bytes_per_node() {
        let (g, t) = fixture();
        let p = profiles();
        let store = SnapshotStore::with_shards(4);
        let snap = store.snapshot(&g, &t, &p, 0, ClosenessConfig::default());
        // ceil(5 / 4) = 2 rows per shard → 3 shards cover 5 nodes.
        assert_eq!(snap.shard_count(), 3);
        assert!(snap.bytes() > 0);
        assert!(snap.bytes_per_node() > 0.0);
    }

    #[test]
    fn node_growth_patches_with_empty_rows() {
        let (mut g, mut t) = fixture();
        let mut p = profiles();
        let config = ClosenessConfig::default();
        let prev = GraphSnapshot::build(&g, &t, &p, 0, config);
        let v = g.add_node();
        t.ensure_nodes(g.node_count());
        p.push(InterestProfile::new(InterestSet::from_ids([2])));
        let (next, outcome) = GraphSnapshot::refreshed(&prev, &g, &t, &p, 1, config);
        assert!(matches!(outcome, RefreshOutcome::Patched { .. }));
        assert_eq!(next.node_count(), 6);
        assert_eq!(next.closeness(v, NodeId(0)), 0.0);
        assert_eq!(
            next.similarity(v, NodeId(1)).to_bits(),
            live_similarity(p[v.index()].declared(), p[1].declared()).to_bits()
        );
    }
}
