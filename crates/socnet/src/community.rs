//! Community structure analysis of the social graph.
//!
//! The paper's related work surveys structure-based Sybil/collusion
//! defenses (SybilGuard, SybilLimit, SumUp, …) which exploit the
//! *"disproportionately-small cut"* between a colluding/Sybil region and
//! the honest region, and notes that community-detection algorithms can
//! serve as such defenses. This module provides the structural toolkit:
//!
//! * [`label_propagation`] — near-linear-time community detection;
//! * [`conductance`] — the cut metric those defenses threshold on;
//! * [`modularity`] — partition quality.
//!
//! These complement SocialTrust (the `ext_community` experiment compares
//! what pure structure sees against what the behavioral detector sees).

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

use crate::graph::SocialGraph;
use crate::NodeId;

/// Asynchronous label propagation (Raghavan et al., 2007): every node
/// starts in its own community and repeatedly adopts the most common label
/// among its neighbors (ties broken toward the smallest label for
/// determinism), visiting nodes in an `rng`-shuffled order each round.
///
/// Returns a label per node; nodes sharing a label are one community.
/// Isolated nodes keep their own label. Runs at most `max_rounds` rounds
/// or until no label changes.
pub fn label_propagation<R: Rng + ?Sized>(
    g: &SocialGraph,
    max_rounds: usize,
    rng: &mut R,
) -> Vec<u32> {
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..max_rounds {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            let neighbors = g.neighbors(NodeId::from(v));
            if neighbors.is_empty() {
                continue;
            }
            // Count neighbor labels; weight by relationship count so that
            // heavily-linked pairs (colluder cliques!) pull harder.
            let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
            for &w in neighbors {
                let weight = g.relationship_count(NodeId::from(v), w).max(1);
                *counts.entry(labels[w.index()]).or_insert(0) += weight;
            }
            // Most common label, smallest label on ties (BTreeMap order).
            let (&best, _) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .expect("non-empty");
            if labels[v] != best {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Group nodes by label into communities, sorted by size descending.
pub fn communities(labels: &[u32]) -> Vec<Vec<NodeId>> {
    let mut map: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    for (v, &l) in labels.iter().enumerate() {
        map.entry(l).or_default().push(NodeId::from(v));
    }
    let mut out: Vec<Vec<NodeId>> = map.into_values().collect();
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    out
}

/// Conductance of a node set `s`: `cut(S, V∖S) / min(vol(S), vol(V∖S))`,
/// where volumes are edge-endpoint counts. Low conductance = the set is
/// separated from the rest by a disproportionately small cut — the Sybil /
/// colluding-collective signature.
///
/// Returns `1.0` for empty or full sets (no meaningful cut).
pub fn conductance(g: &SocialGraph, s: &[NodeId]) -> f64 {
    let n = g.node_count();
    if s.is_empty() || s.len() >= n {
        return 1.0;
    }
    let mut in_set = vec![false; n];
    for &v in s {
        in_set[v.index()] = true;
    }
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    let mut vol_rest = 0usize;
    for v in g.nodes() {
        let deg = g.degree(v);
        if in_set[v.index()] {
            vol_s += deg;
            for &w in g.neighbors(v) {
                if !in_set[w.index()] {
                    cut += 1;
                }
            }
        } else {
            vol_rest += deg;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        return 1.0;
    }
    cut as f64 / denom as f64
}

/// Newman modularity `Q` of a labeling:
/// `Q = Σ_c (e_c/m − (d_c/2m)²)` with `e_c` intra-community edges, `d_c`
/// total degree of community `c`, `m` total edges. Higher = stronger
/// community structure.
pub fn modularity(g: &SocialGraph, labels: &[u32]) -> f64 {
    let m = g.edge_count();
    if m == 0 {
        return 0.0;
    }
    let mut intra: BTreeMap<u32, usize> = BTreeMap::new();
    let mut degree: BTreeMap<u32, usize> = BTreeMap::new();
    for (a, b, _) in g.edges() {
        if labels[a.index()] == labels[b.index()] {
            *intra.entry(labels[a.index()]).or_insert(0) += 1;
        }
    }
    for v in g.nodes() {
        *degree.entry(labels[v.index()]).or_insert(0) += g.degree(v);
    }
    let m = m as f64;
    degree
        .iter()
        .map(|(c, &d)| {
            let e_c = intra.get(c).copied().unwrap_or(0) as f64;
            e_c / m - (d as f64 / (2.0 * m)).powi(2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{add_clique, connected_random_graph};
    use crate::relationship::Relationship;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Two 6-cliques joined by a single bridge edge.
    fn barbell() -> SocialGraph {
        let mut g = SocialGraph::new(12);
        let mut r = rng(1);
        let left: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let right: Vec<NodeId> = (6..12u32).map(NodeId).collect();
        add_clique(&mut g, &left, (1, 1), &mut r);
        add_clique(&mut g, &right, (1, 1), &mut r);
        g.add_relationship(NodeId(5), NodeId(6), Relationship::friendship());
        g
    }

    #[test]
    fn label_propagation_splits_the_barbell() {
        let g = barbell();
        let labels = label_propagation(&g, 20, &mut rng(2));
        let comms = communities(&labels);
        assert_eq!(comms.len(), 2, "two cliques ⇒ two communities: {comms:?}");
        assert_eq!(comms[0].len(), 6);
        assert_eq!(comms[1].len(), 6);
        // The cliques are intact.
        let l0 = labels[0];
        assert!((0..6).all(|v| labels[v] == l0));
        assert!((6..12).all(|v| labels[v] == labels[6]));
        assert_ne!(l0, labels[6]);
    }

    #[test]
    fn clique_set_has_low_conductance() {
        let g = barbell();
        let left: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let phi = conductance(&g, &left);
        // One cut edge over volume 2·15+1: far below 0.1.
        assert!(phi < 0.1, "φ = {phi}");
        // A random split of the same size cuts much more.
        let mixed: Vec<NodeId> = [0u32, 1, 2, 6, 7, 8].map(NodeId).to_vec();
        assert!(conductance(&g, &mixed) > phi * 3.0);
    }

    #[test]
    fn conductance_degenerate_cases() {
        let g = barbell();
        assert_eq!(conductance(&g, &[]), 1.0);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(conductance(&g, &all), 1.0);
        // Isolated node set in an empty graph.
        let empty = SocialGraph::new(3);
        assert_eq!(conductance(&empty, &[NodeId(0)]), 1.0);
    }

    #[test]
    fn modularity_favors_the_true_partition() {
        let g = barbell();
        let good: Vec<u32> = (0..12).map(|v| if v < 6 { 0 } else { 1 }).collect();
        let bad: Vec<u32> = (0..12).map(|v| (v % 2) as u32).collect();
        let single: Vec<u32> = vec![0; 12];
        assert!(modularity(&g, &good) > modularity(&g, &bad));
        assert!(modularity(&g, &good) > modularity(&g, &single));
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = SocialGraph::new(4);
        assert_eq!(modularity(&g, &[0, 0, 1, 1]), 0.0);
    }

    #[test]
    fn label_propagation_is_total_and_terminates() {
        let mut r = rng(3);
        let g = connected_random_graph(80, 5.0, (1, 2), &mut r);
        let labels = label_propagation(&g, 30, &mut r);
        assert_eq!(labels.len(), 80);
        let comms = communities(&labels);
        let total: usize = comms.iter().map(|c| c.len()).sum();
        assert_eq!(total, 80, "every node belongs to exactly one community");
    }

    #[test]
    fn isolated_nodes_keep_their_own_label() {
        let g = SocialGraph::new(3);
        let labels = label_propagation(&g, 10, &mut rng(4));
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn heavy_clique_relationships_pull_harder() {
        // A node bridging a multi-relationship pair and a single-edge pair
        // joins the heavier side.
        let mut g = SocialGraph::new(4);
        for _ in 0..4 {
            g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        }
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        let labels = label_propagation(&g, 20, &mut rng(5));
        assert_eq!(labels[0], labels[1], "the 4-relationship pair must merge");
    }
}
