//! The undirected, multi-relationship social graph (the paper's "personal
//! network").
//!
//! Each edge carries a list of [`Relationship`]s; `m(i,j)` in Equation (2)
//! is the length of that list. Neighbor lists are kept sorted so that common
//! friends (needed by Equation (3)) can be computed by a linear merge.
//!
//! Storage is deliberately map-free on the hot path: adjacency is a sorted
//! `u32`-id slice per node with a *parallel* edge-id slice, and the
//! relationship lists live in an id-indexed arena with a free list. Looking
//! up `relationships(a, b)` is one binary search on `a`'s row — no hashing,
//! no `(a, b)` key materialization — and the whole structure is a handful
//! of flat `Vec`s whose footprint [`SocialGraph::bytes`] can account for
//! exactly.

use crate::dirty::{DirtyDelta, DirtyDeltaRef, DirtyLog};
use crate::relationship::Relationship;
use crate::NodeId;

/// An undirected social graph over dense node ids `0..n`.
///
/// The graph stores, per edge, the list of declared social relationships.
/// It supports the queries SocialTrust needs:
///
/// * adjacency and sorted neighbor lists,
/// * the relationship multiset of an edge (`m(i,j)` and Eq. (10) weights),
/// * common friends of two nodes (`S_i ∩ S_j` in Eq. (3)).
///
/// Self-loops are rejected; parallel *edges* do not exist (adding another
/// relationship to an existing edge extends that edge's relationship list).
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    /// Sorted neighbor ids per node.
    adj: Vec<Vec<NodeId>>,
    /// Edge ids parallel to `adj`: `adj_edge[v][k]` indexes the
    /// relationship list of the edge `(v, adj[v][k])` in `edge_rels`.
    adj_edge: Vec<Vec<u32>>,
    /// Relationship lists by edge id. Slots of removed edges are emptied
    /// and recycled through `free_edges`.
    edge_rels: Vec<Vec<Relationship>>,
    /// Recycled edge-id slots.
    free_edges: Vec<u32>,
    edge_count: usize,
    dirty: DirtyLog,
}

impl SocialGraph {
    /// An empty graph with `n` isolated nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        SocialGraph {
            adj: vec![Vec::new(); n],
            adj_edge: vec![Vec::new(); n],
            edge_rels: Vec::new(),
            free_edges: Vec::new(),
            edge_count: 0,
            dirty: DirtyLog::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Mutation epoch: bumped by every change (`add_node`,
    /// `add_relationship`, `remove_edge`). Two calls observing the same
    /// epoch on the same graph are guaranteed to see identical structure,
    /// which is what [`crate::cache::SocialCoefficientCache`] relies on to
    /// reuse memoized closeness values.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.dirty.epoch()
    }

    /// Alias for [`generation`](Self::generation), in the vocabulary of the
    /// dirty-tracking pipeline.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.dirty.epoch()
    }

    /// Which nodes were touched by mutations after epoch `since` (see
    /// [`DirtyLog::changes_since`]). Edge mutations dirty both endpoints
    /// and carry the `structural` flag; `add_node` dirties only the new
    /// (isolated) node, since it cannot affect any existing path or
    /// neighborhood.
    #[inline]
    pub fn changes_since(&self, since: u64) -> DirtyDelta {
        self.dirty.changes_since(since)
    }

    /// Borrowed, zero-copy variant of
    /// [`changes_since`](Self::changes_since); see
    /// [`DirtyLog::changes_since_ref`].
    #[inline]
    pub fn changes_since_ref(&self, since: u64) -> DirtyDeltaRef<'_> {
        self.dirty.changes_since_ref(since)
    }

    /// Append a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.adj.len());
        self.adj.push(Vec::new());
        self.adj_edge.push(Vec::new());
        // A new node is isolated: it cannot change any existing adjacency,
        // common-friend set, or shortest path, so only the node itself is
        // marked dirty (non-structurally).
        self.dirty.touch([id]);
        id
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from)
    }

    #[inline]
    fn check_node(&self, v: NodeId) {
        assert!(
            v.index() < self.adj.len(),
            "node {v} out of range (graph has {} nodes)",
            self.adj.len()
        );
    }

    /// The edge id of `(a, b)`, if adjacent.
    #[inline]
    fn edge_of(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.adj[a.index()]
            .binary_search(&b)
            .ok()
            .map(|pos| self.adj_edge[a.index()][pos])
    }

    /// Add one relationship between `a` and `b`, creating the edge if it
    /// does not exist yet.
    ///
    /// # Panics
    /// Panics if `a == b` (self-relationships are meaningless) or either
    /// node is out of range.
    pub fn add_relationship(&mut self, a: NodeId, b: NodeId, rel: Relationship) {
        assert!(a != b, "self-relationship on {a} is not allowed");
        self.check_node(a);
        self.check_node(b);
        match self.adj[a.index()].binary_search(&b) {
            Ok(pos) => {
                let e = self.adj_edge[a.index()][pos];
                self.edge_rels[e as usize].push(rel);
            }
            Err(pos) => {
                let e = match self.free_edges.pop() {
                    Some(e) => {
                        self.edge_rels[e as usize].push(rel);
                        e
                    }
                    None => {
                        self.edge_rels.push(vec![rel]);
                        (self.edge_rels.len() - 1) as u32
                    }
                };
                self.adj[a.index()].insert(pos, b);
                self.adj_edge[a.index()].insert(pos, e);
                let pos_b = self.adj[b.index()]
                    .binary_search(&a)
                    .expect_err("edge must be absent from both rows");
                self.adj[b.index()].insert(pos_b, a);
                self.adj_edge[b.index()].insert(pos_b, e);
                self.edge_count += 1;
            }
        }
        self.dirty.touch_structural([a, b]);
    }

    /// Remove the edge between `a` and `b` entirely (all relationships).
    /// Returns the removed relationships, or an empty vector if the edge did
    /// not exist.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Vec<Relationship> {
        self.check_node(a);
        self.check_node(b);
        match self.adj[a.index()].binary_search(&b) {
            Ok(pos) => {
                let e = self.adj_edge[a.index()][pos];
                self.adj[a.index()].remove(pos);
                self.adj_edge[a.index()].remove(pos);
                let pos_b = self.adj[b.index()]
                    .binary_search(&a)
                    .expect("edge must be present in both rows");
                self.adj[b.index()].remove(pos_b);
                self.adj_edge[b.index()].remove(pos_b);
                self.edge_count -= 1;
                self.dirty.touch_structural([a, b]);
                self.free_edges.push(e);
                std::mem::take(&mut self.edge_rels[e as usize])
            }
            Err(_) => Vec::new(),
        }
    }

    /// Are `a` and `b` directly connected (social distance 1)?
    #[inline]
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.check_node(a);
        self.check_node(b);
        if a == b {
            return false;
        }
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// The sorted neighbor list of `v` (the friend set `S_v`).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.check_node(v);
        &self.adj[v.index()]
    }

    /// Degree (number of friends, `|S_v|`).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// The relationships declared on edge `(a, b)`; empty if not adjacent.
    pub fn relationships(&self, a: NodeId, b: NodeId) -> &[Relationship] {
        self.check_node(a);
        self.check_node(b);
        match self.edge_of(a, b) {
            Some(e) => self.edge_rels[e as usize].as_slice(),
            None => &[],
        }
    }

    /// `m(i,j)`: the number of social relationships between `a` and `b`
    /// (0 if not adjacent).
    #[inline]
    pub fn relationship_count(&self, a: NodeId, b: NodeId) -> usize {
        self.relationships(a, b).len()
    }

    /// The common friends `S_a ∩ S_b`, by linear merge of the sorted
    /// neighbor lists. Excludes `a` and `b` themselves (they cannot appear:
    /// no self-loops).
    pub fn common_friends(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        self.check_node(a);
        self.check_node(b);
        let (sa, sb) = (&self.adj[a.index()], &self.adj[b.index()]);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(sa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Iterator over all edges as `(a, b, relationships)` with `a < b`, in
    /// ascending `(a, b)` order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &[Relationship])> + '_ {
        (0..self.adj.len()).flat_map(move |i| {
            let a = NodeId::from(i);
            self.adj[i]
                .iter()
                .zip(&self.adj_edge[i])
                .filter(move |&(&b, _)| a < b)
                .map(move |(&b, &e)| (a, b, self.edge_rels[e as usize].as_slice()))
        })
    }

    /// Approximate heap bytes held by the graph: adjacency rows, edge-id
    /// rows, the relationship arena, and the dirty log.
    pub fn bytes(&self) -> usize {
        let mut total = self.adj.capacity() * std::mem::size_of::<Vec<NodeId>>()
            + self.adj_edge.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.edge_rels.capacity() * std::mem::size_of::<Vec<Relationship>>()
            + self.free_edges.capacity() * std::mem::size_of::<u32>();
        for row in &self.adj {
            total += row.capacity() * std::mem::size_of::<NodeId>();
        }
        for row in &self.adj_edge {
            total += row.capacity() * std::mem::size_of::<u32>();
        }
        for rels in &self.edge_rels {
            total += rels.capacity() * std::mem::size_of::<Relationship>();
        }
        total + self.dirty.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RelationshipKind;

    fn triangle() -> SocialGraph {
        let mut g = SocialGraph::new(3);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(2), Relationship::kinship());
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = SocialGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = SocialGraph::new(2);
        let v = g.add_node();
        assert_eq!(v, NodeId(2));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (a, b, _) in g.edges() {
            assert!(g.are_adjacent(a, b));
            assert!(g.are_adjacent(b, a));
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(0), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(1), Relationship::friendship());
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn multiple_relationships_share_one_edge() {
        let mut g = SocialGraph::new(2);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.relationship_count(NodeId(0), NodeId(1)), 2);
        assert_eq!(g.relationship_count(NodeId(1), NodeId(0)), 2);
        let kinds: Vec<RelationshipKind> = g
            .relationships(NodeId(0), NodeId(1))
            .iter()
            .map(|r| r.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![RelationshipKind::Friendship, RelationshipKind::Colleague]
        );
    }

    #[test]
    fn relationship_count_zero_for_non_adjacent() {
        let g = SocialGraph::new(3);
        assert_eq!(g.relationship_count(NodeId(0), NodeId(2)), 0);
        assert!(!g.are_adjacent(NodeId(0), NodeId(2)));
    }

    #[test]
    fn common_friends_merge() {
        // 0-1, 0-2, 3-1, 3-2, plus 0-4: common friends of 0 and 3 are {1, 2}.
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(4), Relationship::friendship());
        assert_eq!(
            g.common_friends(NodeId(0), NodeId(3)),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(
            g.common_friends(NodeId(3), NodeId(0)),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn common_friends_empty_when_none() {
        let g = triangle();
        // In a triangle, 0 and 1 have exactly one common friend: 2.
        assert_eq!(g.common_friends(NodeId(0), NodeId(1)), vec![NodeId(2)]);
        let g2 = SocialGraph::new(3);
        assert!(g2.common_friends(NodeId(0), NodeId(1)).is_empty());
    }

    #[test]
    fn remove_edge_returns_relationships() {
        let mut g = triangle();
        let removed = g.remove_edge(NodeId(0), NodeId(2));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].kind, RelationshipKind::Kinship);
        assert!(!g.are_adjacent(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_count(), 2);
        // Removing again is a no-op.
        assert!(g.remove_edge(NodeId(0), NodeId(2)).is_empty());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn removed_edge_slot_is_recycled() {
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::kinship());
        g.remove_edge(NodeId(0), NodeId(1));
        // The freed id is reused; the arena does not grow.
        g.add_relationship(NodeId(1), NodeId(2), Relationship::colleague());
        assert_eq!(g.edge_rels.len(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(
            g.relationships(NodeId(1), NodeId(2))[0].kind,
            RelationshipKind::Colleague
        );
        assert_eq!(
            g.relationships(NodeId(2), NodeId(3))[0].kind,
            RelationshipKind::Kinship
        );
        assert!(g.relationships(NodeId(0), NodeId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-relationship")]
    fn self_loop_rejected() {
        let mut g = SocialGraph::new(2);
        g.add_relationship(NodeId(1), NodeId(1), Relationship::friendship());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = SocialGraph::new(2);
        g.add_relationship(NodeId(0), NodeId(5), Relationship::friendship());
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let mut g = SocialGraph::new(2);
        assert_eq!(g.generation(), 0);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        let after_add = g.generation();
        assert!(after_add > 0);
        // Queries never bump.
        let _ = g.are_adjacent(NodeId(0), NodeId(1));
        let _ = g.common_friends(NodeId(0), NodeId(1));
        assert_eq!(g.generation(), after_add);
        // Adding a second relationship to the same edge still bumps.
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        assert!(g.generation() > after_add);
        let before_remove = g.generation();
        g.remove_edge(NodeId(0), NodeId(1));
        assert!(g.generation() > before_remove);
        // No-op removal does not bump.
        let after_remove = g.generation();
        g.remove_edge(NodeId(0), NodeId(1));
        assert_eq!(g.generation(), after_remove);
        let before_node = g.generation();
        g.add_node();
        assert!(g.generation() > before_node);
    }

    #[test]
    fn dirty_set_names_touched_endpoints() {
        use crate::dirty::DirtyDelta;
        let mut g = SocialGraph::new(4);
        let e0 = g.epoch();
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        match g.changes_since(e0) {
            DirtyDelta::Sparse {
                mut nodes,
                structural,
            } => {
                nodes.sort();
                assert_eq!(nodes, vec![NodeId(0), NodeId(1)]);
                assert!(structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        let e1 = g.epoch();
        let v = g.add_node();
        match g.changes_since(e1) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(nodes, vec![v]);
                assert!(!structural, "isolated node add is not structural");
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        assert_eq!(g.changes_since(g.epoch()), DirtyDelta::Clean);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = triangle();
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(a, b, _)| (a, b)).collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2))
            ]
        );
    }

    #[test]
    fn bytes_accounts_for_growth() {
        let empty = SocialGraph::new(0).bytes();
        let mut g = SocialGraph::new(1000);
        for v in 1..1000u32 {
            g.add_relationship(NodeId(0), NodeId(v), Relationship::friendship());
        }
        assert!(g.bytes() > empty);
    }
}
