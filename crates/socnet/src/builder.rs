//! Random social-network generators.
//!
//! These builders produce the social structures used by the paper's
//! experimental setup (Section 5.1) and by the synthetic Overstock trace:
//!
//! * a connected random backbone in which ordinary node pairs share
//!   `[1, 2]` relationships,
//! * colluder cliques whose pairs share `[3, 5]` relationships
//!   (social distance 1 among colluders),
//! * random interest assignments: `total_interests` categories, each node
//!   holding a uniform `[min, max]`-sized subset.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::SocialGraph;
use crate::interest::InterestSet;
use crate::relationship::{Relationship, RelationshipKind};
use crate::NodeId;

/// Draw a random relationship of reasonable kind for generated networks.
fn random_relationship<R: Rng + ?Sized>(rng: &mut R) -> Relationship {
    let kind = *RelationshipKind::ALL.choose(rng).expect("non-empty");
    Relationship::new(kind)
}

/// Add `count` relationships (uniform in `rel_range`) to the edge `(a, b)`.
fn add_relationships<R: Rng + ?Sized>(
    g: &mut SocialGraph,
    a: NodeId,
    b: NodeId,
    rel_range: (usize, usize),
    rng: &mut R,
) {
    let count = rng.gen_range(rel_range.0..=rel_range.1).max(1);
    for _ in 0..count {
        g.add_relationship(a, b, random_relationship(rng));
    }
}

/// Build a **connected** random social graph over `n` nodes.
///
/// Construction: a random spanning tree (guaranteeing connectivity and small
/// diameter for the sizes used here) plus extra uniform random edges until
/// the average degree reaches `avg_degree`. Every edge carries a uniform
/// `rel_range` number of relationships ( `[1, 2]` in the paper's setup).
///
/// # Panics
/// Panics if `n == 0` or `rel_range.0 == 0` or `rel_range.0 > rel_range.1`.
pub fn connected_random_graph<R: Rng + ?Sized>(
    n: usize,
    avg_degree: f64,
    rel_range: (usize, usize),
    rng: &mut R,
) -> SocialGraph {
    assert!(n > 0, "graph needs at least one node");
    assert!(
        rel_range.0 >= 1 && rel_range.0 <= rel_range.1,
        "invalid relationship range {rel_range:?}"
    );
    let mut g = SocialGraph::new(n);
    if n == 1 {
        return g;
    }
    // Random spanning tree: shuffle nodes, connect each to a random earlier
    // node. This yields low-diameter trees in expectation (random recursive
    // tree: O(log n) expected depth).
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for idx in 1..n {
        let parent = order[rng.gen_range(0..idx)];
        add_relationships(
            &mut g,
            NodeId::from(order[idx]),
            NodeId::from(parent),
            rel_range,
            rng,
        );
    }
    // Extra edges to reach the target average degree (2·E/n).
    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
    let mut guard = 0usize;
    while g.edge_count() < target_edges && guard < 50 * target_edges {
        guard += 1;
        let a = NodeId::from(rng.gen_range(0..n));
        let b = NodeId::from(rng.gen_range(0..n));
        if a == b || g.are_adjacent(a, b) {
            continue;
        }
        add_relationships(&mut g, a, b, rel_range, rng);
    }
    g
}

/// Turn `members` into a clique: every pair becomes adjacent with a uniform
/// `rel_range` number of relationships (the paper gives colluders `[3, 5]`
/// relationships and social distance 1).
///
/// Existing edges between members are kept; the clique relationships are
/// added on top only for pairs that were not yet adjacent.
pub fn add_clique<R: Rng + ?Sized>(
    g: &mut SocialGraph,
    members: &[NodeId],
    rel_range: (usize, usize),
    rng: &mut R,
) {
    for (idx, &a) in members.iter().enumerate() {
        for &b in &members[idx + 1..] {
            if !g.are_adjacent(a, b) {
                add_relationships(g, a, b, rel_range, rng);
            }
        }
    }
}

/// Randomly assign interest sets: `total_interests` categories exist; each
/// node gets a uniform `[per_node.0, per_node.1]`-sized random subset.
///
/// This matches the paper's setup: *"the number of total interests in the
/// P2P network was set to 20, and the number of interests for each node was
/// randomly chosen from \[1,10\]"*.
pub fn random_interests<R: Rng + ?Sized>(
    n: usize,
    total_interests: u16,
    per_node: (usize, usize),
    rng: &mut R,
) -> Vec<InterestSet> {
    assert!(total_interests > 0, "need at least one interest category");
    assert!(
        per_node.0 >= 1 && per_node.1 <= total_interests as usize && per_node.0 <= per_node.1,
        "invalid per-node interest range {per_node:?} for {total_interests} categories"
    );
    let all: Vec<u16> = (0..total_interests).collect();
    (0..n)
        .map(|_| {
            let k = rng.gen_range(per_node.0..=per_node.1);
            let chosen: Vec<u16> = all.choose_multiple(rng, k).copied().collect();
            InterestSet::from_ids(chosen)
        })
        .collect()
}

/// Pick a random set of `count` distinct node ids out of `0..n`, excluding
/// any node in `exclude`.
pub fn pick_distinct_nodes<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    exclude: &[NodeId],
    rng: &mut R,
) -> Vec<NodeId> {
    let pool: Vec<NodeId> = (0..n)
        .map(NodeId::from)
        .filter(|v| !exclude.contains(v))
        .collect();
    assert!(
        count <= pool.len(),
        "cannot pick {count} nodes from a pool of {}",
        pool.len()
    );
    pool.choose_multiple(rng, count).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distances_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn connected_graph_is_connected() {
        let mut r = rng(1);
        let g = connected_random_graph(100, 6.0, (1, 2), &mut r);
        let d = distances_from(&g, NodeId(0), None);
        assert!(d.iter().all(|x| x.is_some()), "graph must be connected");
    }

    #[test]
    fn connected_graph_hits_target_degree() {
        let mut r = rng(2);
        let g = connected_random_graph(200, 8.0, (1, 2), &mut r);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (avg - 8.0).abs() < 1.0,
            "average degree {avg} too far from target 8"
        );
    }

    #[test]
    fn relationship_counts_respect_range() {
        let mut r = rng(3);
        let g = connected_random_graph(50, 4.0, (1, 2), &mut r);
        for (a, b, rels) in g.edges() {
            assert!(
                (1..=2).contains(&rels.len()),
                "edge ({a},{b}) has {} relationships",
                rels.len()
            );
        }
    }

    #[test]
    fn single_node_graph() {
        let mut r = rng(4);
        let g = connected_random_graph(1, 4.0, (1, 2), &mut r);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn clique_makes_all_pairs_adjacent_with_heavy_relationships() {
        let mut r = rng(5);
        let mut g = SocialGraph::new(10);
        let members: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        add_clique(&mut g, &members, (3, 5), &mut r);
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                assert!(g.are_adjacent(a, b));
                let m = g.relationship_count(a, b);
                assert!((3..=5).contains(&m), "m({a},{b}) = {m}");
            }
        }
        // Non-members untouched.
        assert_eq!(g.degree(NodeId(9)), 0);
    }

    #[test]
    fn clique_preserves_existing_edges() {
        let mut r = rng(6);
        let mut g = SocialGraph::new(3);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        let members = [NodeId(0), NodeId(1), NodeId(2)];
        add_clique(&mut g, &members, (3, 5), &mut r);
        // Pre-existing edge keeps its single relationship.
        assert_eq!(g.relationship_count(NodeId(0), NodeId(1)), 1);
        assert!(g.relationship_count(NodeId(0), NodeId(2)) >= 3);
    }

    #[test]
    fn interests_respect_ranges() {
        let mut r = rng(7);
        let sets = random_interests(200, 20, (1, 10), &mut r);
        assert_eq!(sets.len(), 200);
        for s in &sets {
            assert!((1..=10).contains(&s.len()));
            assert!(s.as_slice().iter().all(|c| c.0 < 20));
        }
    }

    #[test]
    fn interests_are_diverse() {
        let mut r = rng(8);
        let sets = random_interests(100, 20, (1, 10), &mut r);
        let distinct: std::collections::HashSet<Vec<u16>> = sets
            .iter()
            .map(|s| s.as_slice().iter().map(|c| c.0).collect())
            .collect();
        assert!(
            distinct.len() > 50,
            "interest sets should vary across nodes"
        );
    }

    #[test]
    fn pick_distinct_excludes_and_dedups() {
        let mut r = rng(9);
        let exclude = [NodeId(0), NodeId(1)];
        let picked = pick_distinct_nodes(10, 5, &exclude, &mut r);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "picked nodes must be distinct");
        assert!(picked.iter().all(|v| !exclude.contains(v)));
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let g1 = connected_random_graph(50, 5.0, (1, 2), &mut rng(42));
        let g2 = connected_random_graph(50, 5.0, (1, 2), &mut rng(42));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let mut e1: Vec<(NodeId, NodeId, usize)> =
            g1.edges().map(|(a, b, r)| (a, b, r.len())).collect();
        let mut e2: Vec<(NodeId, NodeId, usize)> =
            g2.edges().map(|(a, b, r)| (a, b, r.len())).collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }
}
