//! Social closeness `Ωc(i,j)` — Equations (2), (3), (4), and (10) of the
//! paper.
//!
//! Closeness combines *declared structure* (how many, and how strong,
//! relationships two users share) with *observed behavior* (how often they
//! actually interact). For adjacent nodes,
//!
//! ```text
//! Eq. (2):  Ωc(i,j) = m(i,j) · f(i,j) / Σ_{k ∈ S_i} f(i,k)
//! ```
//!
//! where `m(i,j)` is the relationship count, `f(i,j)` the directed
//! interaction frequency, and `S_i` node `i`'s friend set. The
//! falsification-resilient variant, Eq. (10), replaces `m(i,j)` with
//! `Σ_l λ^(l-1) · w_{d_l}` — the relationship weights sorted descending and
//! geometrically decayed — so that piling on weak fake relationships barely
//! moves the metric.
//!
//! For non-adjacent nodes with common friends `k ∈ S_i ∩ S_j`:
//!
//! ```text
//! Eq. (3):  Ωc(i,j) = Σ_k (Ωc(i,k) + Ωc(k,j)) / 2
//! ```
//!
//! and when there is no common friend, the fallback (Eq. (4)) is the minimum
//! adjacent closeness along a shortest social path between `i` and `j`.
//!
//! Note that closeness is **directed** (the denominator normalizes by the
//! *rater's* interaction budget) and **not bounded by 1** — `m(i,j)` can
//! exceed 1. Callers that need per-rater normalization (like the Gaussian
//! filter in `socialtrust-core`) compare a pair's closeness against the
//! rater's own closeness distribution, not against a global scale.

use serde::{Deserialize, Serialize};

use crate::distance::shortest_path;
use crate::graph::SocialGraph;
use crate::interaction::InteractionTracker;
use crate::relationship::weighted_relationship_sum;
use crate::NodeId;

/// Configuration for the closeness model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClosenessConfig {
    /// Use the relationship-weighted numerator of Eq. (10) instead of the
    /// plain relationship count of Eq. (2). This is the falsification-
    /// resilient mode of Section 4.4.
    pub weighted_relationships: bool,
    /// The relationship scaling weight `λ ∈ [0.5, 1]` of Eq. (10). Ignored
    /// when `weighted_relationships` is `false`.
    pub lambda: f64,
    /// Hop cap for the Eq. (4) shortest-path fallback. The Overstock trace
    /// shows transactions concentrate within 3 hops, so paths longer than
    /// the cap count as "socially unrelated" (closeness 0). `None` searches
    /// the whole component.
    pub path_hop_cap: Option<u32>,
}

impl Default for ClosenessConfig {
    fn default() -> Self {
        ClosenessConfig {
            weighted_relationships: false,
            lambda: 0.8,
            path_hop_cap: Some(6),
        }
    }
}

impl ClosenessConfig {
    /// The falsification-resilient configuration of Section 4.4
    /// (Eq. (10) numerator with the given `λ`).
    pub fn weighted(lambda: f64) -> Self {
        assert!(
            (0.5..=1.0).contains(&lambda),
            "λ must be in [0.5, 1], got {lambda}"
        );
        ClosenessConfig {
            weighted_relationships: true,
            lambda,
            ..ClosenessConfig::default()
        }
    }
}

/// Computes social closeness `Ωc(i,j)` from a social graph and an
/// interaction tracker.
///
/// The model borrows both inputs; build it fresh whenever you need closeness
/// values (construction is free).
#[derive(Debug, Clone, Copy)]
pub struct ClosenessModel<'a> {
    graph: &'a SocialGraph,
    interactions: &'a InteractionTracker,
    config: ClosenessConfig,
}

impl<'a> ClosenessModel<'a> {
    /// Create a closeness model over `graph` and `interactions`.
    pub fn new(
        graph: &'a SocialGraph,
        interactions: &'a InteractionTracker,
        config: ClosenessConfig,
    ) -> Self {
        ClosenessModel {
            graph,
            interactions,
            config,
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> ClosenessConfig {
        self.config
    }

    /// `Σ_{k ∈ S_i} f(i,k)` — the interaction budget of `i` spent on its
    /// friends (the denominator of Eqs. (2)/(10)).
    fn friend_interaction_total(&self, i: NodeId) -> f64 {
        self.graph
            .neighbors(i)
            .iter()
            .map(|&k| self.interactions.frequency(i, k))
            .sum()
    }

    /// Closeness between *adjacent* nodes — Eq. (2), or Eq. (10) when
    /// `weighted_relationships` is set. Returns `0.0` if the nodes are not
    /// adjacent or `i` has no interactions with any friend.
    pub fn adjacent_closeness(&self, i: NodeId, j: NodeId) -> f64 {
        let rels = self.graph.relationships(i, j);
        if rels.is_empty() {
            return 0.0;
        }
        let numerator = if self.config.weighted_relationships {
            // Adjacency floors the numerator at 1: Section 4.4's resilience
            // argument is that a pair with high interaction frequency keeps
            // a large closeness value no matter how the declared
            // relationships are manipulated. Declaring a single weak-kind
            // relationship must not let a heavily-interacting pair slide
            // under the closeness-band thresholds; the weighting only
            // discounts *additional* (easily faked) relationships relative
            // to the plain count of Eq. (2).
            weighted_relationship_sum(rels, self.config.lambda).max(1.0)
        } else {
            rels.len() as f64
        };
        let total = self.friend_interaction_total(i);
        if total <= 0.0 {
            return 0.0;
        }
        numerator * self.interactions.frequency(i, j) / total
    }

    /// Full closeness `Ωc(i,j)` with the Eq. (3) common-friend rule and the
    /// Eq. (4) path-minimum fallback for non-adjacent pairs.
    ///
    /// Conventions:
    /// * `Ωc(i,i)` is defined as the maximum adjacent closeness of `i`
    ///   (a node is at least as close to itself as to its closest friend);
    ///   in practice raters never rate themselves so this case is inert.
    /// * Disconnected pairs (or pairs beyond `path_hop_cap`) get `0.0`.
    pub fn closeness(&self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return self
                .graph
                .neighbors(i)
                .iter()
                .map(|&k| self.adjacent_closeness(i, k))
                .fold(0.0, f64::max);
        }
        if self.graph.are_adjacent(i, j) {
            return self.adjacent_closeness(i, j);
        }
        let common = self.graph.common_friends(i, j);
        if !common.is_empty() {
            // Eq. (3): friend-of-friend averaging over all common friends.
            return common
                .iter()
                .map(|&k| (self.adjacent_closeness(i, k) + self.adjacent_closeness(k, j)) / 2.0)
                .sum();
        }
        // Eq. (4): minimum adjacent closeness along a shortest social path.
        match shortest_path(self.graph, i, j) {
            Some(path) => {
                if let Some(cap) = self.config.path_hop_cap {
                    if (path.len() as u32).saturating_sub(1) > cap {
                        return 0.0;
                    }
                }
                let min_adjacent = path
                    .windows(2)
                    .map(|w| self.adjacent_closeness(w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                // A degenerate path with no edges would leave the fold at
                // +∞; such a pair has no social evidence, so treat it like
                // a disconnected one. (Any path edge with relationships but
                // zero interactions already yields a finite 0.0 minimum.)
                if min_adjacent.is_finite() {
                    min_adjacent
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Closeness from `i` to every node in `targets`, in order. A thin
    /// convenience over [`ClosenessModel::closeness`].
    pub fn closeness_to_all(&self, i: NodeId, targets: &[NodeId]) -> Vec<f64> {
        targets.iter().map(|&j| self.closeness(i, j)).collect()
    }
}

/// Compute closeness for many `(rater, ratee)` pairs in parallel with Rayon.
///
/// This is the bulk entry point used by the reputation-update path of the
/// simulator: each simulation cycle adjusts every suspicious rating, and the
/// pairs are independent, so the work parallelizes embarrassingly.
pub fn closeness_for_pairs(
    graph: &SocialGraph,
    interactions: &InteractionTracker,
    config: ClosenessConfig,
    pairs: &[(NodeId, NodeId)],
) -> Vec<f64> {
    use rayon::prelude::*;
    pairs
        .par_iter()
        .map(|&(i, j)| ClosenessModel::new(graph, interactions, config).closeness(i, j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::{Relationship, RelationshipKind};

    /// A hand-computable fixture:
    ///
    /// ```text
    ///   0 ──(2 rels)── 1 ──── 2        4 (isolated)
    ///   │                     │
    ///   └───────── 3 ─────────┘
    /// ```
    ///
    /// Interactions: f(0,1)=6, f(0,3)=2, f(1,0)=1, f(1,2)=3, f(3,0)=1,
    /// f(3,2)=1, f(2,1)=2, f(2,3)=2.
    fn fixture() -> (SocialGraph, InteractionTracker) {
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        let mut t = InteractionTracker::new(5);
        t.record(NodeId(0), NodeId(1), 6.0);
        t.record(NodeId(0), NodeId(3), 2.0);
        t.record(NodeId(1), NodeId(0), 1.0);
        t.record(NodeId(1), NodeId(2), 3.0);
        t.record(NodeId(3), NodeId(0), 1.0);
        t.record(NodeId(3), NodeId(2), 1.0);
        t.record(NodeId(2), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 2.0);
        (g, t)
    }

    fn model<'a>(g: &'a SocialGraph, t: &'a InteractionTracker) -> ClosenessModel<'a> {
        ClosenessModel::new(g, t, ClosenessConfig::default())
    }

    #[test]
    fn adjacent_closeness_matches_equation_2() {
        let (g, t) = fixture();
        let m = model(&g, &t);
        // Ωc(0,1) = m(0,1)·f(0,1)/(f(0,1)+f(0,3)) = 2·6/8 = 1.5
        assert!((m.adjacent_closeness(NodeId(0), NodeId(1)) - 1.5).abs() < 1e-12);
        // Ωc(0,3) = 1·2/8 = 0.25
        assert!((m.adjacent_closeness(NodeId(0), NodeId(3)) - 0.25).abs() < 1e-12);
        // Direction matters: Ωc(1,0) = 2·1/(1+3) = 0.5
        assert!((m.adjacent_closeness(NodeId(1), NodeId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjacent_closeness_zero_without_interactions() {
        let mut g = SocialGraph::new(2);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        let t = InteractionTracker::new(2);
        let m = model(&g, &t);
        assert_eq!(m.adjacent_closeness(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn non_adjacent_closeness_uses_common_friends() {
        let (g, t) = fixture();
        let m = model(&g, &t);
        // 0 and 2 are non-adjacent with common friends {1, 3}.
        // Eq. (3): (Ωc(0,1)+Ωc(1,2))/2 + (Ωc(0,3)+Ωc(3,2))/2
        // Ωc(1,2) = 1·3/4 = 0.75 ; Ωc(3,2) = 1·1/2 = 0.5
        let expected = (1.5 + 0.75) / 2.0 + (0.25 + 0.5) / 2.0;
        assert!((m.closeness(NodeId(0), NodeId(2)) - expected).abs() < 1e-12);
    }

    #[test]
    fn path_fallback_takes_minimum_along_path() {
        // Path 0-1-2-3, no common friends between 0 and 3.
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        let mut t = InteractionTracker::new(4);
        t.record(NodeId(0), NodeId(1), 4.0);
        t.record(NodeId(1), NodeId(2), 2.0);
        t.record(NodeId(1), NodeId(0), 2.0);
        t.record(NodeId(2), NodeId(3), 1.0);
        let m = model(&g, &t);
        // Adjacent closenesses along the path: Ωc(0,1)=1·4/4=1,
        // Ωc(1,2)=1·2/4=0.5, Ωc(2,3)=1·1/1=1. Minimum = 0.5.
        assert!((m.closeness(NodeId(0), NodeId(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn path_with_interaction_free_edge_is_zero_not_huge() {
        // Path 0-1-2-3 with no common friends between 0 and 3, where the
        // middle edge carries a relationship but node 1 never interacts:
        // the Eq. (4) minimum must be exactly 0.0 (never f64::MAX or ∞).
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        let mut t = InteractionTracker::new(4);
        t.record(NodeId(0), NodeId(1), 4.0);
        t.record(NodeId(2), NodeId(3), 1.0);
        let m = model(&g, &t);
        // Ωc(1,2) = 0 (node 1 has zero friend interactions), so the path
        // minimum is 0.
        let c = m.closeness(NodeId(0), NodeId(3));
        assert_eq!(c, 0.0);
        assert!(c.is_finite());
    }

    #[test]
    fn disconnected_pair_has_zero_closeness() {
        let (g, t) = fixture();
        let m = model(&g, &t);
        assert_eq!(m.closeness(NodeId(0), NodeId(4)), 0.0);
        assert_eq!(m.closeness(NodeId(4), NodeId(0)), 0.0);
    }

    #[test]
    fn hop_cap_zeroes_long_paths() {
        let mut g = SocialGraph::new(5);
        for i in 0..4u32 {
            g.add_relationship(NodeId(i), NodeId(i + 1), Relationship::friendship());
        }
        let mut t = InteractionTracker::new(5);
        for i in 0..4u32 {
            t.record(NodeId(i), NodeId(i + 1), 1.0);
            t.record(NodeId(i + 1), NodeId(i), 1.0);
        }
        let cfg = ClosenessConfig {
            path_hop_cap: Some(2),
            ..ClosenessConfig::default()
        };
        let m = ClosenessModel::new(&g, &t, cfg);
        // 0 → 4 is 4 hops: beyond the cap, and 0/4 share no common friend.
        assert_eq!(m.closeness(NodeId(0), NodeId(4)), 0.0);
        // 0 → 2 has common friend 1, so the cap is irrelevant there.
        assert!(m.closeness(NodeId(0), NodeId(2)) > 0.0);
    }

    #[test]
    fn self_closeness_is_max_adjacent() {
        let (g, t) = fixture();
        let m = model(&g, &t);
        assert!((m.closeness(NodeId(0), NodeId(0)) - 1.5).abs() < 1e-12);
        assert_eq!(m.closeness(NodeId(4), NodeId(4)), 0.0);
    }

    #[test]
    fn weighted_mode_discounts_weak_relationships() {
        let mut g = SocialGraph::new(2);
        // One strong + three weak relationships.
        g.add_relationship(NodeId(0), NodeId(1), Relationship::kinship());
        for _ in 0..3 {
            g.add_relationship(
                NodeId(0),
                NodeId(1),
                Relationship::with_weight(RelationshipKind::Other, 0.3),
            );
        }
        let mut t = InteractionTracker::new(2);
        t.record(NodeId(0), NodeId(1), 1.0);
        let plain = ClosenessModel::new(&g, &t, ClosenessConfig::default());
        let weighted = ClosenessModel::new(&g, &t, ClosenessConfig::weighted(0.5));
        // Plain count: 4 · 1 = 4. Weighted: 1 + .5·.3 + .25·.3 + .125·.3 = 1.2625.
        assert!((plain.adjacent_closeness(NodeId(0), NodeId(1)) - 4.0).abs() < 1e-12);
        assert!(
            (weighted.adjacent_closeness(NodeId(0), NodeId(1)) - 1.2625).abs() < 1e-12,
            "got {}",
            weighted.adjacent_closeness(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn adding_fake_relationships_barely_moves_weighted_closeness() {
        // Section 4.4's resilience argument, quantified: going from 1 to 10
        // weak relationships multiplies weighted closeness by < 2 when the
        // interaction frequency stays flat (with λ=0.5, w=0.3).
        let build = |extra: usize| {
            let mut g = SocialGraph::new(2);
            g.add_relationship(NodeId(0), NodeId(1), Relationship::kinship());
            for _ in 0..extra {
                g.add_relationship(
                    NodeId(0),
                    NodeId(1),
                    Relationship::with_weight(RelationshipKind::Other, 0.3),
                );
            }
            g
        };
        let mut t = InteractionTracker::new(2);
        t.record(NodeId(0), NodeId(1), 1.0);
        let g1 = build(0);
        let g10 = build(9);
        let c1 = ClosenessModel::new(&g1, &t, ClosenessConfig::weighted(0.5))
            .adjacent_closeness(NodeId(0), NodeId(1));
        let c10 = ClosenessModel::new(&g10, &t, ClosenessConfig::weighted(0.5))
            .adjacent_closeness(NodeId(0), NodeId(1));
        assert!(c10 / c1 < 2.0, "ratio = {}", c10 / c1);
        // While the unweighted count would grow 10×:
        let p1 = ClosenessModel::new(&g1, &t, ClosenessConfig::default())
            .adjacent_closeness(NodeId(0), NodeId(1));
        let p10 = ClosenessModel::new(&g10, &t, ClosenessConfig::default())
            .adjacent_closeness(NodeId(0), NodeId(1));
        assert!((p10 / p1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bulk_pairs_matches_single_calls() {
        let (g, t) = fixture();
        let pairs = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(2)),
            (NodeId(3), NodeId(2)),
            (NodeId(0), NodeId(4)),
        ];
        let bulk = closeness_for_pairs(&g, &t, ClosenessConfig::default(), &pairs);
        let m = model(&g, &t);
        for (idx, &(i, j)) in pairs.iter().enumerate() {
            assert_eq!(bulk[idx], m.closeness(i, j));
        }
    }

    #[test]
    fn closeness_to_all_orders_outputs() {
        let (g, t) = fixture();
        let m = model(&g, &t);
        let targets = [NodeId(1), NodeId(3)];
        let v = m.closeness_to_all(NodeId(0), &targets);
        assert_eq!(v.len(), 2);
        assert!((v[0] - 1.5).abs() < 1e-12);
        assert!((v[1] - 0.25).abs() < 1e-12);
    }
}
