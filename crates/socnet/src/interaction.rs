//! Pairwise interaction-frequency tracking.
//!
//! In a P2P network integrated with a social network, *"an interaction can
//! be regarded as an action that a peer requests a resource from another
//! peer"* (Section 4.1). The closeness Equations (2) and (10) normalize the
//! directed interaction frequency `f(i,j)` by node `i`'s total outgoing
//! interactions `Σ_k f(i,k)`; this makes closeness expensive to fake —
//! inflating one edge deflates every other edge of the same rater.
//!
//! Rows are stored as sorted id/value slice pairs rather than per-node
//! `BTreeMap`s: a frequency probe is one binary search over a contiguous
//! `u32` slice, iteration is ascending by construction, and the whole
//! tracker is flat `Vec`s that [`InteractionTracker::bytes`] can account
//! for exactly.

use serde::{Deserialize, Serialize};

use crate::dirty::{DirtyDelta, DirtyDeltaRef, DirtyLog};
use crate::NodeId;

/// One node's outgoing frequencies: `ids` sorted ascending, `vals`
/// parallel to it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct SparseRow {
    ids: Vec<NodeId>,
    vals: Vec<f64>,
}

impl SparseRow {
    #[inline]
    fn get(&self, to: NodeId) -> f64 {
        match self.ids.binary_search(&to) {
            Ok(pos) => self.vals[pos],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn add(&mut self, to: NodeId, amount: f64) {
        match self.ids.binary_search(&to) {
            Ok(pos) => self.vals[pos] += amount,
            Err(pos) => {
                self.ids.insert(pos, to);
                self.vals.insert(pos, amount);
            }
        }
    }
}

/// Tracks directed interaction frequencies `f(i,j)` between nodes.
///
/// Frequencies are `f64` so callers can record either raw counts or
/// rates (e.g. interactions per month, as in the Overstock trace).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InteractionTracker {
    /// `rows[i]` holds `f(i, ·)` as a sorted id/value pair of slices.
    rows: Vec<SparseRow>,
    /// `totals[i] = Σ_k f(i, k)` (kept incrementally to avoid rescans).
    totals: Vec<f64>,
    /// Epoch + per-node dirty log (see [`InteractionTracker::generation`]).
    /// Serialized along with the frequencies, so a roundtripped tracker
    /// keeps its epoch history.
    dirty: DirtyLog,
}

impl InteractionTracker {
    /// A tracker for `n` nodes with all frequencies zero.
    pub fn new(n: usize) -> Self {
        InteractionTracker {
            rows: vec![SparseRow::default(); n],
            totals: vec![0.0; n],
            dirty: DirtyLog::new(),
        }
    }

    /// Number of nodes tracked.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.totals.len()
    }

    /// Mutation epoch: bumped by every state change (`record`, `clear`,
    /// a growing `ensure_nodes`). Two calls observing the same epoch
    /// on the same tracker see identical frequencies; the closeness cache
    /// ([`crate::cache::SocialCoefficientCache`]) keys its memoized
    /// values on this.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.dirty.epoch()
    }

    /// Alias for [`generation`](Self::generation), in the vocabulary of the
    /// dirty-tracking pipeline.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.dirty.epoch()
    }

    /// Which nodes had their outgoing frequencies changed after epoch
    /// `since`. `record(from, to, _)` dirties only `from`: the closeness
    /// equations consume interaction data exclusively through `f(from, ·)`
    /// and `Σ_k f(from, k)`, both keyed by the initiating node. `clear`
    /// reports [`DirtyDelta::Full`].
    #[inline]
    pub fn changes_since(&self, since: u64) -> DirtyDelta {
        self.dirty.changes_since(since)
    }

    /// Borrowed, zero-copy variant of
    /// [`changes_since`](Self::changes_since); see
    /// [`DirtyLog::changes_since_ref`].
    #[inline]
    pub fn changes_since_ref(&self, since: u64) -> DirtyDeltaRef<'_> {
        self.dirty.changes_since_ref(since)
    }

    /// Grow the tracker to cover at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        let old = self.totals.len();
        if n > old {
            self.rows.resize(n, SparseRow::default());
            self.totals.resize(n, 0.0);
            // New nodes start with zero frequencies, so they cannot change
            // any existing value — but consumers indexing per-node state
            // still need to learn they exist.
            self.dirty.touch((old..n).map(NodeId::from));
        }
    }

    /// Record `amount` additional interactions initiated by `from` toward
    /// `to`.
    ///
    /// # Panics
    /// Panics if `amount` is negative/non-finite or a node is out of range.
    pub fn record(&mut self, from: NodeId, to: NodeId, amount: f64) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "interaction amount must be a finite non-negative number, got {amount}"
        );
        assert!(
            from.index() < self.totals.len() && to.index() < self.totals.len(),
            "node out of range"
        );
        self.rows[from.index()].add(to, amount);
        self.totals[from.index()] += amount;
        // Only `from` is dirtied: closeness reads interaction data solely
        // through f(from, ·) and the outgoing total of `from`.
        self.dirty.touch([from]);
    }

    /// The directed frequency `f(from, to)`.
    #[inline]
    pub fn frequency(&self, from: NodeId, to: NodeId) -> f64 {
        self.rows
            .get(from.index())
            .map(|r| r.get(to))
            .unwrap_or(0.0)
    }

    /// `Σ_k f(from, k)` — the total outgoing interactions of `from`.
    #[inline]
    pub fn total_outgoing(&self, from: NodeId) -> f64 {
        self.totals.get(from.index()).copied().unwrap_or(0.0)
    }

    /// The share `f(from,to) / Σ_k f(from,k)` of `from`'s interactions that
    /// go to `to`; `0.0` when `from` has no interactions at all.
    pub fn normalized_frequency(&self, from: NodeId, to: NodeId) -> f64 {
        let total = self.total_outgoing(from);
        if total <= 0.0 {
            0.0
        } else {
            self.frequency(from, to) / total
        }
    }

    /// Iterate over `(to, f(from,to))` pairs for a given `from` node, in
    /// ascending `to` order.
    pub fn outgoing(&self, from: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.rows
            .get(from.index())
            .into_iter()
            .flat_map(|r| r.ids.iter().copied().zip(r.vals.iter().copied()))
    }

    /// Reset all frequencies to zero, keeping the node count (and the row
    /// allocations, which refill quickly in steady state).
    pub fn clear(&mut self) {
        for r in &mut self.rows {
            r.ids.clear();
            r.vals.clear();
        }
        for t in &mut self.totals {
            *t = 0.0;
        }
        // Every node's frequencies changed at once; cheaper to declare a
        // whole-state mutation than to enumerate all nodes.
        self.dirty.touch_all();
    }

    /// Approximate heap bytes held by the tracker (rows, totals, dirty
    /// log).
    pub fn bytes(&self) -> usize {
        let mut total = self.rows.capacity() * std::mem::size_of::<SparseRow>()
            + self.totals.capacity() * std::mem::size_of::<f64>();
        for r in &self.rows {
            total += r.ids.capacity() * std::mem::size_of::<NodeId>()
                + r.vals.capacity() * std::mem::size_of::<f64>();
        }
        total + self.dirty.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_is_zero() {
        let t = InteractionTracker::new(3);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.frequency(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(t.total_outgoing(NodeId(0)), 0.0);
        assert_eq!(t.normalized_frequency(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn record_accumulates() {
        let mut t = InteractionTracker::new(3);
        t.record(NodeId(0), NodeId(1), 2.0);
        t.record(NodeId(0), NodeId(1), 3.0);
        t.record(NodeId(0), NodeId(2), 5.0);
        assert_eq!(t.frequency(NodeId(0), NodeId(1)), 5.0);
        assert_eq!(t.frequency(NodeId(0), NodeId(2)), 5.0);
        assert_eq!(t.total_outgoing(NodeId(0)), 10.0);
        assert_eq!(t.normalized_frequency(NodeId(0), NodeId(1)), 0.5);
    }

    #[test]
    fn frequencies_are_directed() {
        let mut t = InteractionTracker::new(2);
        t.record(NodeId(0), NodeId(1), 4.0);
        assert_eq!(t.frequency(NodeId(0), NodeId(1)), 4.0);
        assert_eq!(t.frequency(NodeId(1), NodeId(0)), 0.0);
        assert_eq!(t.total_outgoing(NodeId(1)), 0.0);
    }

    #[test]
    fn normalized_shares_sum_to_one() {
        let mut t = InteractionTracker::new(4);
        t.record(NodeId(0), NodeId(1), 1.0);
        t.record(NodeId(0), NodeId(2), 2.0);
        t.record(NodeId(0), NodeId(3), 7.0);
        let sum: f64 = (1..4)
            .map(|j| t.normalized_frequency(NodeId(0), NodeId(j)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ensure_nodes_grows() {
        let mut t = InteractionTracker::new(1);
        t.ensure_nodes(5);
        assert_eq!(t.node_count(), 5);
        t.record(NodeId(4), NodeId(0), 1.0);
        assert_eq!(t.frequency(NodeId(4), NodeId(0)), 1.0);
        // Shrinking is a no-op.
        t.ensure_nodes(2);
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn clear_resets_but_keeps_size() {
        let mut t = InteractionTracker::new(2);
        t.record(NodeId(0), NodeId(1), 3.0);
        t.clear();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.frequency(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(t.total_outgoing(NodeId(0)), 0.0);
    }

    #[test]
    fn outgoing_iterates_pairs_ascending() {
        let mut t = InteractionTracker::new(3);
        t.record(NodeId(0), NodeId(2), 2.0);
        t.record(NodeId(0), NodeId(1), 1.0);
        let pairs: Vec<(NodeId, f64)> = t.outgoing(NodeId(0)).collect();
        assert_eq!(pairs, vec![(NodeId(1), 1.0), (NodeId(2), 2.0)]);
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let mut t = InteractionTracker::new(2);
        assert_eq!(t.generation(), 0);
        t.record(NodeId(0), NodeId(1), 1.0);
        let after_record = t.generation();
        assert!(after_record > 0);
        // Queries never bump.
        let _ = t.frequency(NodeId(0), NodeId(1));
        let _ = t.total_outgoing(NodeId(0));
        assert_eq!(t.generation(), after_record);
        t.clear();
        assert!(t.generation() > after_record);
        let before_grow = t.generation();
        t.ensure_nodes(5);
        assert!(t.generation() > before_grow);
        // Non-growing ensure_nodes is a no-op.
        let after_grow = t.generation();
        t.ensure_nodes(3);
        assert_eq!(t.generation(), after_grow);
    }

    #[test]
    fn dirty_set_names_the_rater_only() {
        use crate::dirty::DirtyDelta;
        let mut t = InteractionTracker::new(3);
        let e0 = t.epoch();
        t.record(NodeId(0), NodeId(1), 1.0);
        match t.changes_since(e0) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(nodes, vec![NodeId(0)]);
                assert!(!structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        t.clear();
        assert_eq!(t.changes_since(e0), DirtyDelta::Full);
        assert_eq!(t.changes_since(t.epoch()), DirtyDelta::Clean);
    }

    #[test]
    fn serde_roundtrip_preserves_frequencies() {
        let mut t = InteractionTracker::new(3);
        t.record(NodeId(0), NodeId(1), 2.5);
        t.record(NodeId(2), NodeId(0), 1.0);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: InteractionTracker = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.frequency(NodeId(0), NodeId(1)), 2.5);
        assert_eq!(back.total_outgoing(NodeId(2)), 1.0);
    }

    #[test]
    fn bytes_accounts_for_rows() {
        let mut t = InteractionTracker::new(100);
        let empty = t.bytes();
        for j in 1..100u32 {
            t.record(NodeId(0), NodeId(j), 1.0);
        }
        assert!(t.bytes() > empty);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amount_rejected() {
        let mut t = InteractionTracker::new(2);
        t.record(NodeId(0), NodeId(1), -1.0);
    }
}
