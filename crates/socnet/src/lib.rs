//! # socialtrust-socnet
//!
//! Social-network substrate for the SocialTrust collusion-deterrence mechanism
//! (Li, Shen & Sapra, *Leveraging Social Networks to Combat Collusion in
//! Reputation Systems for Peer-to-Peer Networks*, IEEE TC 2012 / IPPS 2011).
//!
//! This crate provides everything SocialTrust needs to know about the social
//! side of a P2P network:
//!
//! * [`graph::SocialGraph`] — an undirected multi-relationship social graph
//!   (the paper's "personal network").
//! * [`distance`] — BFS social distance and shortest social paths.
//! * [`interaction::InteractionTracker`] — pairwise interaction frequencies
//!   `f(i,j)` (resource requests between peers).
//! * [`closeness::ClosenessModel`] — social closeness `Ωc(i,j)` implementing
//!   the paper's Equations (2), (3), (4) and the falsification-resilient
//!   weighted variant, Equation (10).
//! * [`cache::SocialCoefficientCache`] — epoch-validated, incrementally
//!   invalidated memoization of the closeness building blocks, so repeat
//!   queries on an unchanged graph are O(1) and sparse mutations only
//!   evict the touched neighborhood.
//! * [`dirty`] — the epoch + per-node dirty-set log that mutation sources
//!   embed so caches can invalidate incrementally.
//! * [`interest`] — interest sets and interest similarity `Ωs(i,j)`
//!   (Equations (1)/(7)) plus the request-weighted variant, Equation (11).
//! * [`snapshot::GraphSnapshot`] — an immutable, epoch-stamped CSR view of
//!   graph + interactions + interest profiles with batched single-source
//!   closeness kernels and bitset similarity, refreshed incrementally by
//!   [`snapshot::SnapshotStore`] for the read-dominated per-cycle sweeps.
//! * [`builder`] — random social-network generators used by the simulator
//!   and the trace substrate.
//!
//! The crate is deliberately self-contained: it has no opinion about
//! reputations or collusion; it only measures social structure.
//!
//! ## Quick example
//!
//! ```
//! use socialtrust_socnet::prelude::*;
//!
//! let mut g = SocialGraph::new(4);
//! let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
//! g.add_relationship(a, b, Relationship::friendship());
//! g.add_relationship(b, c, Relationship::friendship());
//! g.add_relationship(c, d, Relationship::kinship());
//!
//! assert_eq!(socialtrust_socnet::distance::bfs_distance(&g, a, d, None), Some(3));
//!
//! let mut inter = InteractionTracker::new(4);
//! inter.record(a, b, 5.0);
//! let model = ClosenessModel::new(&g, &inter, ClosenessConfig::default());
//! // a and b are adjacent with one relationship and all of a's interactions
//! // going to b, so Eq. (2) gives closeness 1.0.
//! assert!((model.closeness(a, b) - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod closeness;
pub mod community;
pub mod dirty;
pub mod distance;
pub mod graph;
pub mod interaction;
pub mod interest;
pub mod relationship;
pub mod snapshot;

/// Identifier of a node (peer / user) in a social network.
///
/// `NodeId` is a dense index: graphs with `n` nodes use ids `0..n`. Using a
/// newtype (rather than a bare `usize`) keeps node indices from being mixed
/// up with interest ids, counts, and other integers, at zero runtime cost.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing dense per-node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cache::{CacheStats, SocialCoefficientCache};
    pub use crate::closeness::{ClosenessConfig, ClosenessModel};
    pub use crate::distance;
    pub use crate::graph::SocialGraph;
    pub use crate::interaction::InteractionTracker;
    pub use crate::interest::{InterestId, InterestProfile, InterestSet};
    pub use crate::relationship::{Relationship, RelationshipKind};
    pub use crate::snapshot::{GraphSnapshot, RefreshOutcome, SnapshotStore};
    pub use crate::NodeId;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(NodeId::from(42usize), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_id_ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
