//! Social relationship kinds and weights.
//!
//! The paper's Section 4.4 strengthens the closeness metric against falsified
//! profiles by weighting relationship kinds differently: *"kinship
//! relationship should have higher weight than the friendship relationship"*.
//! Each edge in a [`crate::graph::SocialGraph`] carries one or more
//! [`Relationship`]s; Equation (10) combines their weights with a geometric
//! decay `λ^(l-1)` over the list sorted by descending weight.

use serde::{Deserialize, Serialize};

/// The kind of a social relationship between two users.
///
/// Kinds are ordered roughly by the strength of the real-world tie they
/// represent; [`RelationshipKind::default_weight`] encodes that ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationshipKind {
    /// Family tie — the strongest relationship kind.
    Kinship,
    /// Explicit friendship link (accepted friend invitation).
    Friendship,
    /// Work colleagues.
    Colleague,
    /// Classmates (current or former).
    Classmate,
    /// Physical-world neighbours.
    Neighbor,
    /// Members of the same club / team / online community.
    Community,
    /// Any other declared relationship; carries its own weight.
    Other,
}

impl RelationshipKind {
    /// The default weight `w_d` of this relationship kind, in `(0, 1]`.
    ///
    /// Stronger real-world ties get larger weights, per Section 4.4 of the
    /// paper. These values are configuration defaults, not constants of the
    /// algorithm; callers can override the weight per relationship.
    pub fn default_weight(self) -> f64 {
        match self {
            RelationshipKind::Kinship => 1.0,
            RelationshipKind::Friendship => 0.8,
            RelationshipKind::Colleague => 0.7,
            RelationshipKind::Classmate => 0.6,
            RelationshipKind::Neighbor => 0.5,
            RelationshipKind::Community => 0.4,
            RelationshipKind::Other => 0.3,
        }
    }

    /// All concrete kinds, strongest first. Useful for enumeration in tests
    /// and random generation.
    pub const ALL: [RelationshipKind; 7] = [
        RelationshipKind::Kinship,
        RelationshipKind::Friendship,
        RelationshipKind::Colleague,
        RelationshipKind::Classmate,
        RelationshipKind::Neighbor,
        RelationshipKind::Community,
        RelationshipKind::Other,
    ];
}

/// One declared social relationship on an edge of the social graph.
///
/// An edge may carry several relationships (two users can be both kin and
/// colleagues); `m(i,j)` in Equation (2) is the number of relationships on
/// the edge, and Equation (10) replaces that count with a weighted sum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    /// What kind of tie this is.
    pub kind: RelationshipKind,
    /// The weight `w_d ∈ (0, 1]` of this tie. Usually
    /// [`RelationshipKind::default_weight`], but it can be overridden.
    pub weight: f64,
}

impl Relationship {
    /// A relationship of `kind` with that kind's default weight.
    pub fn new(kind: RelationshipKind) -> Self {
        Relationship {
            kind,
            weight: kind.default_weight(),
        }
    }

    /// A relationship of `kind` with an explicit weight.
    ///
    /// # Panics
    /// Panics if `weight` is not finite or not in `(0, 1]`.
    pub fn with_weight(kind: RelationshipKind, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0 && weight <= 1.0,
            "relationship weight must be in (0, 1], got {weight}"
        );
        Relationship { kind, weight }
    }

    /// Shorthand for a default-weight kinship tie.
    pub fn kinship() -> Self {
        Relationship::new(RelationshipKind::Kinship)
    }

    /// Shorthand for a default-weight friendship tie.
    pub fn friendship() -> Self {
        Relationship::new(RelationshipKind::Friendship)
    }

    /// Shorthand for a default-weight colleague tie.
    pub fn colleague() -> Self {
        Relationship::new(RelationshipKind::Colleague)
    }
}

/// Combine the relationship weights of one edge per Equation (10):
/// `Σ_l λ^(l-1) · w_{d_l}` with the list sorted by descending weight.
///
/// `λ ∈ [0.5, 1]` is the relationship scaling weight; larger `λ` lets
/// additional (weaker) relationships contribute more. With `λ = 1` and all
/// weights `1.0` this degenerates to the plain count `m(i,j)` of Eq. (2).
///
/// Returns `0.0` for an empty list (no relationship ⇒ no adjacency).
pub fn weighted_relationship_sum(relationships: &[Relationship], lambda: f64) -> f64 {
    debug_assert!(
        (0.5..=1.0).contains(&lambda),
        "λ must be in [0.5, 1], got {lambda}"
    );
    if relationships.is_empty() {
        return 0.0;
    }
    let mut weights: Vec<f64> = relationships.iter().map(|r| r.weight).collect();
    // Descending by weight, as the paper sorts the relationship list.
    weights.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
    let mut scale = 1.0;
    let mut sum = 0.0;
    for w in weights {
        sum += scale * w;
        scale *= lambda;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_ordered_by_tie_strength() {
        let weights: Vec<f64> = RelationshipKind::ALL
            .iter()
            .map(|k| k.default_weight())
            .collect();
        for pair in weights.windows(2) {
            assert!(pair[0] >= pair[1], "weights must be non-increasing");
        }
        assert!(weights.iter().all(|w| *w > 0.0 && *w <= 1.0));
    }

    #[test]
    fn with_weight_accepts_valid_range() {
        let r = Relationship::with_weight(RelationshipKind::Other, 0.25);
        assert_eq!(r.weight, 0.25);
    }

    #[test]
    #[should_panic(expected = "relationship weight")]
    fn with_weight_rejects_zero() {
        Relationship::with_weight(RelationshipKind::Other, 0.0);
    }

    #[test]
    #[should_panic(expected = "relationship weight")]
    fn with_weight_rejects_above_one() {
        Relationship::with_weight(RelationshipKind::Other, 1.5);
    }

    #[test]
    fn weighted_sum_empty_is_zero() {
        assert_eq!(weighted_relationship_sum(&[], 0.8), 0.0);
    }

    #[test]
    fn weighted_sum_single_equals_weight() {
        let r = [Relationship::kinship()];
        assert_eq!(weighted_relationship_sum(&r, 0.5), 1.0);
    }

    #[test]
    fn weighted_sum_sorts_descending_before_decaying() {
        // weights 0.5 then 1.0 in storage order; sorted descending the sum is
        // 1.0 + λ·0.5 regardless of insertion order.
        let rels = [
            Relationship::with_weight(RelationshipKind::Neighbor, 0.5),
            Relationship::with_weight(RelationshipKind::Kinship, 1.0),
        ];
        let lambda = 0.6;
        let sum = weighted_relationship_sum(&rels, lambda);
        assert!((sum - (1.0 + lambda * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_with_lambda_one_and_unit_weights_is_count() {
        let rels = vec![Relationship::with_weight(RelationshipKind::Other, 1.0); 5];
        assert!((weighted_relationship_sum(&rels, 1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_decays_geometrically() {
        let rels = vec![Relationship::with_weight(RelationshipKind::Other, 1.0); 3];
        let lambda = 0.5;
        let expected = 1.0 + 0.5 + 0.25;
        assert!((weighted_relationship_sum(&rels, lambda) - expected).abs() < 1e-12);
    }
}
