//! Memoization of social-coefficient building blocks, invalidated
//! incrementally by epoch + per-node dirty sets.
//!
//! Closeness queries repeat heavily inside one reputation-update cycle: the
//! detector asks `Ωc(i,j)` for every active rater→ratee pair, the Gaussian
//! baseline asks `Ωc(rater, k)` for every node `k` the rater ever rated, and
//! Eq. (3) re-evaluates the same *adjacent* closeness values once per common
//! friend. All of those recompute `Σ_k f(i,k)` denominators and Eq. (2)
//! numerators from scratch when served by a bare
//! [`ClosenessModel`](crate::closeness::ClosenessModel).
//!
//! [`SocialCoefficientCache`] memoizes the four building blocks —
//! per-rater friend-interaction budgets, adjacent closeness, common-friend
//! sets, and full closeness values (including the Eq. (4) path minima) —
//! validated against the **epoch + dirty-set logs**
//! ([`DirtyLog`](crate::dirty::DirtyLog)) embedded in the [`SocialGraph`]
//! and [`InteractionTracker`] it serves. On the first access after a
//! mutation the cache drains the dirty delta accumulated since its last
//! sync and evicts *only* the entries the touched nodes can influence,
//! keeping the untouched region warm:
//!
//! * **friend totals** of dirty nodes (`Σ_{k∈S_i} f(i,k)` reads only `i`'s
//!   adjacency and outgoing frequencies, and every mutation of either
//!   dirties `i`);
//! * **adjacent closeness** entries with a dirty endpoint (edge mutations
//!   dirty both endpoints, so `m(i,j)` changes are always covered);
//! * **common-friend sets** with a *graph*-dirty endpoint (the set is pure
//!   structure, so interaction dirt never touches it);
//! * **full closeness** entries whose key pair lies within the dirty 2-hop
//!   closure — i.e. an endpoint within one hop of a dirty node. This is
//!   sufficient for the local Eq. (2)/(3) branches: a dirty node `v` can
//!   only perturb Ωc(i,j) by being an endpoint (`v ∈ {i,j}`) or a common
//!   friend (`i,j ∈ S_v`), and in both cases an endpoint is within one hop
//!   of `v`;
//! * **Eq. (4) path entries** are the one genuinely non-local dependency —
//!   an edge mutation can reroute a shortest path between nodes arbitrarily
//!   far away — so each one records the path it minimized over: any
//!   *structural* change (edge add/remove) evicts all of them, while
//!   interaction-only dirt evicts just the entries whose recorded path
//!   visits a dirty node.
//!
//! Cached reads remain equal (bit-for-bit) to a fresh computation — the
//! property tests drive arbitrary interleavings of sparse mutations and
//! queries against a fresh [`ClosenessModel`] to prove it.
//!
//! The memo maps are **sharded into lock-striped segments keyed by the
//! rater** (the first node of the entry key), so concurrent readers and
//! writers from the rayon-parallel detector spread across
//! [`SHARD_COUNT`] `RwLock`s instead of serializing on one. Hit, miss, and
//! eviction counters ([`stats`](SocialCoefficientCache::stats)) are plain
//! atomics, keeping the read path lock-free apart from the per-shard read
//! lock.
//!
//! # Invalidation contract
//!
//! * A cache instance must serve exactly **one** graph/tracker pairing for
//!   its whole life (the [`SocialContext`] in `socialtrust-core` owns all
//!   three together). Passing a *different* graph that happens to share an
//!   epoch with the cached one is undetectable and yields stale values.
//! * The cache holds no references: every method borrows the graph and
//!   tracker for the duration of the call only, so the owning struct stays
//!   freely mutable between calls. Borrow rules then guarantee no query
//!   can overlap a mutation, which is what makes the drain-then-publish
//!   sync step race-free.
//! * All methods take `&self`; interior locking makes the cache safe to
//!   share across rayon workers (the parallel detector and bulk
//!   [`SocialCoefficientCache::closeness_for_pairs`] path do exactly that).
//!   Concurrent misses may compute a value twice, but both computations are
//!   identical, so the last write is indistinguishable from the first.
//!
//! [`SocialContext`]: https://docs.rs/socialtrust-core

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use socialtrust_telemetry::{Counter, Event, EventSink, Telemetry};

use crate::closeness::ClosenessConfig;
use crate::dirty::DirtyDelta;
use crate::distance::shortest_path;
use crate::graph::SocialGraph;
use crate::interaction::InteractionTracker;
use crate::relationship::weighted_relationship_sum;
use crate::NodeId;

/// Number of lock-striped segments the memo maps are sharded into.
/// A power of two so routing is a mask of the rater id.
pub const SHARD_COUNT: usize = 16;

/// Batch evictions of at least this many entries are reported as
/// `eviction_storm` events on an attached telemetry sink. Smaller batches
/// only move the `cache_evictions_total` counter.
pub const EVICTION_STORM_THRESHOLD: u64 = 1024;

#[inline]
fn shard_of(v: NodeId) -> usize {
    v.index() & (SHARD_COUNT - 1)
}

/// Hashable identity of a [`ClosenessConfig`] (`f64` is not `Eq`, so the
/// λ is keyed by its bit pattern).
type ConfigKey = (bool, u64, Option<u32>);

#[inline]
fn config_key(config: ClosenessConfig) -> ConfigKey {
    (
        config.weighted_relationships,
        config.lambda.to_bits(),
        config.path_hop_cap,
    )
}

/// What a memoized closeness value depends on, for targeted eviction.
#[derive(Debug, Clone)]
enum Deps {
    /// The self / adjacent / common-friend branches of Ωc: the value is a
    /// function of the key pair's 1-hop neighborhoods only, so it survives
    /// any mutation whose dirty nodes are all ≥ 2 hops from both endpoints.
    Local,
    /// The Eq. (4) shortest-path fallback (or the disconnected /
    /// hop-cap-exceeded zero, recorded with an empty path): the value
    /// depends on global structure and on the interactions of the recorded
    /// path's nodes.
    Path(Box<[NodeId]>),
}

#[derive(Debug, Clone)]
struct ClosenessEntry {
    value: f64,
    deps: Deps,
}

/// One lock stripe of the memo maps; entries route here by rater id.
#[derive(Debug, Default)]
struct Shard {
    /// `Σ_{k ∈ S_i} f(i,k)` per rater — the Eq. (2)/(10) denominator.
    /// Dense, not a map: the stripe owns exactly the raters with
    /// `index ≡ stripe (mod SHARD_COUNT)`, stored at slot
    /// `index / SHARD_COUNT` with a validity bitset alongside. This is the
    /// hottest lookup in the cache (every adjacent-closeness computation
    /// reads a denominator), and the dense slab turns it into one indexed
    /// load; the slab is kept allocated across full flushes and refilled
    /// in place.
    friend_totals: Vec<f64>,
    /// Bit `slot` set ⇔ `friend_totals[slot]` holds a memoized value.
    friend_valid: Vec<u64>,
    /// Adjacent closeness per (config, i, j) — Eq. (2)/(10).
    adjacent: HashMap<(ConfigKey, NodeId, NodeId), f64>,
    /// Common-friend sets per unordered pair — the `S_i ∩ S_j` of Eq. (3).
    /// Stored as `Arc<[NodeId]>` so cache hits hand back a refcount bump
    /// instead of cloning the whole set.
    common_friends: HashMap<(NodeId, NodeId), Arc<[NodeId]>>,
    /// Full closeness per (config, i, j) — Eqs. (2)/(3)/(4)/(10).
    closeness: HashMap<(ConfigKey, NodeId, NodeId), ClosenessEntry>,
}

impl Shard {
    /// The dense slot of rater `i` inside its owning stripe.
    #[inline]
    fn friend_slot(i: NodeId) -> usize {
        i.index() / SHARD_COUNT
    }

    /// The memoized friend total of `i`, if present. Only meaningful on
    /// `i`'s owning stripe (`shard_of(i)`).
    #[inline]
    fn friend_total(&self, i: NodeId) -> Option<f64> {
        let slot = Self::friend_slot(i);
        let set = self
            .friend_valid
            .get(slot >> 6)
            .is_some_and(|w| w & (1u64 << (slot & 63)) != 0);
        set.then(|| self.friend_totals[slot])
    }

    fn set_friend_total(&mut self, i: NodeId, v: f64) {
        let slot = Self::friend_slot(i);
        if slot >= self.friend_totals.len() {
            self.friend_totals.resize(slot + 1, 0.0);
        }
        let word = slot >> 6;
        if word >= self.friend_valid.len() {
            self.friend_valid.resize(word + 1, 0);
        }
        self.friend_valid[word] |= 1u64 << (slot & 63);
        self.friend_totals[slot] = v;
    }

    /// Drop `i`'s memoized friend total (no-op when absent). Only valid on
    /// `i`'s owning stripe — the same slot index belongs to a *different*
    /// node on every other stripe.
    fn clear_friend_total(&mut self, i: NodeId) {
        let slot = Self::friend_slot(i);
        if let Some(word) = self.friend_valid.get_mut(slot >> 6) {
            *word &= !(1u64 << (slot & 63));
        }
    }

    fn friend_total_count(&self) -> usize {
        self.friend_valid
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    fn entry_count(&self) -> usize {
        self.friend_total_count()
            + self.adjacent.len()
            + self.common_friends.len()
            + self.closeness.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.entry_count();
        // Invalidate the dense slab by zeroing the bitset; the f64 slab
        // itself stays allocated and is refilled in place.
        self.friend_valid.fill(0);
        self.adjacent.clear();
        self.common_friends.clear();
        self.closeness.clear();
        n
    }

    /// Estimated heap bytes held by the stripe. Map entries are costed at
    /// key+value size plus one control byte (the hashbrown layout), so the
    /// figure is an estimate, not an exact allocator measurement.
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.friend_totals.capacity() * size_of::<f64>()
            + self.friend_valid.capacity() * size_of::<u64>()
            + self.adjacent.capacity() * (size_of::<((ConfigKey, NodeId, NodeId), f64)>() + 1)
            + self.common_friends.capacity() * (size_of::<((NodeId, NodeId), Arc<[NodeId]>)>() + 1)
            + self.closeness.capacity()
                * (size_of::<((ConfigKey, NodeId, NodeId), ClosenessEntry)>() + 1)
    }
}

/// Cumulative cache observability counters (see
/// [`SocialCoefficientCache::stats`]). Hits and misses count memo-map
/// lookups at building-block granularity (a single `closeness` call that
/// misses may record several adjacent-closeness lookups underneath);
/// evictions count entries dropped by invalidation, whether targeted or a
/// full flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Memo-map lookups answered from the cache.
    pub hits: u64,
    /// Memo-map lookups that had to compute (and then insert) the value.
    pub misses: u64,
    /// Entries dropped by dirty-set eviction, full flushes, and
    /// [`invalidate`](SocialCoefficientCache::invalidate).
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0 when nothing was
    /// looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise sum, for aggregating stats across runs.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Element-wise saturating difference `self - earlier`, for turning
    /// two lifetime snapshots into a per-cycle (or per-run) delta.
    pub fn delta(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// An epoch-validated, incrementally invalidated memo of social-coefficient
/// building blocks.
///
/// See the [module docs](self) for the eviction rules and the invalidation
/// contract. Construction is free; an empty cache behaves exactly like
/// computing everything through a fresh
/// [`ClosenessModel`](crate::closeness::ClosenessModel), only faster on
/// repeats.
#[derive(Debug)]
pub struct SocialCoefficientCache {
    shards: Vec<RwLock<Shard>>,
    /// Epoch snapshots the current contents are valid for. Published (with
    /// `Release`) only *after* eviction completes, so a racing fast-path
    /// reader can at worst take the slow path spuriously, never observe a
    /// stale entry as fresh.
    graph_epoch: AtomicU64,
    interaction_epoch: AtomicU64,
    /// Serializes the drain-and-evict slow path.
    sync: Mutex<()>,
    /// Hit/miss/eviction tallies. Detached [`Counter`] handles by default;
    /// [`attach_telemetry`](SocialCoefficientCache::attach_telemetry) swaps
    /// in registry-backed handles (`cache_hits_total` etc.), migrating the
    /// accumulated counts.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    /// Destination for `eviction_storm` events; disabled by default.
    sink: EventSink,
}

impl Default for SocialCoefficientCache {
    fn default() -> Self {
        SocialCoefficientCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            graph_epoch: AtomicU64::new(0),
            interaction_epoch: AtomicU64::new(0),
            sync: Mutex::new(()),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
            sink: EventSink::disabled(),
        }
    }
}

/// Cloning a cache yields an **empty** cache: memoized values are
/// semantically transparent, and the clone may be paired with a diverging
/// copy of the graph, so carrying them over would violate the invalidation
/// contract.
impl Clone for SocialCoefficientCache {
    fn clone(&self) -> Self {
        SocialCoefficientCache::new()
    }
}

impl SocialCoefficientCache {
    /// An empty cache.
    pub fn new() -> Self {
        SocialCoefficientCache::default()
    }

    /// The epoch snapshot the current contents were computed under, as
    /// `(graph_epoch, interaction_epoch)`.
    pub fn generations(&self) -> (u64, u64) {
        (
            self.graph_epoch.load(Ordering::Acquire),
            self.interaction_epoch.load(Ordering::Acquire),
        )
    }

    /// Cumulative hit/miss/eviction counters since construction, as a
    /// point-in-time snapshot. Combine two snapshots with
    /// [`CacheStats::delta`] for per-cycle readings.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Re-homes the hit/miss/eviction counters onto `telemetry`'s registry
    /// (`cache_hits_total` / `cache_misses_total` / `cache_evictions_total`)
    /// and routes `eviction_storm` events to its sink. Counts accumulated
    /// before the attach are migrated onto the registry handles, so
    /// [`stats`](SocialCoefficientCache::stats) never goes backwards.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        for (cell, name) in [
            (&mut self.hits, "cache_hits_total"),
            (&mut self.misses, "cache_misses_total"),
            (&mut self.evictions, "cache_evictions_total"),
        ] {
            let registered = registry.counter(name);
            if !registered.same_cell(cell) {
                registered.add(cell.get());
                *cell = registered;
            }
        }
        self.sink = telemetry.sink().clone();
    }

    /// Total number of memoized entries across all shards and maps.
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().entry_count()).sum()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Estimated heap bytes held by the memo structures across all
    /// stripes (dense friend-total slabs plus map storage, costed at the
    /// hashbrown per-entry layout).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.read().bytes()).sum()
    }

    /// Drop every memoized value (the epoch snapshot is kept; the next
    /// access simply refills). Handy for benchmarks that want to measure
    /// the cold, full-flush path.
    pub fn invalidate(&self) {
        let mut dropped = 0usize;
        for shard in &self.shards {
            dropped += shard.write().clear();
        }
        self.record_evictions(dropped as u64, true);
    }

    /// Synchronize with `graph`/`interactions`: drain the dirty deltas
    /// accumulated since the last sync, evict exactly the affected entries
    /// (see the module docs for the rules), and publish the new epoch
    /// snapshot.
    ///
    /// The caller holds shared borrows of both structures for the whole
    /// public-method call, so the epochs cannot move again until the
    /// method returns — values inserted after this check are valid.
    fn ensure_fresh(&self, graph: &SocialGraph, interactions: &InteractionTracker) {
        let (graph_now, inter_now) = (graph.epoch(), interactions.epoch());
        if self.graph_epoch.load(Ordering::Acquire) == graph_now
            && self.interaction_epoch.load(Ordering::Acquire) == inter_now
        {
            return;
        }
        let _guard = self.sync.lock().expect("cache sync lock poisoned");
        let synced_graph = self.graph_epoch.load(Ordering::Acquire);
        let synced_inter = self.interaction_epoch.load(Ordering::Acquire);
        if synced_graph == graph_now && synced_inter == inter_now {
            return; // another thread drained while we waited on the lock
        }
        self.apply_deltas(
            graph,
            graph.changes_since(synced_graph),
            interactions.changes_since(synced_inter),
        );
        self.graph_epoch.store(graph_now, Ordering::Release);
        self.interaction_epoch.store(inter_now, Ordering::Release);
    }

    /// Evict the entries invalidated by a pair of dirty deltas.
    fn apply_deltas(&self, graph: &SocialGraph, graph_delta: DirtyDelta, inter_delta: DirtyDelta) {
        if matches!(graph_delta, DirtyDelta::Full) || matches!(inter_delta, DirtyDelta::Full) {
            let mut dropped = 0usize;
            for shard in &self.shards {
                dropped += shard.write().clear();
            }
            self.record_evictions(dropped as u64, true);
            return;
        }

        // Nodes dirtied structurally (graph) vs. dirtied at all.
        let mut graph_dirty: HashSet<NodeId> = HashSet::new();
        let mut dirty: HashSet<NodeId> = HashSet::new();
        let mut structural = false;
        if let DirtyDelta::Sparse {
            nodes,
            structural: s,
        } = graph_delta
        {
            structural |= s;
            graph_dirty.extend(nodes.iter().copied());
            dirty.extend(nodes);
        }
        if let DirtyDelta::Sparse { nodes, .. } = inter_delta {
            dirty.extend(nodes);
        }
        if dirty.is_empty() {
            return;
        }

        // Pair closure = dirty ∪ N(dirty): a Local closeness entry (i,j)
        // is affected only when a dirty node is an endpoint or a common
        // friend, i.e. when i or j lies within one hop of a dirty node —
        // the pair is then inside the dirty node's 2-hop ball. Computing
        // the closure on the *new* graph is sound because any adjacency
        // change dirties both edge endpoints.
        let mut closure = dirty.clone();
        for &v in &dirty {
            if v.index() < graph.node_count() {
                closure.extend(graph.neighbors(v).iter().copied());
            }
        }

        let mut evicted = 0usize;
        for (stripe, shard) in self.shards.iter().enumerate() {
            let mut s = shard.write();
            let before = s.entry_count();
            for &v in &dirty {
                // Dense slots are stripe-local: only the owning stripe may
                // clear, or we would wipe an unrelated node's slot.
                if shard_of(v) == stripe {
                    s.clear_friend_total(v);
                }
            }
            s.adjacent
                .retain(|(_, i, j), _| !dirty.contains(i) && !dirty.contains(j));
            s.common_friends
                .retain(|(a, b), _| !graph_dirty.contains(a) && !graph_dirty.contains(b));
            s.closeness.retain(|(_, i, j), entry| match &entry.deps {
                Deps::Local => !closure.contains(i) && !closure.contains(j),
                Deps::Path(nodes) => !structural && nodes.iter().all(|w| !dirty.contains(w)),
            });
            evicted += before - s.entry_count();
        }
        self.record_evictions(evicted as u64, false);
    }

    /// Moves the eviction counter and, for batches at or above
    /// [`EVICTION_STORM_THRESHOLD`], reports an
    /// [`Event::EvictionStorm`] on the attached sink.
    fn record_evictions(&self, evicted: u64, full_flush: bool) {
        if evicted == 0 {
            return;
        }
        self.evictions.add(evicted);
        if evicted >= EVICTION_STORM_THRESHOLD && self.sink.is_enabled() {
            self.sink.emit(Event::EvictionStorm {
                evicted,
                full_flush,
            });
        }
    }

    #[inline]
    fn record_hit(&self) {
        self.hits.inc();
    }

    #[inline]
    fn record_miss(&self) {
        self.misses.inc();
    }

    /// Memoized `Σ_{k ∈ S_i} f(i,k)` — node `i`'s interaction budget spent
    /// on its friends (the denominator of Eqs. (2)/(10)).
    pub fn friend_interaction_total(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        i: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        self.friend_total_inner(graph, interactions, i)
    }

    fn friend_total_inner(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        i: NodeId,
    ) -> f64 {
        let shard = &self.shards[shard_of(i)];
        if let Some(v) = shard.read().friend_total(i) {
            self.record_hit();
            return v;
        }
        self.record_miss();
        let v: f64 = graph
            .neighbors(i)
            .iter()
            .map(|&k| interactions.frequency(i, k))
            .sum();
        shard.write().set_friend_total(i, v);
        v
    }

    /// Memoized common-friend set `S_a ∩ S_b` (symmetric; stored once per
    /// unordered pair, sharded by the smaller id). The returned `Arc` is a
    /// cheap refcount clone of the cached slice — hits never copy the set.
    pub fn common_friends(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        a: NodeId,
        b: NodeId,
    ) -> Arc<[NodeId]> {
        self.ensure_fresh(graph, interactions);
        self.common_friends_inner(graph, a, b)
    }

    fn common_friends_inner(&self, graph: &SocialGraph, a: NodeId, b: NodeId) -> Arc<[NodeId]> {
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = &self.shards[shard_of(key.0)];
        if let Some(v) = shard.read().common_friends.get(&key) {
            self.record_hit();
            return Arc::clone(v);
        }
        self.record_miss();
        let v: Arc<[NodeId]> = graph.common_friends(a, b).into();
        shard.write().common_friends.insert(key, Arc::clone(&v));
        v
    }

    /// Memoized adjacent closeness — Eq. (2), or Eq. (10) when
    /// `config.weighted_relationships` is set. Identical (bit-for-bit) to
    /// [`ClosenessModel::adjacent_closeness`](crate::closeness::ClosenessModel::adjacent_closeness).
    pub fn adjacent_closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        self.adjacent_inner(graph, interactions, config, i, j)
    }

    fn adjacent_inner(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        let key = (config_key(config), i, j);
        let shard = &self.shards[shard_of(i)];
        if let Some(&v) = shard.read().adjacent.get(&key) {
            self.record_hit();
            return v;
        }
        self.record_miss();
        let v = self.compute_adjacent(graph, interactions, config, i, j);
        shard.write().adjacent.insert(key, v);
        v
    }

    /// The Eq. (2)/(10) arithmetic, using the memoized denominator. This
    /// mirrors `ClosenessModel::adjacent_closeness` exactly — same numerator
    /// expression, same operation order — so cached and uncached values are
    /// bitwise equal (the property tests assert this).
    fn compute_adjacent(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        let rels = graph.relationships(i, j);
        if rels.is_empty() {
            return 0.0;
        }
        let numerator = if config.weighted_relationships {
            weighted_relationship_sum(rels, config.lambda).max(1.0)
        } else {
            rels.len() as f64
        };
        let total = self.friend_total_inner(graph, interactions, i);
        if total <= 0.0 {
            return 0.0;
        }
        numerator * interactions.frequency(i, j) / total
    }

    /// Memoized full closeness `Ωc(i,j)` — Eq. (3) common-friend averaging
    /// and Eq. (4) path-minimum fallback included. Identical (bit-for-bit)
    /// to [`ClosenessModel::closeness`](crate::closeness::ClosenessModel::closeness).
    pub fn closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        self.closeness_inner(graph, interactions, config, i, j)
    }

    fn closeness_inner(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        let key = (config_key(config), i, j);
        let shard = &self.shards[shard_of(i)];
        if let Some(entry) = shard.read().closeness.get(&key) {
            self.record_hit();
            return entry.value;
        }
        self.record_miss();
        let (value, deps) = self.compute_closeness(graph, interactions, config, i, j);
        shard
            .write()
            .closeness
            .insert(key, ClosenessEntry { value, deps });
        value
    }

    /// The Eq. (3)/(4) dispatch, built from the memoized sub-values. The
    /// control flow and the floating-point evaluation order mirror
    /// `ClosenessModel::closeness` exactly. Alongside the value it returns
    /// which dependency class the entry belongs to, for targeted eviction.
    fn compute_closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> (f64, Deps) {
        if i == j {
            let v = graph
                .neighbors(i)
                .iter()
                .map(|&k| self.adjacent_inner(graph, interactions, config, i, k))
                .fold(0.0, f64::max);
            return (v, Deps::Local);
        }
        if graph.are_adjacent(i, j) {
            return (
                self.adjacent_inner(graph, interactions, config, i, j),
                Deps::Local,
            );
        }
        let common = self.common_friends_inner(graph, i, j);
        if !common.is_empty() {
            let v = common
                .iter()
                .map(|&k| {
                    (self.adjacent_inner(graph, interactions, config, i, k)
                        + self.adjacent_inner(graph, interactions, config, k, j))
                        / 2.0
                })
                .sum();
            return (v, Deps::Local);
        }
        match shortest_path(graph, i, j) {
            Some(path) => {
                if let Some(cap) = config.path_hop_cap {
                    if (path.len() as u32).saturating_sub(1) > cap {
                        // The zero depends on the shortest-path *length*
                        // only: pure structure, no interaction dependency.
                        return (0.0, Deps::Path(Box::from([])));
                    }
                }
                let min_adjacent = path
                    .windows(2)
                    .map(|w| self.adjacent_inner(graph, interactions, config, w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                let v = if min_adjacent.is_finite() {
                    min_adjacent
                } else {
                    0.0
                };
                (v, Deps::Path(path.into_boxed_slice()))
            }
            None => (0.0, Deps::Path(Box::from([]))),
        }
    }

    /// Cached bulk closeness for many `(rater, ratee)` pairs, computed in
    /// parallel with rayon. The cached counterpart of
    /// [`closeness_for_pairs`](crate::closeness::closeness_for_pairs):
    /// results are in input order and bitwise equal to per-pair
    /// [`SocialCoefficientCache::closeness`] calls. The lock striping
    /// means concurrent workers contend only when their raters share a
    /// shard.
    pub fn closeness_for_pairs(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<f64> {
        use rayon::prelude::*;
        self.ensure_fresh(graph, interactions);
        pairs
            .par_iter()
            .map(|&(i, j)| self.closeness_inner(graph, interactions, config, i, j))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closeness::{closeness_for_pairs, ClosenessModel};
    use crate::relationship::Relationship;

    /// Same hand-computable fixture as `closeness::tests`.
    fn fixture() -> (SocialGraph, InteractionTracker) {
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        let mut t = InteractionTracker::new(5);
        t.record(NodeId(0), NodeId(1), 6.0);
        t.record(NodeId(0), NodeId(3), 2.0);
        t.record(NodeId(1), NodeId(0), 1.0);
        t.record(NodeId(1), NodeId(2), 3.0);
        t.record(NodeId(3), NodeId(0), 1.0);
        t.record(NodeId(3), NodeId(2), 1.0);
        t.record(NodeId(2), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 2.0);
        (g, t)
    }

    fn all_pairs(n: u32) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (NodeId(i), NodeId(j))))
            .collect()
    }

    #[test]
    fn cached_matches_uncached_on_fixture() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        for config in [ClosenessConfig::default(), ClosenessConfig::weighted(0.8)] {
            let model = ClosenessModel::new(&g, &t, config);
            for &(i, j) in &all_pairs(5) {
                let cached = cache.closeness(&g, &t, config, i, j);
                let direct = model.closeness(i, j);
                assert_eq!(
                    cached.to_bits(),
                    direct.to_bits(),
                    "Ωc({i},{j}) cached {cached} != direct {direct}"
                );
                assert_eq!(
                    cache.adjacent_closeness(&g, &t, config, i, j).to_bits(),
                    model.adjacent_closeness(i, j).to_bits()
                );
            }
        }
        assert!(cache.entry_count() > 0);
    }

    #[test]
    fn repeat_queries_hit_without_growing() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let first = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        let filled = cache.entry_count();
        assert!(filled > 0);
        let misses_after_fill = cache.stats().misses;
        for _ in 0..10 {
            assert_eq!(cache.closeness(&g, &t, config, NodeId(0), NodeId(2)), first);
        }
        assert_eq!(cache.entry_count(), filled, "hits must not re-insert");
        let stats = cache.stats();
        assert_eq!(
            stats.misses, misses_after_fill,
            "hits must not count as misses"
        );
        assert!(stats.hits >= 10);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn graph_mutation_invalidates_and_refreshes() {
        let (mut g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        // Ωc(0,1) = 2·6/8 = 1.5 on the original fixture.
        let before = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((before - 1.5).abs() < 1e-12);
        assert!(!cache.is_empty());
        let stale_snapshot = cache.generations();
        // A third relationship on the edge changes m(0,1) from 2 to 3.
        g.add_relationship(NodeId(0), NodeId(1), Relationship::kinship());
        let after = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((after - 2.25).abs() < 1e-12, "3·6/8 = 2.25, got {after}");
        assert_ne!(cache.generations(), stale_snapshot);
        assert_eq!(
            after.to_bits(),
            ClosenessModel::new(&g, &t, config)
                .closeness(NodeId(0), NodeId(1))
                .to_bits()
        );
    }

    #[test]
    fn interaction_mutation_invalidates_and_refreshes() {
        let (g, mut t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let before = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((before - 1.5).abs() < 1e-12);
        // Doubling f(0,3) changes the denominator: 2·6/10 = 1.2.
        t.record(NodeId(0), NodeId(3), 2.0);
        let after = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((after - 1.2).abs() < 1e-12, "got {after}");
        assert_eq!(
            cache.friend_interaction_total(&g, &t, NodeId(0)).to_bits(),
            10.0f64.to_bits()
        );
    }

    #[test]
    fn sparse_mutation_keeps_far_region_warm() {
        // Two 4-cliques joined by a long chain; mutating inside one clique
        // must not evict entries memoized for the other.
        let mut g = SocialGraph::new(12);
        let mut t = InteractionTracker::new(12);
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.add_relationship(NodeId(a), NodeId(b), Relationship::friendship());
                g.add_relationship(NodeId(8 + a), NodeId(8 + b), Relationship::friendship());
            }
        }
        for w in [3u32, 4, 5, 6, 7, 8].windows(2) {
            g.add_relationship(NodeId(w[0]), NodeId(w[1]), Relationship::friendship());
        }
        for v in 0..12u32 {
            for &n in g.neighbors(NodeId(v)) {
                t.record(NodeId(v), n, 1.0 + f64::from(v));
            }
        }
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let far = cache.closeness(&g, &t, config, NodeId(9), NodeId(11));
        let near_before = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        let entries_before = cache.entry_count();
        assert!(entries_before > 0);

        // Interaction mutation at node 0: dirties only node 0.
        t.record(NodeId(0), NodeId(1), 5.0);
        let near_after = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        assert_ne!(near_before.to_bits(), near_after.to_bits());
        let stats = cache.stats();
        assert!(
            stats.evictions > 0,
            "the dirty neighborhood must be evicted"
        );
        // The far clique's entry survived the eviction and still matches a
        // fresh computation.
        let model = ClosenessModel::new(&g, &t, config);
        assert_eq!(
            cache
                .closeness(&g, &t, config, NodeId(9), NodeId(11))
                .to_bits(),
            model.closeness(NodeId(9), NodeId(11)).to_bits()
        );
        assert_eq!(
            far.to_bits(),
            model.closeness(NodeId(9), NodeId(11)).to_bits()
        );
        assert!(
            cache.entry_count() > 0,
            "far-region entries must stay warm across a sparse mutation"
        );
    }

    #[test]
    fn structural_change_evicts_path_entries_everywhere() {
        // A long path 0-1-2-...-7: Ωc(0,7) falls through to Eq. (4).
        let mut g = SocialGraph::new(8);
        let mut t = InteractionTracker::new(8);
        for v in 0..7u32 {
            g.add_relationship(NodeId(v), NodeId(v + 1), Relationship::friendship());
            t.record(NodeId(v), NodeId(v + 1), 2.0);
            t.record(NodeId(v + 1), NodeId(v), 1.0);
        }
        let config = ClosenessConfig {
            path_hop_cap: None,
            ..ClosenessConfig::default()
        };
        let cache = SocialCoefficientCache::new();
        let before = cache.closeness(&g, &t, config, NodeId(0), NodeId(7));
        assert!(before > 0.0);
        // A shortcut far from nodes 0/7's neighborhoods reroutes the path.
        g.add_relationship(NodeId(2), NodeId(5), Relationship::friendship());
        let model = ClosenessModel::new(&g, &t, config);
        let after = cache.closeness(&g, &t, config, NodeId(0), NodeId(7));
        assert_eq!(
            after.to_bits(),
            model.closeness(NodeId(0), NodeId(7)).to_bits()
        );
    }

    #[test]
    fn interaction_dirt_evicts_path_entries_through_recorded_path() {
        let mut g = SocialGraph::new(6);
        let mut t = InteractionTracker::new(6);
        for v in 0..5u32 {
            g.add_relationship(NodeId(v), NodeId(v + 1), Relationship::friendship());
            t.record(NodeId(v), NodeId(v + 1), 2.0);
            t.record(NodeId(v + 1), NodeId(v), 1.0);
        }
        let config = ClosenessConfig {
            path_hop_cap: None,
            ..ClosenessConfig::default()
        };
        let cache = SocialCoefficientCache::new();
        let _ = cache.closeness(&g, &t, config, NodeId(0), NodeId(5));
        // Mid-path interaction change shifts the Eq. (4) minimum.
        t.record(NodeId(2), NodeId(3), 10.0);
        let model = ClosenessModel::new(&g, &t, config);
        assert_eq!(
            cache
                .closeness(&g, &t, config, NodeId(0), NodeId(5))
                .to_bits(),
            model.closeness(NodeId(0), NodeId(5)).to_bits()
        );
    }

    #[test]
    fn clear_invalidates_frequencies() {
        let (g, mut t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        assert!(cache.closeness(&g, &t, config, NodeId(0), NodeId(1)) > 0.0);
        t.clear();
        assert_eq!(cache.closeness(&g, &t, config, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn bulk_path_is_cached_and_fresh_after_mutation() {
        let (mut g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let pairs = all_pairs(5);
        let bulk = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let direct = closeness_for_pairs(&g, &t, config, &pairs);
        assert_eq!(bulk, direct);
        assert!(cache.entry_count() > 0);
        // Mutate, then the bulk path must evict and recompute.
        g.add_relationship(NodeId(1), NodeId(4), Relationship::friendship());
        let bulk2 = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let direct2 = closeness_for_pairs(&g, &t, config, &pairs);
        assert_eq!(bulk2, direct2);
        assert_ne!(
            bulk, bulk2,
            "the new edge must be visible through the cache"
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let plain = cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(1));
        let weighted =
            cache.closeness(&g, &t, ClosenessConfig::weighted(0.5), NodeId(0), NodeId(1));
        // m=2 plain vs 1 + 0.5·1 weighted numerator: different values, both
        // cached under their own config key.
        assert!(plain > weighted);
        assert_eq!(
            plain,
            cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn invalidate_drops_entries_but_stays_correct() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let v = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        assert!(!cache.is_empty());
        let evictions_before = cache.stats().evictions;
        cache.invalidate();
        assert!(cache.is_empty());
        assert!(cache.stats().evictions > evictions_before);
        assert_eq!(v, cache.closeness(&g, &t, config, NodeId(0), NodeId(2)));
    }

    #[test]
    fn attach_telemetry_migrates_counts_and_reports_storms() {
        let (g, mut t) = fixture();
        let mut cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let _ = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        let before = cache.stats();
        assert!(before.misses > 0);

        let telemetry = Telemetry::with_sink(EventSink::in_memory());
        cache.attach_telemetry(&telemetry);
        // Pre-attach counts moved onto the registry, nothing lost.
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("cache_hits_total"), before.hits);
        assert_eq!(snap.counter("cache_misses_total"), before.misses);
        assert_eq!(cache.stats(), before);
        // Re-attaching the same telemetry must not double the counts.
        cache.attach_telemetry(&telemetry);
        assert_eq!(cache.stats(), before);

        // Post-attach activity lands on the registry handles.
        t.record(NodeId(0), NodeId(3), 1.0);
        let _ = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        let after = telemetry.registry().snapshot();
        assert!(after.counter("cache_misses_total") > before.misses);
        assert_eq!(
            after.counter("cache_evictions_total"),
            cache.stats().evictions
        );

        // A full flush big enough to qualify as a storm emits an event.
        let pairs = all_pairs(5);
        let _ = cache.closeness_for_pairs(&g, &t, config, &pairs);
        if cache.entry_count() as u64 >= EVICTION_STORM_THRESHOLD {
            cache.invalidate();
            assert!(telemetry
                .sink()
                .events()
                .iter()
                .any(|e| matches!(e, Event::EvictionStorm { .. })));
        } else {
            // Fixture is small; exercise the storm path directly.
            cache.record_evictions(EVICTION_STORM_THRESHOLD, true);
            assert!(telemetry.sink().events().iter().any(|e| matches!(
                e,
                Event::EvictionStorm {
                    evicted: EVICTION_STORM_THRESHOLD,
                    full_flush: true
                }
            )));
        }
    }

    #[test]
    fn stats_delta_subtracts() {
        let a = CacheStats {
            hits: 10,
            misses: 5,
            evictions: 2,
        };
        let b = CacheStats {
            hits: 25,
            misses: 6,
            evictions: 2,
        };
        assert_eq!(
            b.delta(a),
            CacheStats {
                hits: 15,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn clone_starts_empty() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let _ = cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(2));
        assert!(!cache.is_empty());
        assert!(cache.clone().is_empty());
    }
}
