//! Memoization of social-coefficient building blocks, invalidated by
//! generation counters.
//!
//! Closeness queries repeat heavily inside one reputation-update cycle: the
//! detector asks `Ωc(i,j)` for every active rater→ratee pair, the Gaussian
//! baseline asks `Ωc(rater, k)` for every node `k` the rater ever rated, and
//! Eq. (3) re-evaluates the same *adjacent* closeness values once per common
//! friend. All of those recompute `Σ_k f(i,k)` denominators and Eq. (2)
//! numerators from scratch when served by a bare
//! [`ClosenessModel`](crate::closeness::ClosenessModel).
//!
//! [`SocialCoefficientCache`] memoizes the four building blocks —
//! per-rater friend-interaction budgets, adjacent closeness, common-friend
//! sets, and full closeness values (including the Eq. (4) path minima) —
//! keyed by the **generation counters** of the [`SocialGraph`] and
//! [`InteractionTracker`] it serves. Every graph or tracker mutation bumps
//! the respective counter; the first cache access after a mutation flushes
//! every memoized value, so cached reads are always equal (bit-for-bit) to
//! a fresh computation. On an unchanged graph, repeat queries are O(1) hash
//! lookups.
//!
//! # Invalidation contract
//!
//! * A cache instance must serve exactly **one** graph/tracker pairing for
//!   its whole life (the [`SocialContext`] in `socialtrust-core` owns all
//!   three together). Passing a *different* graph that happens to share a
//!   generation number with the cached one is undetectable and yields stale
//!   values.
//! * The cache holds no references: every method borrows the graph and
//!   tracker for the duration of the call only, so the owning struct stays
//!   freely mutable between calls.
//! * All methods take `&self`; interior locking makes the cache safe to
//!   share across rayon workers (the parallel detector and bulk
//!   [`SocialCoefficientCache::closeness_for_pairs`] path do exactly that).
//!   Concurrent misses may compute a value twice, but both computations are
//!   identical, so the last write is indistinguishable from the first.
//!
//! [`SocialContext`]: https://docs.rs/socialtrust-core

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::closeness::ClosenessConfig;
use crate::distance::shortest_path;
use crate::graph::SocialGraph;
use crate::interaction::InteractionTracker;
use crate::relationship::weighted_relationship_sum;
use crate::NodeId;

/// Hashable identity of a [`ClosenessConfig`] (`f64` is not `Eq`, so the
/// λ is keyed by its bit pattern).
type ConfigKey = (bool, u64, Option<u32>);

#[inline]
fn config_key(config: ClosenessConfig) -> ConfigKey {
    (
        config.weighted_relationships,
        config.lambda.to_bits(),
        config.path_hop_cap,
    )
}

/// The memoized values plus the generation snapshot they were computed
/// under.
#[derive(Debug, Default)]
struct CacheState {
    graph_generation: u64,
    interaction_generation: u64,
    /// `Σ_{k ∈ S_i} f(i,k)` per rater — the Eq. (2)/(10) denominator.
    friend_totals: HashMap<NodeId, f64>,
    /// Adjacent closeness per (config, i, j) — Eq. (2)/(10).
    adjacent: HashMap<(ConfigKey, NodeId, NodeId), f64>,
    /// Common-friend sets per unordered pair — the `S_i ∩ S_j` of Eq. (3).
    common_friends: HashMap<(NodeId, NodeId), Vec<NodeId>>,
    /// Full closeness per (config, i, j) — Eqs. (2)/(3)/(4)/(10).
    closeness: HashMap<(ConfigKey, NodeId, NodeId), f64>,
}

impl CacheState {
    fn entry_count(&self) -> usize {
        self.friend_totals.len()
            + self.adjacent.len()
            + self.common_friends.len()
            + self.closeness.len()
    }
}

/// A generation-validated memo of social-coefficient building blocks.
///
/// See the [module docs](self) for the invalidation contract. Construction
/// is free; an empty cache behaves exactly like computing everything
/// through a fresh [`ClosenessModel`](crate::closeness::ClosenessModel),
/// only faster on repeats.
#[derive(Debug, Default)]
pub struct SocialCoefficientCache {
    state: RwLock<CacheState>,
}

/// Cloning a cache yields an **empty** cache: memoized values are
/// semantically transparent, and the clone may be paired with a diverging
/// copy of the graph, so carrying them over would violate the invalidation
/// contract.
impl Clone for SocialCoefficientCache {
    fn clone(&self) -> Self {
        SocialCoefficientCache::new()
    }
}

impl SocialCoefficientCache {
    /// An empty cache.
    pub fn new() -> Self {
        SocialCoefficientCache::default()
    }

    /// The generation snapshot the current contents were computed under,
    /// as `(graph_generation, interaction_generation)`.
    pub fn generations(&self) -> (u64, u64) {
        let state = self.state.read();
        (state.graph_generation, state.interaction_generation)
    }

    /// Total number of memoized entries across all four maps.
    pub fn entry_count(&self) -> usize {
        self.state.read().entry_count()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Drop every memoized value (the generation snapshot is kept; the
    /// next access simply refills). Handy for benchmarks that want to
    /// measure the cold path.
    pub fn invalidate(&self) {
        let mut state = self.state.write();
        state.friend_totals.clear();
        state.adjacent.clear();
        state.common_friends.clear();
        state.closeness.clear();
    }

    /// Flush the cache if `graph`/`interactions` have mutated since the
    /// memoized values were computed, and record the new snapshot.
    ///
    /// The caller holds shared borrows of both structures for the whole
    /// public-method call, so the generations cannot move again until the
    /// method returns — values inserted after this check are valid.
    fn ensure_fresh(&self, graph: &SocialGraph, interactions: &InteractionTracker) {
        let (graph_gen, inter_gen) = (graph.generation(), interactions.generation());
        {
            let state = self.state.read();
            if state.graph_generation == graph_gen && state.interaction_generation == inter_gen {
                return;
            }
        }
        let mut state = self.state.write();
        if state.graph_generation != graph_gen || state.interaction_generation != inter_gen {
            state.friend_totals.clear();
            state.adjacent.clear();
            state.common_friends.clear();
            state.closeness.clear();
            state.graph_generation = graph_gen;
            state.interaction_generation = inter_gen;
        }
    }

    /// Memoized `Σ_{k ∈ S_i} f(i,k)` — node `i`'s interaction budget spent
    /// on its friends (the denominator of Eqs. (2)/(10)).
    pub fn friend_interaction_total(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        i: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        if let Some(&v) = self.state.read().friend_totals.get(&i) {
            return v;
        }
        let v: f64 = graph
            .neighbors(i)
            .iter()
            .map(|&k| interactions.frequency(i, k))
            .sum();
        self.state.write().friend_totals.insert(i, v);
        v
    }

    /// Memoized common-friend set `S_a ∩ S_b` (symmetric; stored once per
    /// unordered pair).
    pub fn common_friends(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        a: NodeId,
        b: NodeId,
    ) -> Vec<NodeId> {
        self.ensure_fresh(graph, interactions);
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(v) = self.state.read().common_friends.get(&key) {
            return v.clone();
        }
        let v = graph.common_friends(a, b);
        self.state.write().common_friends.insert(key, v.clone());
        v
    }

    /// Memoized adjacent closeness — Eq. (2), or Eq. (10) when
    /// `config.weighted_relationships` is set. Identical (bit-for-bit) to
    /// [`ClosenessModel::adjacent_closeness`](crate::closeness::ClosenessModel::adjacent_closeness).
    pub fn adjacent_closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        let key = (config_key(config), i, j);
        if let Some(&v) = self.state.read().adjacent.get(&key) {
            return v;
        }
        let v = self.compute_adjacent(graph, interactions, config, i, j);
        self.state.write().adjacent.insert(key, v);
        v
    }

    /// The Eq. (2)/(10) arithmetic, using the memoized denominator. This
    /// mirrors `ClosenessModel::adjacent_closeness` exactly — same numerator
    /// expression, same operation order — so cached and uncached values are
    /// bitwise equal (the property tests assert this).
    fn compute_adjacent(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        let rels = graph.relationships(i, j);
        if rels.is_empty() {
            return 0.0;
        }
        let numerator = if config.weighted_relationships {
            weighted_relationship_sum(rels, config.lambda).max(1.0)
        } else {
            rels.len() as f64
        };
        let total = self.friend_interaction_total(graph, interactions, i);
        if total <= 0.0 {
            return 0.0;
        }
        numerator * interactions.frequency(i, j) / total
    }

    /// Memoized full closeness `Ωc(i,j)` — Eq. (3) common-friend averaging
    /// and Eq. (4) path-minimum fallback included. Identical (bit-for-bit)
    /// to [`ClosenessModel::closeness`](crate::closeness::ClosenessModel::closeness).
    pub fn closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        self.ensure_fresh(graph, interactions);
        let key = (config_key(config), i, j);
        if let Some(&v) = self.state.read().closeness.get(&key) {
            return v;
        }
        let v = self.compute_closeness(graph, interactions, config, i, j);
        self.state.write().closeness.insert(key, v);
        v
    }

    /// The Eq. (3)/(4) dispatch, built from the memoized sub-values. The
    /// control flow and the floating-point evaluation order mirror
    /// `ClosenessModel::closeness` exactly.
    fn compute_closeness(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        i: NodeId,
        j: NodeId,
    ) -> f64 {
        if i == j {
            return graph
                .neighbors(i)
                .iter()
                .map(|&k| self.adjacent_closeness(graph, interactions, config, i, k))
                .fold(0.0, f64::max);
        }
        if graph.are_adjacent(i, j) {
            return self.adjacent_closeness(graph, interactions, config, i, j);
        }
        let common = self.common_friends(graph, interactions, i, j);
        if !common.is_empty() {
            return common
                .iter()
                .map(|&k| {
                    (self.adjacent_closeness(graph, interactions, config, i, k)
                        + self.adjacent_closeness(graph, interactions, config, k, j))
                        / 2.0
                })
                .sum();
        }
        match shortest_path(graph, i, j) {
            Some(path) => {
                if let Some(cap) = config.path_hop_cap {
                    if (path.len() as u32).saturating_sub(1) > cap {
                        return 0.0;
                    }
                }
                let min_adjacent = path
                    .windows(2)
                    .map(|w| self.adjacent_closeness(graph, interactions, config, w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                if min_adjacent.is_finite() {
                    min_adjacent
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Cached bulk closeness for many `(rater, ratee)` pairs, computed in
    /// parallel with rayon. The cached counterpart of
    /// [`closeness_for_pairs`](crate::closeness::closeness_for_pairs):
    /// results are in input order and bitwise equal to per-pair
    /// [`SocialCoefficientCache::closeness`] calls.
    pub fn closeness_for_pairs(
        &self,
        graph: &SocialGraph,
        interactions: &InteractionTracker,
        config: ClosenessConfig,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<f64> {
        use rayon::prelude::*;
        self.ensure_fresh(graph, interactions);
        pairs
            .par_iter()
            .map(|&(i, j)| self.closeness(graph, interactions, config, i, j))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closeness::{closeness_for_pairs, ClosenessModel};
    use crate::relationship::Relationship;

    /// Same hand-computable fixture as `closeness::tests`.
    fn fixture() -> (SocialGraph, InteractionTracker) {
        let mut g = SocialGraph::new(5);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(1), Relationship::colleague());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(2), Relationship::friendship());
        let mut t = InteractionTracker::new(5);
        t.record(NodeId(0), NodeId(1), 6.0);
        t.record(NodeId(0), NodeId(3), 2.0);
        t.record(NodeId(1), NodeId(0), 1.0);
        t.record(NodeId(1), NodeId(2), 3.0);
        t.record(NodeId(3), NodeId(0), 1.0);
        t.record(NodeId(3), NodeId(2), 1.0);
        t.record(NodeId(2), NodeId(1), 2.0);
        t.record(NodeId(2), NodeId(3), 2.0);
        (g, t)
    }

    fn all_pairs(n: u32) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (NodeId(i), NodeId(j))))
            .collect()
    }

    #[test]
    fn cached_matches_uncached_on_fixture() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        for config in [ClosenessConfig::default(), ClosenessConfig::weighted(0.8)] {
            let model = ClosenessModel::new(&g, &t, config);
            for &(i, j) in &all_pairs(5) {
                let cached = cache.closeness(&g, &t, config, i, j);
                let direct = model.closeness(i, j);
                assert_eq!(
                    cached.to_bits(),
                    direct.to_bits(),
                    "Ωc({i},{j}) cached {cached} != direct {direct}"
                );
                assert_eq!(
                    cache.adjacent_closeness(&g, &t, config, i, j).to_bits(),
                    model.adjacent_closeness(i, j).to_bits()
                );
            }
        }
        assert!(cache.entry_count() > 0);
    }

    #[test]
    fn repeat_queries_hit_without_growing() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let first = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        let filled = cache.entry_count();
        assert!(filled > 0);
        for _ in 0..10 {
            assert_eq!(cache.closeness(&g, &t, config, NodeId(0), NodeId(2)), first);
        }
        assert_eq!(cache.entry_count(), filled, "hits must not re-insert");
    }

    #[test]
    fn graph_mutation_invalidates_and_refreshes() {
        let (mut g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        // Ωc(0,1) = 2·6/8 = 1.5 on the original fixture.
        let before = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((before - 1.5).abs() < 1e-12);
        assert!(!cache.is_empty());
        let stale_snapshot = cache.generations();
        // A third relationship on the edge changes m(0,1) from 2 to 3.
        g.add_relationship(NodeId(0), NodeId(1), Relationship::kinship());
        let after = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((after - 2.25).abs() < 1e-12, "3·6/8 = 2.25, got {after}");
        assert_ne!(cache.generations(), stale_snapshot);
        assert_eq!(
            after.to_bits(),
            ClosenessModel::new(&g, &t, config)
                .closeness(NodeId(0), NodeId(1))
                .to_bits()
        );
    }

    #[test]
    fn interaction_mutation_invalidates_and_refreshes() {
        let (g, mut t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let before = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((before - 1.5).abs() < 1e-12);
        // Doubling f(0,3) changes the denominator: 2·6/10 = 1.2.
        t.record(NodeId(0), NodeId(3), 2.0);
        let after = cache.closeness(&g, &t, config, NodeId(0), NodeId(1));
        assert!((after - 1.2).abs() < 1e-12, "got {after}");
        assert_eq!(
            cache.friend_interaction_total(&g, &t, NodeId(0)).to_bits(),
            10.0f64.to_bits()
        );
    }

    #[test]
    fn clear_invalidates_frequencies() {
        let (g, mut t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        assert!(cache.closeness(&g, &t, config, NodeId(0), NodeId(1)) > 0.0);
        t.clear();
        assert_eq!(cache.closeness(&g, &t, config, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn bulk_path_is_cached_and_fresh_after_mutation() {
        let (mut g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let pairs = all_pairs(5);
        let bulk = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let direct = closeness_for_pairs(&g, &t, config, &pairs);
        assert_eq!(bulk, direct);
        assert!(cache.entry_count() > 0);
        // Mutate, then the bulk path must flush and recompute.
        g.add_relationship(NodeId(1), NodeId(4), Relationship::friendship());
        let bulk2 = cache.closeness_for_pairs(&g, &t, config, &pairs);
        let direct2 = closeness_for_pairs(&g, &t, config, &pairs);
        assert_eq!(bulk2, direct2);
        assert_ne!(
            bulk, bulk2,
            "the new edge must be visible through the cache"
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let plain = cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(1));
        let weighted =
            cache.closeness(&g, &t, ClosenessConfig::weighted(0.5), NodeId(0), NodeId(1));
        // m=2 plain vs 1 + 0.5·1 weighted numerator: different values, both
        // cached under their own config key.
        assert!(plain > weighted);
        assert_eq!(
            plain,
            cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn invalidate_drops_entries_but_stays_correct() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let config = ClosenessConfig::default();
        let v = cache.closeness(&g, &t, config, NodeId(0), NodeId(2));
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(v, cache.closeness(&g, &t, config, NodeId(0), NodeId(2)));
    }

    #[test]
    fn clone_starts_empty() {
        let (g, t) = fixture();
        let cache = SocialCoefficientCache::new();
        let _ = cache.closeness(&g, &t, ClosenessConfig::default(), NodeId(0), NodeId(2));
        assert!(!cache.is_empty());
        assert!(cache.clone().is_empty());
    }
}
