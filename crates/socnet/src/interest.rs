//! Interest sets and interest similarity `Ωs(i,j)` — Equations (1)/(7) and
//! the request-weighted, falsification-resilient Equation (11).
//!
//! Each node has an interest set `V = <v1, v2, …, vk>` of product/resource
//! categories. Plain similarity is the overlap coefficient
//!
//! ```text
//! Eq. (1)/(7):  Ωs(i,j) = |Vi ∩ Vj| / min(|Vi|, |Vj|)
//! ```
//!
//! Section 4.4 hardens this against profile falsification by weighting each
//! interest with the node's *observed* request share `ws(i,l)` (the percent
//! of `i`'s requests in category `l`):
//!
//! ```text
//! Eq. (11):  Ωs(i,j) = Σ_{l ∈ Vi ∩ Vj} ws(i,l) · ws(j,l) / min(|Vi|, |Vj|)
//! ```
//!
//! Declared-but-never-requested interests then contribute nothing, and
//! deleted-but-still-requested interests keep contributing, because the
//! *effective* interest set of a profile is its declared set united with
//! every category it actually requested.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifier of an interest category (e.g. "Electronics", "Clothing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterestId(pub u16);

impl From<u16> for InterestId {
    #[inline]
    fn from(v: u16) -> Self {
        InterestId(v)
    }
}

impl std::fmt::Display for InterestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cat{}", self.0)
    }
}

/// A set of interest categories, stored sorted for linear-merge
/// intersections.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterestSet {
    items: Vec<InterestId>,
}

impl InterestSet {
    /// An empty interest set.
    pub fn new() -> Self {
        InterestSet::default()
    }

    /// Build from any iterator of category ids; duplicates are collapsed.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = InterestId>>(iter: I) -> Self {
        let mut items: Vec<InterestId> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        InterestSet { items }
    }

    /// Build from raw `u16` category ids.
    pub fn from_ids<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        Self::from_iter(iter.into_iter().map(InterestId))
    }

    /// Number of categories in the set (`|V|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the set has no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: InterestId) -> bool {
        self.items.binary_search(&id).is_ok()
    }

    /// Insert a category (no-op if present).
    pub fn insert(&mut self, id: InterestId) {
        if let Err(pos) = self.items.binary_search(&id) {
            self.items.insert(pos, id);
        }
    }

    /// Remove a category (no-op if absent).
    pub fn remove(&mut self, id: InterestId) {
        if let Ok(pos) = self.items.binary_search(&id) {
            self.items.remove(pos);
        }
    }

    /// The sorted categories.
    #[inline]
    pub fn as_slice(&self) -> &[InterestId] {
        &self.items
    }

    /// Size of the intersection `|self ∩ other|` by linear merge.
    pub fn intersection_size(&self, other: &InterestSet) -> usize {
        self.intersection(other).count()
    }

    /// Iterator over the intersection, in sorted order.
    pub fn intersection<'a>(
        &'a self,
        other: &'a InterestSet,
    ) -> impl Iterator<Item = InterestId> + 'a {
        IntersectIter {
            a: &self.items,
            b: &other.items,
            i: 0,
            j: 0,
        }
    }

    /// Union with another set, returning a new set.
    pub fn union(&self, other: &InterestSet) -> InterestSet {
        let mut items = self.items.clone();
        items.extend_from_slice(&other.items);
        items.sort_unstable();
        items.dedup();
        InterestSet { items }
    }
}

impl IntoIterator for InterestSet {
    type Item = InterestId;
    type IntoIter = std::vec::IntoIter<InterestId>;

    /// Consume the set, yielding its categories in ascending order.
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

struct IntersectIter<'a> {
    a: &'a [InterestId],
    b: &'a [InterestId],
    i: usize,
    j: usize,
}

impl<'a> Iterator for IntersectIter<'a> {
    type Item = InterestId;
    fn next(&mut self) -> Option<InterestId> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let out = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
            }
        }
        None
    }
}

/// Plain interest similarity — Eq. (1)/(7): `|Vi ∩ Vj| / min(|Vi|, |Vj|)`.
///
/// Returns `0.0` when either set is empty (no declared interests ⇒ no
/// measurable similarity). The result is always in `[0, 1]`.
pub fn similarity(a: &InterestSet, b: &InterestSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.intersection_size(b) as f64 / a.len().min(b.len()) as f64
}

/// A node's interest profile: the declared set plus observed request counts
/// per category.
///
/// Request counts are what makes Eq. (11) resilient: they cannot be removed
/// from the record, and padding them toward a fake interest costs real
/// request traffic that dilutes the weights of the node's true interests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterestProfile {
    declared: InterestSet,
    requests: BTreeMap<InterestId, u64>,
    total_requests: u64,
}

impl InterestProfile {
    /// A profile with the given declared interests and no requests yet.
    pub fn new(declared: InterestSet) -> Self {
        InterestProfile {
            declared,
            requests: BTreeMap::new(),
            total_requests: 0,
        }
    }

    /// The declared interest set (what the user's profile page claims).
    pub fn declared(&self) -> &InterestSet {
        &self.declared
    }

    /// Mutable access to the declared set — used by falsification attacks
    /// in the simulator (adding or deleting profile interests).
    pub fn declared_mut(&mut self) -> &mut InterestSet {
        &mut self.declared
    }

    /// Record `count` resource requests in category `id`.
    pub fn record_requests(&mut self, id: InterestId, count: u64) {
        *self.requests.entry(id).or_insert(0) += count;
        self.total_requests += count;
    }

    /// Total observed requests across all categories.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// The observed request weight `ws(i,l)`: the fraction of this node's
    /// requests that targeted category `l` (0 when the node has made no
    /// requests).
    pub fn request_weight(&self, id: InterestId) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.requests.get(&id).copied().unwrap_or(0) as f64 / self.total_requests as f64
    }

    /// The *effective* interest set: declared interests united with every
    /// category the node actually requested. Deleting a category from the
    /// profile does not remove it from here while requests keep flowing.
    pub fn effective_set(&self) -> InterestSet {
        let requested = InterestSet::from_iter(self.requests.keys().copied());
        self.declared.union(&requested)
    }

    /// `(category, ws(i,l))` over the effective set, in ascending category
    /// order — exactly the per-node rows the interned interest tables of
    /// [`crate::snapshot::GraphSnapshot`] are built from. Declared-but-never-
    /// requested categories appear with weight `0.0`.
    pub fn effective_weights(&self) -> impl Iterator<Item = (InterestId, f64)> + '_ {
        self.effective_set()
            .into_iter()
            .map(move |id| (id, self.request_weight(id)))
    }
}

/// Request-weighted interest similarity — Eq. (11):
/// `Σ_{l ∈ Vi ∩ Vj} ws(i,l) · ws(j,l) / min(|Vi|, |Vj|)`
/// computed over the *effective* interest sets of both profiles.
///
/// Result is in `[0, 1]`: each `ws ≤ 1`, the intersection has at most
/// `min(|Vi|, |Vj|)` terms, and `Σ ws = 1` per node bounds the numerator by 1.
pub fn weighted_similarity(a: &InterestProfile, b: &InterestProfile) -> f64 {
    let va = a.effective_set();
    let vb = b.effective_set();
    if va.is_empty() || vb.is_empty() {
        return 0.0;
    }
    let numerator: f64 = va
        .intersection(&vb)
        .map(|l| a.request_weight(l) * b.request_weight(l))
        .sum();
    numerator / va.len().min(vb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> InterestSet {
        InterestSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[InterestId(1), InterestId(2), InterestId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_and_remove() {
        let mut s = set(&[1, 3]);
        s.insert(InterestId(2));
        assert!(s.contains(InterestId(2)));
        s.insert(InterestId(2)); // duplicate no-op
        assert_eq!(s.len(), 3);
        s.remove(InterestId(1));
        assert!(!s.contains(InterestId(1)));
        s.remove(InterestId(99)); // absent no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersection_and_union() {
        let a = set(&[1, 2, 3, 5]);
        let b = set(&[2, 3, 4]);
        let inter: Vec<InterestId> = a.intersection(&b).collect();
        assert_eq!(inter, vec![InterestId(2), InterestId(3)]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union(&b).len(), 5);
    }

    #[test]
    fn similarity_matches_equation_1() {
        // |{2,3}| / min(4, 3) = 2/3
        let a = set(&[1, 2, 3, 5]);
        let b = set(&[2, 3, 4]);
        assert!((similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(similarity(&a, &b), similarity(&b, &a));
    }

    #[test]
    fn similarity_identical_sets_is_one() {
        let a = set(&[4, 7, 9]);
        assert_eq!(similarity(&a, &a), 1.0);
        // Subset relationship also yields 1 (overlap coefficient).
        let b = set(&[4, 7]);
        assert_eq!(similarity(&a, &b), 1.0);
    }

    #[test]
    fn similarity_disjoint_is_zero_and_empty_is_zero() {
        assert_eq!(similarity(&set(&[1]), &set(&[2])), 0.0);
        assert_eq!(similarity(&set(&[]), &set(&[2])), 0.0);
        assert_eq!(similarity(&set(&[]), &set(&[])), 0.0);
    }

    #[test]
    fn request_weights_are_shares() {
        let mut p = InterestProfile::new(set(&[1, 2]));
        p.record_requests(InterestId(1), 3);
        p.record_requests(InterestId(2), 1);
        assert_eq!(p.total_requests(), 4);
        assert!((p.request_weight(InterestId(1)) - 0.75).abs() < 1e-12);
        assert!((p.request_weight(InterestId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(p.request_weight(InterestId(9)), 0.0);
    }

    #[test]
    fn weighted_similarity_matches_equation_11() {
        let mut a = InterestProfile::new(set(&[1, 2]));
        a.record_requests(InterestId(1), 3);
        a.record_requests(InterestId(2), 1);
        let mut b = InterestProfile::new(set(&[1, 2, 3]));
        b.record_requests(InterestId(1), 1);
        b.record_requests(InterestId(2), 1);
        b.record_requests(InterestId(3), 2);
        // Intersection {1,2}; ws_a = (.75,.25), ws_b = (.25,.25).
        // numerator = .75·.25 + .25·.25 = 0.25; min(|Va|,|Vb|) = 2 → 0.125
        assert!((weighted_similarity(&a, &b) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn declared_but_unrequested_interests_contribute_nothing() {
        // Colluder pads profile with the ratee's interests but never
        // requests them — Section 4.4's B3 resilience.
        let mut honest = InterestProfile::new(set(&[1, 2]));
        honest.record_requests(InterestId(1), 5);
        honest.record_requests(InterestId(2), 5);
        let mut faker = InterestProfile::new(set(&[1, 2])); // fake declaration
        faker.record_requests(InterestId(7), 10); // real traffic elsewhere
        let ws = weighted_similarity(&faker, &honest);
        assert_eq!(ws, 0.0, "fake declared interests must not raise Eq. (11)");
        // Whereas the naive Eq. (7) on declared sets is fully fooled:
        assert_eq!(similarity(faker.declared(), honest.declared()), 1.0);
    }

    #[test]
    fn deleted_interests_still_count_via_requests() {
        // Colluder deletes common interests from its profile to dodge B4 —
        // the request history keeps them in the effective set.
        let mut a = InterestProfile::new(set(&[])); // profile wiped
        a.record_requests(InterestId(1), 10);
        let mut b = InterestProfile::new(set(&[1]));
        b.record_requests(InterestId(1), 10);
        assert!(a.effective_set().contains(InterestId(1)));
        let ws = weighted_similarity(&a, &b);
        assert!((ws - 1.0).abs() < 1e-12, "got {ws}");
    }

    #[test]
    fn effective_weights_cover_declared_and_requested() {
        let mut p = InterestProfile::new(set(&[1, 5]));
        p.record_requests(InterestId(3), 1);
        p.record_requests(InterestId(5), 3);
        let rows: Vec<(InterestId, f64)> = p.effective_weights().collect();
        assert_eq!(rows.len(), 3, "declared ∪ requested = {{1, 3, 5}}");
        assert_eq!(rows[0], (InterestId(1), 0.0));
        assert_eq!(rows[1].0, InterestId(3));
        assert!((rows[1].1 - 0.25).abs() < 1e-12);
        assert_eq!(rows[2].0, InterestId(5));
        assert!((rows[2].1 - 0.75).abs() < 1e-12);
        // Ascending order, and each weight equals request_weight exactly.
        for (id, w) in rows {
            assert_eq!(w.to_bits(), p.request_weight(id).to_bits());
        }
    }

    #[test]
    fn into_iter_yields_sorted_categories() {
        let ids: Vec<InterestId> = set(&[4, 1, 7]).into_iter().collect();
        assert_eq!(ids, vec![InterestId(1), InterestId(4), InterestId(7)]);
    }

    #[test]
    fn weighted_similarity_bounds() {
        let mut a = InterestProfile::new(set(&[1]));
        a.record_requests(InterestId(1), 1);
        let mut b = InterestProfile::new(set(&[1]));
        b.record_requests(InterestId(1), 1);
        assert!((weighted_similarity(&a, &b) - 1.0).abs() < 1e-12);
        let empty = InterestProfile::new(set(&[]));
        assert_eq!(weighted_similarity(&a, &empty), 0.0);
    }
}
