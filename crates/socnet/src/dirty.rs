//! Epoch-based per-node dirty tracking for incremental cache invalidation.
//!
//! [`SocialGraph`](crate::graph::SocialGraph) and
//! [`InteractionTracker`](crate::interaction::InteractionTracker) each embed
//! a [`DirtyLog`]. Every mutator bumps the log's epoch and records *which*
//! nodes it touched; consumers such as
//! [`SocialCoefficientCache`](crate::cache::SocialCoefficientCache) remember
//! the epoch they last synchronized at and ask the log for
//! [`changes_since`](DirtyLog::changes_since) that epoch. In the
//! steady-state regime the paper's Overstock trace exhibits — most edges
//! quiet each interval — the answer is a small [`DirtyDelta::Sparse`] set,
//! so the consumer can evict only the affected neighborhood instead of
//! flushing every memoized coefficient.
//!
//! The log is deliberately *not* a journal of individual operations: it
//! stores, per node, the epoch at which that node was last touched. That
//! keeps memory bounded by the node count (repeated mutations of the same
//! node collapse into one entry) while still answering "what changed since
//! epoch `e`?" exactly, for any `e`, via a single scan.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// What changed in a mutation source since a consumer's last sync epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyDelta {
    /// Nothing changed; all memoized state derived from the source is
    /// still valid.
    Clean,
    /// A sparse set of nodes changed. Only state depending on these nodes
    /// (directly or through their neighborhood) needs recomputation.
    Sparse {
        /// Nodes touched by at least one mutation since the sync epoch,
        /// in unspecified order, without duplicates.
        nodes: Vec<NodeId>,
        /// Whether any of those mutations changed graph *structure*
        /// (edge added or removed). Structural changes can reroute
        /// shortest paths between arbitrary node pairs, so memoized
        /// values derived from paths (Eq. (4) fallbacks) cannot be
        /// salvaged by neighborhood reasoning alone.
        structural: bool,
    },
    /// A whole-state mutation happened (e.g. [`clear`]) — or the consumer
    /// is lagging behind one. Everything derived from the source must be
    /// recomputed.
    ///
    /// [`clear`]: crate::interaction::InteractionTracker::clear
    Full,
}

impl DirtyDelta {
    /// `true` when nothing changed since the sync epoch.
    #[inline]
    pub fn is_clean(&self) -> bool {
        matches!(self, DirtyDelta::Clean)
    }

    /// `true` when the delta cannot be applied node-by-node: either a
    /// whole-state mutation, or a sparse set with the structural flag
    /// raised. Consumers of path- or structure-derived state (the Eq. (4)
    /// entries of the coefficient cache, the CSR rows of
    /// [`crate::snapshot::GraphSnapshot`]) must rebuild from scratch when
    /// this is set.
    #[inline]
    pub fn requires_rebuild(&self) -> bool {
        match self {
            DirtyDelta::Clean => false,
            DirtyDelta::Sparse { structural, .. } => *structural,
            DirtyDelta::Full => true,
        }
    }
}

/// Epoch counter plus per-node last-touched map (see module docs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirtyLog {
    /// Bumped by every mutation. `0` means "never mutated".
    epoch: u64,
    /// `touched[v]` = epoch at which `v` was last touched.
    touched: BTreeMap<NodeId, u64>,
    /// Epoch of the most recent *structural* mutation (edge add/remove).
    structural_epoch: u64,
    /// Epoch of the most recent whole-state mutation (e.g. `clear`).
    /// Consumers synced before this point must do a full recomputation.
    global_epoch: u64,
}

impl DirtyLog {
    /// A fresh log at epoch 0 with nothing dirty.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch. Two observations of the same epoch on the same
    /// source are guaranteed to have seen identical state.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a non-structural mutation touching `nodes`.
    pub fn touch(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.epoch += 1;
        let e = self.epoch;
        for v in nodes {
            self.touched.insert(v, e);
        }
    }

    /// Record a structural mutation (edge add/remove) touching `nodes`.
    pub fn touch_structural(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.touch(nodes);
        self.structural_epoch = self.epoch;
    }

    /// Record a whole-state mutation: everything is dirty for every
    /// consumer, and the per-node map can be dropped.
    pub fn touch_all(&mut self) {
        self.epoch += 1;
        self.global_epoch = self.epoch;
        self.touched.clear();
    }

    /// What changed since a consumer's sync epoch `since`.
    ///
    /// Returns [`DirtyDelta::Full`] when a whole-state mutation happened
    /// after `since`; otherwise the exact sparse set
    /// `{v : last_touched(v) > since}`.
    pub fn changes_since(&self, since: u64) -> DirtyDelta {
        if since >= self.epoch {
            return DirtyDelta::Clean;
        }
        if since < self.global_epoch {
            return DirtyDelta::Full;
        }
        let nodes: Vec<NodeId> = self
            .touched
            .iter()
            .filter(|(_, &e)| e > since)
            .map(|(&v, _)| v)
            .collect();
        DirtyDelta::Sparse {
            nodes,
            structural: self.structural_epoch > since,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
        v.sort();
        v
    }

    #[test]
    fn fresh_log_is_clean() {
        let log = DirtyLog::new();
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.changes_since(0), DirtyDelta::Clean);
    }

    #[test]
    fn touch_reports_exact_sparse_suffix() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(1)]);
        let mid = log.epoch();
        log.touch([NodeId(2), NodeId(3)]);
        match log.changes_since(0) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(sorted(nodes), vec![NodeId(1), NodeId(2), NodeId(3)]);
                assert!(!structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        match log.changes_since(mid) {
            DirtyDelta::Sparse { nodes, .. } => {
                assert_eq!(sorted(nodes), vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        assert_eq!(log.changes_since(log.epoch()), DirtyDelta::Clean);
    }

    #[test]
    fn repeated_touches_deduplicate() {
        let mut log = DirtyLog::new();
        for _ in 0..100 {
            log.touch([NodeId(7)]);
        }
        match log.changes_since(0) {
            DirtyDelta::Sparse { nodes, .. } => assert_eq!(nodes, vec![NodeId(7)]),
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }

    #[test]
    fn structural_flag_tracks_sync_epoch() {
        let mut log = DirtyLog::new();
        log.touch_structural([NodeId(0), NodeId(1)]);
        let after_edge = log.epoch();
        log.touch([NodeId(2)]);
        match log.changes_since(0) {
            DirtyDelta::Sparse { structural, .. } => assert!(structural),
            other => panic!("expected sparse delta, got {other:?}"),
        }
        // A consumer synced after the edge change only sees the
        // interaction-style touch.
        match log.changes_since(after_edge) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(nodes, vec![NodeId(2)]);
                assert!(!structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }

    #[test]
    fn delta_classification_helpers() {
        assert!(DirtyDelta::Clean.is_clean());
        assert!(!DirtyDelta::Clean.requires_rebuild());
        assert!(DirtyDelta::Full.requires_rebuild());
        assert!(!DirtyDelta::Full.is_clean());
        let sparse = DirtyDelta::Sparse {
            nodes: vec![NodeId(1)],
            structural: false,
        };
        assert!(!sparse.is_clean());
        assert!(!sparse.requires_rebuild());
        let structural = DirtyDelta::Sparse {
            nodes: vec![NodeId(1)],
            structural: true,
        };
        assert!(structural.requires_rebuild());
    }

    #[test]
    fn touch_all_forces_full_for_lagging_consumers() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(1)]);
        let before_clear = log.epoch();
        log.touch_all();
        assert_eq!(log.changes_since(before_clear), DirtyDelta::Full);
        assert_eq!(log.changes_since(0), DirtyDelta::Full);
        // Consumers synced at/after the clear see only later touches.
        let after_clear = log.epoch();
        assert_eq!(log.changes_since(after_clear), DirtyDelta::Clean);
        log.touch([NodeId(4)]);
        match log.changes_since(after_clear) {
            DirtyDelta::Sparse { nodes, .. } => assert_eq!(nodes, vec![NodeId(4)]),
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }
}
