//! Epoch-based per-node dirty tracking for incremental cache invalidation.
//!
//! [`SocialGraph`](crate::graph::SocialGraph) and
//! [`InteractionTracker`](crate::interaction::InteractionTracker) each embed
//! a [`DirtyLog`]. Every mutator bumps the log's epoch and records *which*
//! nodes it touched; consumers such as
//! [`SocialCoefficientCache`](crate::cache::SocialCoefficientCache) remember
//! the epoch they last synchronized at and ask the log for
//! [`changes_since`](DirtyLog::changes_since) that epoch. In the
//! steady-state regime the paper's Overstock trace exhibits — most edges
//! quiet each interval — the answer is a small [`DirtyDelta::Sparse`] set,
//! so the consumer can evict only the affected neighborhood instead of
//! flushing every memoized coefficient.
//!
//! The log is an epoch-ordered journal of `(node, last-touched-epoch)`
//! entries. Re-touching a node tombstones its old slot and appends a fresh
//! entry, so every node appears at most once *live*; an amortized
//! compaction pass drops tombstones once they outnumber live entries,
//! keeping memory bounded by the node count. Because the journal is sorted
//! by epoch, "what changed since epoch `e`?" is a binary search plus a
//! **borrowed** suffix slice — [`changes_since_ref`](DirtyLog::changes_since_ref)
//! hands that slice out without cloning, and
//! [`DirtyDeltaRef::nodes_in_range`] filters it to one snapshot shard's
//! node range, which is how the sharded
//! [`SnapshotStore`](crate::snapshot::SnapshotStore) routes dirt to shards.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// What changed in a mutation source since a consumer's last sync epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyDelta {
    /// Nothing changed; all memoized state derived from the source is
    /// still valid.
    Clean,
    /// A sparse set of nodes changed. Only state depending on these nodes
    /// (directly or through their neighborhood) needs recomputation.
    Sparse {
        /// Nodes touched by at least one mutation since the sync epoch,
        /// in unspecified order, without duplicates.
        nodes: Vec<NodeId>,
        /// Whether any of those mutations changed graph *structure*
        /// (edge added or removed). Structural changes can reroute
        /// shortest paths between arbitrary node pairs, so memoized
        /// values derived from paths (Eq. (4) fallbacks) cannot be
        /// salvaged by neighborhood reasoning alone.
        structural: bool,
    },
    /// A whole-state mutation happened (e.g. [`clear`]) — or the consumer
    /// is lagging behind one. Everything derived from the source must be
    /// recomputed.
    ///
    /// [`clear`]: crate::interaction::InteractionTracker::clear
    Full,
}

impl DirtyDelta {
    /// `true` when nothing changed since the sync epoch.
    #[inline]
    pub fn is_clean(&self) -> bool {
        matches!(self, DirtyDelta::Clean)
    }

    /// `true` when the delta cannot be applied node-by-node: either a
    /// whole-state mutation, or a sparse set with the structural flag
    /// raised. Consumers of path- or structure-derived state (the Eq. (4)
    /// entries of the coefficient cache, the CSR rows of
    /// [`crate::snapshot::GraphSnapshot`]) must rebuild from scratch when
    /// this is set.
    #[inline]
    pub fn requires_rebuild(&self) -> bool {
        match self {
            DirtyDelta::Clean => false,
            DirtyDelta::Sparse { structural, .. } => *structural,
            DirtyDelta::Full => true,
        }
    }
}

/// One journal slot: `node` was last touched at `epoch`. Slots whose node
/// was touched again later are *tombstones* ([`DirtyEntry::is_tombstone`])
/// and must be skipped when enumerating dirty nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyEntry {
    node: NodeId,
    epoch: u64,
}

/// Sentinel marking a superseded journal slot. `u32::MAX` can never be a
/// real node id (dense ids are allocated from 0 and the graph would
/// exhaust memory long before 2³²−1 nodes).
const TOMBSTONE: NodeId = NodeId(u32::MAX);

impl DirtyEntry {
    /// The touched node. Meaningless on tombstones.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The epoch this slot was written at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a later touch of the same node superseded this slot.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.node == TOMBSTONE
    }
}

/// A borrowed view of what changed since a consumer's sync epoch: the
/// zero-copy counterpart of [`DirtyDelta`]. `Sparse` borrows the log's
/// journal suffix instead of cloning the dirty set, so N consumers (or N
/// snapshot shards) can each walk their slice of one delta without N
/// allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyDeltaRef<'a> {
    /// Nothing changed.
    Clean,
    /// A sparse set of nodes changed; enumerate them (deduplicated) with
    /// [`DirtyDeltaRef::nodes`] or [`DirtyDeltaRef::nodes_in_range`].
    Sparse {
        /// The journal suffix written after the sync epoch. May contain
        /// tombstones; the iterator helpers skip them.
        entries: &'a [DirtyEntry],
        /// See [`DirtyDelta::Sparse::structural`].
        structural: bool,
    },
    /// Whole-state mutation; everything must be recomputed.
    Full,
}

impl<'a> DirtyDeltaRef<'a> {
    /// `true` when nothing changed since the sync epoch.
    #[inline]
    pub fn is_clean(&self) -> bool {
        matches!(self, DirtyDeltaRef::Clean)
    }

    /// Mirror of [`DirtyDelta::requires_rebuild`].
    #[inline]
    pub fn requires_rebuild(&self) -> bool {
        match self {
            DirtyDeltaRef::Clean => false,
            DirtyDeltaRef::Sparse { structural, .. } => *structural,
            DirtyDeltaRef::Full => true,
        }
    }

    /// The dirty nodes (live journal entries), in touch order, without
    /// duplicates. Empty for `Clean` and `Full`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        let entries = match self {
            DirtyDeltaRef::Sparse { entries, .. } => *entries,
            _ => &[],
        };
        entries.iter().filter(|e| !e.is_tombstone()).map(|e| e.node)
    }

    /// The dirty nodes whose index falls in `[start, end)` — one snapshot
    /// shard's borrowed slice of the delta. Zero-copy: every shard filters
    /// the same journal suffix.
    pub fn nodes_in_range(&self, start: usize, end: usize) -> impl Iterator<Item = NodeId> + 'a {
        self.nodes()
            .filter(move |v| (start..end).contains(&v.index()))
    }

    /// Materialize into the owning [`DirtyDelta`] (the legacy API shape).
    pub fn to_delta(&self) -> DirtyDelta {
        match self {
            DirtyDeltaRef::Clean => DirtyDelta::Clean,
            DirtyDeltaRef::Full => DirtyDelta::Full,
            DirtyDeltaRef::Sparse { structural, .. } => DirtyDelta::Sparse {
                nodes: self.nodes().collect(),
                structural: *structural,
            },
        }
    }
}

/// Epoch counter plus epoch-ordered touch journal (see module docs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirtyLog {
    /// Bumped by every mutation. `0` means "never mutated".
    epoch: u64,
    /// Touch journal, ascending by epoch. A node's *latest* touch is its
    /// only live slot; earlier slots are tombstones.
    journal: Vec<DirtyEntry>,
    /// Live (non-tombstone) entries in `journal`.
    live: usize,
    /// `slot_of[v]` = index of `v`'s live journal slot, or `u32::MAX`.
    /// Dense per-node array (not a map): one `u32` per node ever touched.
    slot_of: Vec<u32>,
    /// Epoch of the most recent *structural* mutation (edge add/remove).
    structural_epoch: u64,
    /// Epoch of the most recent whole-state mutation (e.g. `clear`).
    /// Consumers synced before this point must do a full recomputation.
    global_epoch: u64,
}

const NO_SLOT: u32 = u32::MAX;

impl DirtyLog {
    /// A fresh log at epoch 0 with nothing dirty.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch. Two observations of the same epoch on the same
    /// source are guaranteed to have seen identical state.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a non-structural mutation touching `nodes`.
    pub fn touch(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.epoch += 1;
        let e = self.epoch;
        for v in nodes {
            let i = v.index();
            if i >= self.slot_of.len() {
                self.slot_of.resize(i + 1, NO_SLOT);
            }
            let old = self.slot_of[i];
            if old != NO_SLOT {
                self.journal[old as usize].node = TOMBSTONE;
                self.live -= 1;
            }
            self.slot_of[i] = self.journal.len() as u32;
            self.journal.push(DirtyEntry { node: v, epoch: e });
            self.live += 1;
        }
        self.maybe_compact();
    }

    /// Record a structural mutation (edge add/remove) touching `nodes`.
    pub fn touch_structural(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.touch(nodes);
        self.structural_epoch = self.epoch;
    }

    /// Record a whole-state mutation: everything is dirty for every
    /// consumer, and the journal can be dropped (allocations are kept for
    /// reuse).
    pub fn touch_all(&mut self) {
        self.epoch += 1;
        self.global_epoch = self.epoch;
        self.journal.clear();
        self.live = 0;
        self.slot_of.fill(NO_SLOT);
    }

    /// Drop tombstones once they outnumber live entries (amortized O(1)
    /// per touch). Compaction is stable, so the journal stays
    /// epoch-sorted, and it only runs from `&mut` mutators — borrowed
    /// deltas handed out earlier are unaffected.
    fn maybe_compact(&mut self) {
        if self.journal.len() < 64 || self.journal.len() < self.live * 2 {
            return;
        }
        self.journal.retain(|e| !e.is_tombstone());
        for (idx, e) in self.journal.iter().enumerate() {
            self.slot_of[e.node.index()] = idx as u32;
        }
    }

    /// What changed since a consumer's sync epoch `since`, as a borrowed
    /// view. Returns [`DirtyDeltaRef::Full`] when a whole-state mutation
    /// happened after `since`; otherwise a borrowed journal suffix
    /// covering exactly `{v : last_touched(v) > since}`.
    pub fn changes_since_ref(&self, since: u64) -> DirtyDeltaRef<'_> {
        if since >= self.epoch {
            return DirtyDeltaRef::Clean;
        }
        if since < self.global_epoch {
            return DirtyDeltaRef::Full;
        }
        let start = self.journal.partition_point(|e| e.epoch <= since);
        DirtyDeltaRef::Sparse {
            entries: &self.journal[start..],
            structural: self.structural_epoch > since,
        }
    }

    /// Owning variant of [`changes_since_ref`](Self::changes_since_ref),
    /// kept for consumers that need to hold the delta across mutations.
    pub fn changes_since(&self, since: u64) -> DirtyDelta {
        self.changes_since_ref(since).to_delta()
    }

    /// Approximate heap bytes held by the log (journal + slot table).
    pub fn bytes(&self) -> usize {
        self.journal.capacity() * std::mem::size_of::<DirtyEntry>()
            + self.slot_of.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
        v.sort();
        v
    }

    #[test]
    fn fresh_log_is_clean() {
        let log = DirtyLog::new();
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.changes_since(0), DirtyDelta::Clean);
    }

    #[test]
    fn touch_reports_exact_sparse_suffix() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(1)]);
        let mid = log.epoch();
        log.touch([NodeId(2), NodeId(3)]);
        match log.changes_since(0) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(sorted(nodes), vec![NodeId(1), NodeId(2), NodeId(3)]);
                assert!(!structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        match log.changes_since(mid) {
            DirtyDelta::Sparse { nodes, .. } => {
                assert_eq!(sorted(nodes), vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        assert_eq!(log.changes_since(log.epoch()), DirtyDelta::Clean);
    }

    #[test]
    fn repeated_touches_deduplicate() {
        let mut log = DirtyLog::new();
        for _ in 0..100 {
            log.touch([NodeId(7)]);
        }
        match log.changes_since(0) {
            DirtyDelta::Sparse { nodes, .. } => assert_eq!(nodes, vec![NodeId(7)]),
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }

    #[test]
    fn structural_flag_tracks_sync_epoch() {
        let mut log = DirtyLog::new();
        log.touch_structural([NodeId(0), NodeId(1)]);
        let after_edge = log.epoch();
        log.touch([NodeId(2)]);
        match log.changes_since(0) {
            DirtyDelta::Sparse { structural, .. } => assert!(structural),
            other => panic!("expected sparse delta, got {other:?}"),
        }
        // A consumer synced after the edge change only sees the
        // interaction-style touch.
        match log.changes_since(after_edge) {
            DirtyDelta::Sparse { nodes, structural } => {
                assert_eq!(nodes, vec![NodeId(2)]);
                assert!(!structural);
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }

    #[test]
    fn delta_classification_helpers() {
        assert!(DirtyDelta::Clean.is_clean());
        assert!(!DirtyDelta::Clean.requires_rebuild());
        assert!(DirtyDelta::Full.requires_rebuild());
        assert!(!DirtyDelta::Full.is_clean());
        let sparse = DirtyDelta::Sparse {
            nodes: vec![NodeId(1)],
            structural: false,
        };
        assert!(!sparse.is_clean());
        assert!(!sparse.requires_rebuild());
        let structural = DirtyDelta::Sparse {
            nodes: vec![NodeId(1)],
            structural: true,
        };
        assert!(structural.requires_rebuild());
    }

    #[test]
    fn touch_all_forces_full_for_lagging_consumers() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(1)]);
        let before_clear = log.epoch();
        log.touch_all();
        assert_eq!(log.changes_since(before_clear), DirtyDelta::Full);
        assert_eq!(log.changes_since(0), DirtyDelta::Full);
        // Consumers synced at/after the clear see only later touches.
        let after_clear = log.epoch();
        assert_eq!(log.changes_since(after_clear), DirtyDelta::Clean);
        log.touch([NodeId(4)]);
        match log.changes_since(after_clear) {
            DirtyDelta::Sparse { nodes, .. } => assert_eq!(nodes, vec![NodeId(4)]),
            other => panic!("expected sparse delta, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_delta_matches_owning_delta() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(3)]);
        let mid = log.epoch();
        log.touch_structural([NodeId(1), NodeId(3)]);
        for since in [0, mid, log.epoch()] {
            assert_eq!(
                log.changes_since_ref(since).to_delta(),
                log.changes_since(since)
            );
        }
        // Re-touched node 3 appears once, at its newest epoch.
        match log.changes_since_ref(0) {
            DirtyDeltaRef::Sparse { structural, .. } => {
                let nodes = sorted(log.changes_since_ref(0).nodes().collect());
                assert_eq!(nodes, vec![NodeId(1), NodeId(3)]);
                assert!(structural);
            }
            other => panic!("expected sparse ref, got {other:?}"),
        }
    }

    #[test]
    fn range_filter_slices_per_shard() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(0), NodeId(5), NodeId(9), NodeId(12)]);
        let delta = log.changes_since_ref(0);
        let low: Vec<NodeId> = delta.nodes_in_range(0, 8).collect();
        let high: Vec<NodeId> = delta.nodes_in_range(8, 16).collect();
        assert_eq!(low, vec![NodeId(0), NodeId(5)]);
        assert_eq!(high, vec![NodeId(9), NodeId(12)]);
    }

    #[test]
    fn compaction_preserves_answers() {
        let mut log = DirtyLog::new();
        // Re-touch a small set far more often than the compaction
        // threshold, so tombstone reclamation must trigger.
        for round in 0..500u32 {
            log.touch([NodeId(round % 5)]);
        }
        match log.changes_since(0) {
            DirtyDelta::Sparse { nodes, .. } => {
                assert_eq!(
                    sorted(nodes),
                    (0..5).map(NodeId).collect::<Vec<_>>(),
                    "every node exactly once despite 500 touches"
                );
            }
            other => panic!("expected sparse delta, got {other:?}"),
        }
        assert!(
            log.bytes() < 64 * 1024,
            "journal stays bounded by live count"
        );
    }

    #[test]
    fn serde_roundtrip_preserves_history() {
        let mut log = DirtyLog::new();
        log.touch([NodeId(1)]);
        let mid = log.epoch();
        log.touch_structural([NodeId(2)]);
        let json = serde_json::to_string(&log).expect("serialize");
        let back: DirtyLog = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.epoch(), log.epoch());
        assert_eq!(back.changes_since(mid), log.changes_since(mid));
        assert_eq!(back.changes_since(0), log.changes_since(0));
    }
}
