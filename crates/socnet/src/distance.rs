//! Social distance: breadth-first search over the social graph.
//!
//! The paper defines social distance as *"the number of hops in the shortest
//! path between them in the personal network"*. Overstock users transact
//! mostly within 3 hops (Observation O3), so most callers pass a small hop
//! cap to keep searches cheap on large graphs.

use std::collections::VecDeque;

use crate::graph::SocialGraph;
use crate::NodeId;

/// Shortest-path hop distance from `src` to `dst`, or `None` if unreachable
/// (or further than `cap` hops when a cap is given).
///
/// `bfs_distance(g, v, v, _)` is `Some(0)`.
pub fn bfs_distance(g: &SocialGraph, src: NodeId, dst: NodeId, cap: Option<u32>) -> Option<u32> {
    if src == dst {
        return Some(0);
    }
    let n = g.node_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if let Some(c) = cap {
            if d >= c {
                continue;
            }
        }
        for &w in g.neighbors(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                if w == dst {
                    return Some(d + 1);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Hop distances from `src` to every node, capped at `cap` hops if given.
/// Unreachable (or beyond-cap) nodes get `None`.
pub fn distances_from(g: &SocialGraph, src: NodeId, cap: Option<u32>) -> Vec<Option<u32>> {
    let n = g.node_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if let Some(c) = cap {
            if d >= c {
                continue;
            }
        }
        for &w in g.neighbors(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist.into_iter()
        .map(|d| if d == u32::MAX { None } else { Some(d) })
        .collect()
}

/// One shortest path from `src` to `dst` (inclusive of both endpoints),
/// or `None` if unreachable. Used by the Equation (4) fallback, which takes
/// the minimum closeness along the social path between two nodes that share
/// no common friend.
pub fn shortest_path(g: &SocialGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    'bfs: while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some(v);
                if w == dst {
                    break 'bfs;
                }
                queue.push_back(w);
            }
        }
    }
    if !seen[dst.index()] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], src);
    Some(path)
}

/// Eccentricity-free diameter estimate: the maximum finite BFS distance over
/// the given sample of source nodes. Exact when `sources` covers all nodes.
pub fn max_distance_from_sources(g: &SocialGraph, sources: &[NodeId]) -> Option<u32> {
    sources
        .iter()
        .flat_map(|&s| distances_from(g, s, None).into_iter().flatten())
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::Relationship;

    /// 0 - 1 - 2 - 3 path plus isolated node 4.
    fn path_graph() -> SocialGraph {
        let mut g = SocialGraph::new(5);
        for i in 0..3u32 {
            g.add_relationship(NodeId(i), NodeId(i + 1), Relationship::friendship());
        }
        g
    }

    #[test]
    fn distance_to_self_is_zero() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(2), NodeId(2), None), Some(0));
    }

    #[test]
    fn path_distances() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(1), None), Some(1));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(2), None), Some(2));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), None), Some(3));
        assert_eq!(bfs_distance(&g, NodeId(3), NodeId(0), None), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(4), None), None);
    }

    #[test]
    fn cap_truncates_search() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), Some(2)), None);
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), Some(3)), Some(3));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(2), Some(2)), Some(2));
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let g = path_graph();
        let d = distances_from(&g, NodeId(0), None);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), None]);
        for v in 0..5u32 {
            assert_eq!(d[v as usize], bfs_distance(&g, NodeId(0), NodeId(v), None));
        }
    }

    #[test]
    fn distances_from_with_cap() {
        let g = path_graph();
        let d = distances_from(&g, NodeId(0), Some(1));
        assert_eq!(d, vec![Some(0), Some(1), None, None, None]);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_graph();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
        assert!(shortest_path(&g, NodeId(0), NodeId(4)).is_none());
    }

    #[test]
    fn shortest_path_prefers_minimum_hops() {
        // Square with a diagonal: 0-1, 1-2, 2-3, 3-0, 0-2. Path 1→3 has two
        // 2-hop routes; length must be 2.
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(0), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(2), Relationship::friendship());
        let p = shortest_path(&g, NodeId(1), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(1));
        assert_eq!(p[2], NodeId(3));
    }

    #[test]
    fn max_distance_over_sources() {
        let g = path_graph();
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(max_distance_from_sources(&g, &all), Some(3));
        assert_eq!(max_distance_from_sources(&g, &[]), None);
    }
}
