//! Social distance: breadth-first search over the social graph.
//!
//! The paper defines social distance as *"the number of hops in the shortest
//! path between them in the personal network"*. Overstock users transact
//! mostly within 3 hops (Observation O3), so most callers pass a small hop
//! cap to keep searches cheap on large graphs.
//!
//! All traversals run on a reusable [`BfsScratch`]: stamp-validated visited
//! marks plus distance/parent/queue buffers that are grown once and then
//! recycled, so the per-query cost is the traversal itself, not `O(n)`
//! allocation and zeroing. The free functions reuse one scratch per thread;
//! hot batch kernels (the CSR snapshot in [`crate::snapshot`]) pass their
//! own explicitly.

use std::cell::RefCell;
use std::collections::VecDeque;

use crate::graph::SocialGraph;
use crate::NodeId;

/// Reusable BFS working memory: visited marks, distances, parent links, and
/// the frontier queue.
///
/// The visited set is stamp-validated: `mark[v] == stamp` means "visited in
/// the current traversal", so starting a new traversal is a counter bump
/// instead of an `O(n)` clear. `dist`/`parent` entries are only meaningful
/// for visited nodes.
#[derive(Debug, Default)]
pub struct BfsScratch {
    mark: Vec<u32>,
    stamp: u32,
    pub(crate) dist: Vec<u32>,
    /// `parent[v]` is the BFS-tree predecessor of `v`; `u32::MAX` marks the
    /// source (or an unvisited slot).
    pub(crate) parent: Vec<u32>,
    pub(crate) queue: VecDeque<u32>,
    /// Path-reconstruction buffer shared by the Eq. (4) kernels.
    pub(crate) path: Vec<u32>,
}

impl BfsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Prepare for a fresh traversal over `n` nodes: grow the buffers if
    /// needed, clear the queue, and invalidate all visited marks (O(1)
    /// amortized via the stamp; a full clear only on stamp wrap-around).
    pub(crate) fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.dist.resize(n, 0);
            self.parent.resize(n, u32::MAX);
        }
        if self.stamp == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.queue.clear();
    }

    /// Mark `v` visited; returns `false` when it already was this traversal.
    #[inline]
    pub(crate) fn visit(&mut self, v: usize) -> bool {
        if self.mark[v] == self.stamp {
            false
        } else {
            self.mark[v] = self.stamp;
            true
        }
    }

    /// Whether `v` was visited in the current traversal.
    #[inline]
    pub(crate) fn visited(&self, v: usize) -> bool {
        self.mark[v] == self.stamp
    }
}

thread_local! {
    static SCRATCH: RefCell<BfsScratch> = RefCell::new(BfsScratch::new());
}

/// Run `f` with this thread's shared BFS scratch. The free traversal
/// functions and the snapshot kernels route through here so repeated
/// queries on one thread reuse a single set of buffers.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut BfsScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Shortest-path hop distance from `src` to `dst`, or `None` if unreachable
/// (or further than `cap` hops when a cap is given).
///
/// `bfs_distance(g, v, v, _)` is `Some(0)`.
pub fn bfs_distance(g: &SocialGraph, src: NodeId, dst: NodeId, cap: Option<u32>) -> Option<u32> {
    with_thread_scratch(|scratch| bfs_distance_with(g, src, dst, cap, scratch))
}

/// [`bfs_distance`] on a caller-provided scratch.
pub fn bfs_distance_with(
    g: &SocialGraph,
    src: NodeId,
    dst: NodeId,
    cap: Option<u32>,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    if src == dst {
        return Some(0);
    }
    scratch.begin(g.node_count());
    scratch.visit(src.index());
    scratch.dist[src.index()] = 0;
    scratch.queue.push_back(src.0);
    while let Some(v) = scratch.queue.pop_front() {
        let d = scratch.dist[v as usize];
        if let Some(c) = cap {
            if d >= c {
                continue;
            }
        }
        for &w in g.neighbors(NodeId(v)) {
            if scratch.visit(w.index()) {
                scratch.dist[w.index()] = d + 1;
                if w == dst {
                    return Some(d + 1);
                }
                scratch.queue.push_back(w.0);
            }
        }
    }
    None
}

/// Hop distances from `src` to every node, capped at `cap` hops if given.
/// Unreachable (or beyond-cap) nodes get `None`.
pub fn distances_from(g: &SocialGraph, src: NodeId, cap: Option<u32>) -> Vec<Option<u32>> {
    with_thread_scratch(|scratch| distances_from_with(g, src, cap, scratch))
}

/// [`distances_from`] on a caller-provided scratch.
pub fn distances_from_with(
    g: &SocialGraph,
    src: NodeId,
    cap: Option<u32>,
    scratch: &mut BfsScratch,
) -> Vec<Option<u32>> {
    let n = g.node_count();
    scratch.begin(n);
    scratch.visit(src.index());
    scratch.dist[src.index()] = 0;
    scratch.queue.push_back(src.0);
    while let Some(v) = scratch.queue.pop_front() {
        let d = scratch.dist[v as usize];
        if let Some(c) = cap {
            if d >= c {
                continue;
            }
        }
        for &w in g.neighbors(NodeId(v)) {
            if scratch.visit(w.index()) {
                scratch.dist[w.index()] = d + 1;
                scratch.queue.push_back(w.0);
            }
        }
    }
    (0..n)
        .map(|v| {
            if scratch.visited(v) {
                Some(scratch.dist[v])
            } else {
                None
            }
        })
        .collect()
}

/// One shortest path from `src` to `dst` (inclusive of both endpoints),
/// or `None` if unreachable. Used by the Equation (4) fallback, which takes
/// the minimum closeness along the social path between two nodes that share
/// no common friend.
pub fn shortest_path(g: &SocialGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    with_thread_scratch(|scratch| shortest_path_with(g, src, dst, scratch))
}

/// [`shortest_path`] on a caller-provided scratch.
pub fn shortest_path_with(
    g: &SocialGraph,
    src: NodeId,
    dst: NodeId,
    scratch: &mut BfsScratch,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    scratch.begin(g.node_count());
    scratch.visit(src.index());
    scratch.parent[src.index()] = u32::MAX;
    scratch.queue.push_back(src.0);
    'bfs: while let Some(v) = scratch.queue.pop_front() {
        for &w in g.neighbors(NodeId(v)) {
            if scratch.visit(w.index()) {
                scratch.parent[w.index()] = v;
                if w == dst {
                    break 'bfs;
                }
                scratch.queue.push_back(w.0);
            }
        }
    }
    if !scratch.visited(dst.index()) {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst.index();
    while scratch.parent[cur] != u32::MAX {
        let p = scratch.parent[cur];
        path.push(NodeId(p));
        cur = p as usize;
    }
    path.reverse();
    debug_assert_eq!(path[0], src);
    Some(path)
}

/// Eccentricity-free diameter estimate: the maximum finite BFS distance over
/// the given sample of source nodes. Exact when `sources` covers all nodes.
pub fn max_distance_from_sources(g: &SocialGraph, sources: &[NodeId]) -> Option<u32> {
    sources
        .iter()
        .flat_map(|&s| distances_from(g, s, None).into_iter().flatten())
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::Relationship;

    /// 0 - 1 - 2 - 3 path plus isolated node 4.
    fn path_graph() -> SocialGraph {
        let mut g = SocialGraph::new(5);
        for i in 0..3u32 {
            g.add_relationship(NodeId(i), NodeId(i + 1), Relationship::friendship());
        }
        g
    }

    #[test]
    fn distance_to_self_is_zero() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(2), NodeId(2), None), Some(0));
    }

    #[test]
    fn path_distances() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(1), None), Some(1));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(2), None), Some(2));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), None), Some(3));
        assert_eq!(bfs_distance(&g, NodeId(3), NodeId(0), None), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(4), None), None);
    }

    #[test]
    fn cap_truncates_search() {
        let g = path_graph();
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), Some(2)), None);
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(3), Some(3)), Some(3));
        assert_eq!(bfs_distance(&g, NodeId(0), NodeId(2), Some(2)), Some(2));
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let g = path_graph();
        let d = distances_from(&g, NodeId(0), None);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), None]);
        for v in 0..5u32 {
            assert_eq!(d[v as usize], bfs_distance(&g, NodeId(0), NodeId(v), None));
        }
    }

    #[test]
    fn distances_from_with_cap() {
        let g = path_graph();
        let d = distances_from(&g, NodeId(0), Some(1));
        assert_eq!(d, vec![Some(0), Some(1), None, None, None]);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_graph();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
        assert!(shortest_path(&g, NodeId(0), NodeId(4)).is_none());
    }

    #[test]
    fn shortest_path_prefers_minimum_hops() {
        // Square with a diagonal: 0-1, 1-2, 2-3, 3-0, 0-2. Path 1→3 has two
        // 2-hop routes; length must be 2.
        let mut g = SocialGraph::new(4);
        g.add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
        g.add_relationship(NodeId(1), NodeId(2), Relationship::friendship());
        g.add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        g.add_relationship(NodeId(3), NodeId(0), Relationship::friendship());
        g.add_relationship(NodeId(0), NodeId(2), Relationship::friendship());
        let p = shortest_path(&g, NodeId(1), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(1));
        assert_eq!(p[2], NodeId(3));
    }

    #[test]
    fn max_distance_over_sources() {
        let g = path_graph();
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(max_distance_from_sources(&g, &all), Some(3));
        assert_eq!(max_distance_from_sources(&g, &[]), None);
    }

    #[test]
    fn one_scratch_serves_interleaved_traversals() {
        // Distances, paths, and reachability answers must be identical when
        // every query recycles the same scratch (stale marks from earlier
        // traversals must never leak into later ones).
        let g = path_graph();
        let mut scratch = BfsScratch::new();
        for _ in 0..3 {
            assert_eq!(
                bfs_distance_with(&g, NodeId(0), NodeId(3), None, &mut scratch),
                Some(3)
            );
            assert_eq!(
                bfs_distance_with(&g, NodeId(0), NodeId(4), None, &mut scratch),
                None
            );
            assert_eq!(
                shortest_path_with(&g, NodeId(3), NodeId(0), &mut scratch).unwrap(),
                vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
            );
            assert_eq!(
                distances_from_with(&g, NodeId(1), Some(1), &mut scratch),
                vec![Some(1), Some(0), Some(1), None, None]
            );
            assert_eq!(
                bfs_distance_with(&g, NodeId(0), NodeId(3), Some(2), &mut scratch),
                None
            );
        }
    }

    #[test]
    fn scratch_grows_across_differently_sized_graphs() {
        let small = path_graph();
        let mut big = SocialGraph::new(10);
        for i in 0..9u32 {
            big.add_relationship(NodeId(i), NodeId(i + 1), Relationship::friendship());
        }
        let mut scratch = BfsScratch::new();
        assert_eq!(
            bfs_distance_with(&small, NodeId(0), NodeId(3), None, &mut scratch),
            Some(3)
        );
        assert_eq!(
            bfs_distance_with(&big, NodeId(0), NodeId(9), None, &mut scratch),
            Some(9)
        );
        assert_eq!(
            bfs_distance_with(&small, NodeId(0), NodeId(2), None, &mut scratch),
            Some(2)
        );
    }
}
