//! EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW'03) — the
//! power-iteration reputation system the paper uses as its primary baseline.
//!
//! Each node `i` accumulates local satisfaction `s_ij` about each node `j`
//! (sum of rating values, `+1` authentic / `-1` inauthentic in the paper's
//! experiments). Local trust is normalized,
//!
//! ```text
//! c_ij = max(s_ij, 0) / Σ_j max(s_ij, 0)
//! ```
//!
//! with rows that have no positive trust defaulting to the pre-trusted
//! distribution `p`. The global trust vector is the fixed point of the
//! damped iteration
//!
//! ```text
//! t⁽ᵏ⁺¹⁾ = (1 − a)·Cᵀ t⁽ᵏ⁾ + a·p
//! ```
//!
//! The paper sets the pre-trusted weight `a = 0.5` in its experiments
//! ("*We set the weight of reputations from pretrusted nodes in EigenTrust
//! to 0.5*").
//!
//! Because ratings from high-reputation raters carry more weight (they are
//! mixed in proportionally to `t_rater`), EigenTrust is exactly the system
//! the paper shows to be vulnerable to mutual-boosting collusion (PCM /
//! MMM) — reproducing that vulnerability requires a faithful
//! implementation, which this is.
//!
//! The implementation is incremental: the local-trust matrix is kept as
//! sparse CSR-style satisfaction rows (sorted id/value slices, no per-node
//! maps) whose positive-sum normalizers are updated in place as ratings
//! fold in (the dense `C` is never materialized), together with an
//! incrementally maintained **transpose** — for each ratee, the sorted
//! raters and their satisfaction values. The transpose turns the
//! `Cᵀ t` product into a gather: each output element `t'_j` is a private
//! accumulation over column `j`, so the power iteration runs blocked over
//! contiguous `j` ranges, rayon-parallel, with the L1 residual
//! tree-reduced from per-block partials. Because a gather accumulates
//! column `j` in the same ascending-rater order the historical row-scatter
//! did, the blocked iteration is **bit-for-bit identical** to the serial
//! one for any block size (only the residual's summation tree depends on
//! the block count, which can at most shift the stopping decision when the
//! residual lands within one ulp of `epsilon`). The transpose also makes
//! [`reset_node`](crate::system::ReputationSystem::reset_node) O(degree)
//! instead of an O(n) scan over all rows.
//!
//! The power iteration warm-starts from the previous cycle's trust
//! vector — sound because the damped map is a contraction with a unique
//! fixed point, and visible as a drop in
//! [`last_iterations`](EigenTrust::last_iterations) when the rating stream
//! is sparse between cycles.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::{
    trace::names as trace_names, Counter, Event, EventSink, Gauge, Telemetry, Tracer,
};

use crate::normalize::l1_distance;
use crate::rating::Rating;
use crate::system::{ConvergenceRecord, ReputationSystem};

/// Tunables for the EigenTrust engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EigenTrustConfig {
    /// The damping weight `a` toward the pre-trusted distribution.
    ///
    /// The original EigenTrust paper uses `a ≈ 0.1`; the SocialTrust paper
    /// says it "set the weight of reputations from pretrusted nodes to
    /// 0.5", but its own Figure 8(a) magnitudes (pre-trusted nodes at
    /// ~0.01, *below* the colluders) are only reachable with a small
    /// damping — `a = 0.5` would structurally pin ≥ 0.5 of the total trust
    /// mass on the 9 pre-trusted nodes. We therefore default to the
    /// standard `0.1` and expose the knob.
    pub pretrust_weight: f64,
    /// L1 convergence threshold for the power iteration.
    pub epsilon: f64,
    /// Safety cap on power-iteration steps.
    pub max_iterations: usize,
    /// Warm-start each power iteration from the previous cycle's trust
    /// vector instead of restarting from `p`.
    ///
    /// The damped iteration is an L1 contraction with factor `1 − a`, so
    /// it has a unique fixed point regardless of the start vector — warm
    /// and cold starts converge to the same reputations (within the
    /// `epsilon` stopping tolerance; the property tests assert this), but
    /// in the steady-state regime where few local trust values moved
    /// between cycles the previous vector is already near the fixed point
    /// and the iteration count collapses. Falls back to `p` on the first
    /// cycle and after [`reset_node`](crate::system::ReputationSystem::reset_node).
    pub warm_start: bool,
    /// Output rows per power-iteration block. Each block gathers its
    /// contiguous `j` range of `t'_j` independently; blocks are the unit
    /// of rayon fan-out and of the tree-reduced residual. Per-element
    /// results are bit-for-bit independent of this knob (see module docs).
    pub block_size: usize,
    /// Fan the blocks out over rayon. `false` runs the identical blocked
    /// computation on the calling thread — same arithmetic, same results,
    /// bit for bit (the property tests assert it).
    pub parallel: bool,
}

impl Default for EigenTrustConfig {
    fn default() -> Self {
        EigenTrustConfig {
            pretrust_weight: 0.1,
            epsilon: 1e-10,
            max_iterations: 1000,
            warm_start: true,
            block_size: 4096,
            parallel: true,
        }
    }
}

/// A sparse vector as parallel sorted slices: ascending ids with their
/// values. The CSR-row building block for both the satisfaction matrix and
/// its transpose — two `Vec`s per node instead of a `BTreeMap` (one heap
/// block and cache-linear scans instead of a pointer-chased tree node per
/// entry).
#[derive(Debug, Clone, Default)]
struct SparseVec {
    ids: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseVec {
    #[inline]
    fn get(&self, id: u32) -> Option<f64> {
        self.ids.binary_search(&id).ok().map(|p| self.vals[p])
    }

    /// Accumulate `delta` into the entry for `id`, inserting it if absent.
    fn add(&mut self, id: u32, delta: f64) {
        match self.ids.binary_search(&id) {
            Ok(p) => self.vals[p] += delta,
            Err(p) => {
                self.ids.insert(p, id);
                self.vals.insert(p, delta);
            }
        }
    }

    /// Remove the entry for `id`; `true` if it existed.
    fn remove(&mut self, id: u32) -> bool {
        match self.ids.binary_search(&id) {
            Ok(p) => {
                self.ids.remove(p);
                self.vals.remove(p);
                true
            }
            Err(_) => false,
        }
    }

    fn bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f64>()
    }
}

/// Registry handles and event sink for one EigenTrust instance, created by
/// [`ReputationSystem::attach_telemetry`]. Cloned handles share cells, so
/// cloning an attached engine keeps reporting to the same registry.
#[derive(Debug, Clone)]
struct EigenTrustTelemetry {
    /// `eigentrust_iterations`: iterations of the most recent update.
    iterations: Gauge,
    /// `eigentrust_residual`: final L1 residual of the most recent update.
    residual: Gauge,
    /// `eigentrust_warm_start`: 1 when the most recent update warm-started.
    warm_start: Gauge,
    /// `eigentrust_warm_starts_total`: updates that resumed from the
    /// previous cycle's vector.
    warm_starts_total: Counter,
    /// `eigentrust_cycles_total`: completed reputation updates.
    cycles_total: Counter,
    /// `eigentrust_bytes_per_node`: heap bytes of the sparse matrix (rows
    /// + transpose + vectors) per node, refreshed after every update.
    bytes_per_node: Gauge,
    sink: EventSink,
    /// Decision-provenance tracer: when a cycle trace is live, each update
    /// records an `eigentrust_update` span (nested under the decorator's
    /// `reputation_update` when wrapped).
    tracer: Tracer,
}

impl EigenTrustTelemetry {
    fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        EigenTrustTelemetry {
            iterations: registry.gauge("eigentrust_iterations"),
            residual: registry.gauge("eigentrust_residual"),
            warm_start: registry.gauge("eigentrust_warm_start"),
            warm_starts_total: registry.counter("eigentrust_warm_starts_total"),
            cycles_total: registry.counter("eigentrust_cycles_total"),
            bytes_per_node: registry.gauge("eigentrust_bytes_per_node"),
            sink: telemetry.sink().clone(),
            tracer: telemetry.tracer().clone(),
        }
    }
}

/// The EigenTrust reputation engine.
#[derive(Debug, Clone)]
pub struct EigenTrust {
    config: EigenTrustConfig,
    /// `p`: the pre-trusted distribution (uniform over pre-trusted nodes).
    pretrust: Vec<f64>,
    /// Accumulated local satisfaction sums `s_ij`: CSR-style sparse rows
    /// (sorted ratee ids + values) per rater.
    sat: Vec<SparseVec>,
    /// The transpose, maintained incrementally alongside `sat`: for each
    /// ratee `j`, the sorted rater ids `i` with their `s_ij`. Column `j`
    /// of `C` in gather form — what the blocked power iteration reads —
    /// and the O(degree) index behind `reset_node`.
    cols: Vec<SparseVec>,
    /// `row_pos[i] = Σ_j max(s_ij, 0)` — the local-trust normalizer of row
    /// `i`, maintained in place as ratings are folded in so the power
    /// iteration never rescans (let alone materializes) the full matrix.
    row_pos: Vec<f64>,
    /// Ratings buffered since the last `end_cycle`.
    buffer: Vec<Rating>,
    /// Global trust vector from the last `end_cycle`.
    reputations: Vec<f64>,
    /// Whether `reputations` holds a converged vector from a previous
    /// cycle that warm starts may resume from. `false` until the first
    /// `end_cycle` and after `reset_node` (the reset invalidates the old
    /// fixed point, so the next iteration restarts from `p`).
    warm: bool,
    /// Iterations the last power iteration took (diagnostics).
    last_iterations: usize,
    /// Final L1 residual of the last power iteration (diagnostics).
    last_residual: f64,
    /// Whether the last power iteration resumed from the previous cycle's
    /// vector.
    last_warm_started: bool,
    /// Completed `end_cycle` calls, used as the cycle index of emitted
    /// convergence events.
    cycles: u64,
    /// Registry handles; `None` until `attach_telemetry`.
    telemetry: Option<EigenTrustTelemetry>,
}

impl EigenTrust {
    /// Create an engine over `n` nodes with the given pre-trusted set.
    ///
    /// If `pretrusted` is empty, `p` falls back to the uniform
    /// distribution (as in the original EigenTrust when no pre-trusted
    /// peers exist).
    ///
    /// # Panics
    /// Panics if any pre-trusted id is out of range or `pretrust_weight`
    /// is outside `[0, 1]`.
    pub fn new(n: usize, pretrusted: &[NodeId], config: EigenTrustConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.pretrust_weight),
            "pretrust weight must be in [0,1]"
        );
        let mut pretrust = vec![0.0; n];
        if pretrusted.is_empty() {
            for v in &mut pretrust {
                *v = 1.0 / n as f64;
            }
        } else {
            for &pnode in pretrusted {
                assert!(pnode.index() < n, "pretrusted node {pnode} out of range");
                pretrust[pnode.index()] = 1.0 / pretrusted.len() as f64;
            }
        }
        // The paper: "The initial reputation of each node in the network is
        // 0" — everyone starts level, so cold-start server selection is
        // uniform. The pretrust prior only enters through the first
        // `end_cycle`'s power iteration.
        let reputations = vec![0.0; n];
        EigenTrust {
            config,
            pretrust,
            sat: vec![SparseVec::default(); n],
            cols: vec![SparseVec::default(); n],
            row_pos: vec![0.0; n],
            buffer: Vec::new(),
            reputations,
            warm: false,
            last_iterations: 0,
            last_residual: f64::INFINITY,
            last_warm_started: false,
            cycles: 0,
            telemetry: None,
        }
    }

    /// With the default configuration (`a = 0.1`, the standard EigenTrust
    /// damping — see [`EigenTrustConfig::pretrust_weight`]).
    pub fn with_defaults(n: usize, pretrusted: &[NodeId]) -> Self {
        EigenTrust::new(n, pretrusted, EigenTrustConfig::default())
    }

    /// The pre-trusted distribution `p`.
    pub fn pretrust(&self) -> &[f64] {
        &self.pretrust
    }

    /// How many iterations the last reputation update took to converge.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// The final L1 residual `‖t⁽ᵏ⁾ − t⁽ᵏ⁻¹⁾‖₁` when the last reputation
    /// update stopped iterating — below `epsilon` on convergence, above it
    /// only when `max_iterations` was hit. `f64::INFINITY` before the
    /// first update.
    pub fn last_residual(&self) -> f64 {
        self.last_residual
    }

    /// Accumulated local satisfaction `s_ij` (0 if never rated).
    pub fn local_satisfaction(&self, rater: NodeId, ratee: NodeId) -> f64 {
        self.sat[rater.index()].get(ratee.0).unwrap_or(0.0)
    }

    /// Heap bytes held by the sparse matrix (rows + transpose), the dense
    /// vectors, and the rating buffer — the figure the
    /// `eigentrust_bytes_per_node` gauge divides by `n`.
    pub fn bytes(&self) -> usize {
        self.sat.iter().map(SparseVec::bytes).sum::<usize>()
            + self.cols.iter().map(SparseVec::bytes).sum::<usize>()
            + (self.pretrust.capacity() + self.reputations.capacity() + self.row_pos.capacity())
                * std::mem::size_of::<f64>()
            + self.buffer.capacity() * std::mem::size_of::<Rating>()
    }

    /// Recompute `row_pos[i]` exactly from the sparse row. Called for the
    /// rows a cycle's ratings touched, so the normalizer never drifts from
    /// the value a from-scratch scan would produce, at O(touched nnz) cost.
    /// The ascending-id summation order matches what the historical
    /// `BTreeMap::values()` scan produced, bit for bit.
    fn refresh_row_pos(&mut self, i: usize) {
        self.row_pos[i] = self.sat[i].vals.iter().map(|&s| s.max(0.0)).sum();
    }

    /// Run the damped power iteration to the global trust vector as a
    /// blocked **gather** over the transpose — the matrix `C` is never
    /// materialized. Each block owns a contiguous `j` range and computes
    ///
    /// ```text
    /// next_j = a·p_j + Σ_{i asc} (1-a)·t_i·(s_ij / row_pos_i) + (1-a)·m·p_j
    /// ```
    ///
    /// where `m` (the trust mass of raters whose row defaults to `p`) is
    /// accumulated once per iteration in a sequential ascending-`i` pass.
    /// Column `j`'s sum runs over ascending `i` — the exact order the
    /// historical row-major scatter deposited into `next[j]` — so every
    /// element is bit-for-bit identical to the serial result for any block
    /// size. The L1 residual is tree-reduced: per-block partial sums (each
    /// the same left-to-right chain `l1_distance` uses) folded in
    /// ascending block order.
    fn power_iterate(&mut self) {
        let n = self.pretrust.len();
        if n == 0 {
            return;
        }
        let a = self.config.pretrust_weight;
        let warm_started = self.config.warm_start && self.warm;
        let mut t = if warm_started {
            self.reputations.clone()
        } else {
            self.pretrust.clone()
        };
        let block = self.config.block_size.max(1);
        let nblocks = n.div_ceil(block);
        let mut next = vec![0.0; n];
        let mut iters = 0;
        let residual;
        loop {
            // Trust mass held by raters whose row defaults to p, in the
            // same ascending skip-zero chain the row-major loop used.
            let mut default_mass = 0.0;
            for (i, &ti) in t.iter().enumerate() {
                if ti == 0.0 {
                    continue;
                }
                if self.row_pos[i] <= 0.0 {
                    default_mass += ti;
                }
            }
            let w_default = (1.0 - a) * default_mass;
            let t_ref: &[f64] = &t;
            let compute_block = |b: usize| -> (Vec<f64>, f64) {
                let start = b * block;
                let end = (start + block).min(n);
                let mut out = Vec::with_capacity(end - start);
                for j in start..end {
                    let mut acc = self.pretrust[j] * a;
                    let col = &self.cols[j];
                    for (idx, &iu) in col.ids.iter().enumerate() {
                        let ti = t_ref[iu as usize];
                        if ti == 0.0 {
                            continue;
                        }
                        let pos = self.row_pos[iu as usize];
                        if pos > 0.0 {
                            let s = col.vals[idx];
                            if s > 0.0 {
                                acc += ((1.0 - a) * ti) * (s / pos);
                            }
                        }
                    }
                    if default_mass != 0.0 {
                        acc += w_default * self.pretrust[j];
                    }
                    out.push(acc);
                }
                let partial = l1_distance(&out, &t_ref[start..end]);
                (out, partial)
            };
            let blocks: Vec<(Vec<f64>, f64)> = if self.config.parallel && nblocks > 1 {
                use rayon::prelude::*;
                (0..nblocks).into_par_iter().map(compute_block).collect()
            } else {
                (0..nblocks).map(compute_block).collect()
            };
            let delta: f64 = blocks.iter().map(|(_, partial)| *partial).sum();
            for (b, (chunk, _)) in blocks.into_iter().enumerate() {
                next[b * block..b * block + chunk.len()].copy_from_slice(&chunk);
            }
            iters += 1;
            std::mem::swap(&mut t, &mut next);
            if delta < self.config.epsilon || iters >= self.config.max_iterations {
                residual = delta;
                break;
            }
        }
        self.last_iterations = iters;
        self.last_residual = residual;
        self.last_warm_started = warm_started;
        self.reputations = t;
        self.warm = true;
    }

    /// Publish the last update's convergence reading to the attached
    /// registry and event sink (no-op when unattached).
    fn publish_convergence(&self) {
        let Some(t) = &self.telemetry else {
            return;
        };
        t.iterations.set(self.last_iterations as f64);
        t.residual.set(self.last_residual);
        t.warm_start
            .set(if self.last_warm_started { 1.0 } else { 0.0 });
        if self.last_warm_started {
            t.warm_starts_total.inc();
        }
        t.cycles_total.inc();
        let n = self.pretrust.len();
        if n > 0 {
            t.bytes_per_node.set(self.bytes() as f64 / n as f64);
        }
        if t.sink.is_enabled() {
            t.sink.emit(Event::EigenTrustConvergence {
                cycle: self.cycles,
                iterations: self.last_iterations as u64,
                residual: self.last_residual,
                warm_start: self.last_warm_started,
            });
        }
    }
}

impl ReputationSystem for EigenTrust {
    fn node_count(&self) -> usize {
        self.pretrust.len()
    }

    fn record(&mut self, rating: Rating) {
        self.buffer.push(rating);
    }

    fn end_cycle(&mut self) {
        let mut touched_rows: BTreeSet<usize> = BTreeSet::new();
        // Swap the buffer out (and back) so its allocation survives the
        // cycle instead of being reallocated every time.
        let mut buffer = std::mem::take(&mut self.buffer);
        for r in buffer.drain(..) {
            if r.rater == r.ratee {
                continue; // self-ratings are ignored, as in EigenTrust
            }
            self.sat[r.rater.index()].add(r.ratee.0, r.value);
            self.cols[r.ratee.index()].add(r.rater.0, r.value);
            touched_rows.insert(r.rater.index());
        }
        self.buffer = buffer;
        for i in touched_rows {
            self.refresh_row_pos(i);
        }
        // `None` when unattached, the tracer is disabled, or this cycle is
        // unsampled — the iteration then runs exactly as before.
        let span = self
            .telemetry
            .as_ref()
            .and_then(|t| t.tracer.child(trace_names::EIGENTRUST));
        self.power_iterate();
        if let Some(mut span) = span {
            span.set_attr("iterations", self.last_iterations);
            span.set_attr("residual", self.last_residual);
            span.set_attr("warm_start", self.last_warm_started);
            span.set_attr("epsilon", self.config.epsilon);
        }
        self.publish_convergence();
        self.cycles += 1;
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "EigenTrust".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        let ni = node.index();
        // The transpose column lists exactly the raters whose rows hold an
        // entry for `node`, so the wipe is O(in-degree + out-degree) — no
        // scan over all n rows.
        let raters = std::mem::take(&mut self.cols[ni]);
        for &i in &raters.ids {
            self.sat[i as usize].remove(node.0);
            self.refresh_row_pos(i as usize);
        }
        let row = std::mem::take(&mut self.sat[ni]);
        for &j in &row.ids {
            self.cols[j as usize].remove(node.0);
        }
        self.row_pos[ni] = 0.0;
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
        // The old fixed point no longer reflects the matrix; restart the
        // next power iteration from the pretrust prior.
        self.warm = false;
    }

    fn convergence(&self) -> Option<ConvergenceRecord> {
        if self.cycles == 0 {
            return None;
        }
        Some(ConvergenceRecord {
            iterations: self.last_iterations as u64,
            residual: self.last_residual,
            warm_started: self.last_warm_started,
        })
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = Some(EigenTrustTelemetry::new(telemetry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(sys: &mut EigenTrust, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value));
    }

    #[test]
    fn no_ratings_yields_pretrust_distribution() {
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0), NodeId(1)]);
        sys.end_cycle();
        assert_eq!(sys.reputations(), &[0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn empty_pretrusted_set_falls_back_to_uniform() {
        let mut sys = EigenTrust::with_defaults(4, &[]);
        sys.end_cycle();
        for &v in sys.reputations() {
            assert!((v - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn two_node_fixed_point_matches_hand_solution() {
        // Node 0 pretrusted, rates node 1 positively. Row 1 defaults to p.
        // With a = 0.5 the fixed point of t = 0.5·Cᵀt + 0.5·p, p = (1,0):
        //   t0 = 0.5·t1 + 0.5 ; t1 = 0.5·t0  ⇒ t = (2/3, 1/3).
        let cfg = EigenTrustConfig {
            pretrust_weight: 0.5,
            ..EigenTrustConfig::default()
        };
        let mut sys = EigenTrust::new(2, &[NodeId(0)], cfg);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        let t = sys.reputations();
        assert!((t[0] - 2.0 / 3.0).abs() < 1e-8, "t0 = {}", t[0]);
        assert!((t[1] - 1.0 / 3.0).abs() < 1e-8, "t1 = {}", t[1]);
    }

    #[test]
    fn reputations_form_a_distribution() {
        let mut sys = EigenTrust::with_defaults(5, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        rate(&mut sys, 2, 3, -1.0);
        rate(&mut sys, 3, 4, 1.0);
        sys.end_cycle();
        let sum: f64 = sys.reputations().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(sys.reputations().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn negative_satisfaction_is_floored_at_zero() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, -1.0);
        rate(&mut sys, 0, 1, -1.0);
        rate(&mut sys, 0, 2, 1.0);
        sys.end_cycle();
        // s_01 = -2 → c_01 = 0; all of node 0's trust goes to node 2.
        assert!(sys.reputation(NodeId(2)) > sys.reputation(NodeId(1)));
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), -2.0);
    }

    #[test]
    fn satisfaction_accumulates_across_cycles() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), 2.0);
    }

    #[test]
    fn self_ratings_are_ignored() {
        let mut sys = EigenTrust::with_defaults(2, &[NodeId(0)]);
        rate(&mut sys, 1, 1, 1.0);
        sys.end_cycle();
        assert_eq!(sys.local_satisfaction(NodeId(1), NodeId(1)), 0.0);
    }

    #[test]
    fn rated_node_outranks_unrated_node() {
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) > sys.reputation(NodeId(2)));
        assert_eq!(sys.reputation(NodeId(2)), sys.reputation(NodeId(3)));
    }

    #[test]
    fn ratings_from_high_trust_raters_count_more() {
        // Pretrusted 0 rates 1; nobody rates 2's booster (node 3).
        // Node 1 (endorsed by the pretrusted node) must outrank node 2
        // (endorsed only by the untrusted node 3).
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 3, 2, 1.0);
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) > sys.reputation(NodeId(2)));
    }

    #[test]
    fn mutual_boosting_raises_colluders() {
        // The vulnerability SocialTrust exists to fix: two colluders (3, 4)
        // rating each other at high frequency come to dominate an honest
        // node (1) that received a single genuine rating.
        let mut sys = EigenTrust::with_defaults(5, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        for _ in 0..20 {
            rate(&mut sys, 3, 4, 1.0);
            rate(&mut sys, 4, 3, 1.0);
        }
        // Colluders also get a couple of organic positive ratings so their
        // trust row is reachable from the pretrusted component.
        rate(&mut sys, 0, 3, 1.0);
        sys.end_cycle();
        // Node 4 received *zero* organic ratings, yet mutual boosting pulls
        // its reputation above the never-rated normal node 2 — and the
        // colluding pair jointly outranks the honest node that earned a
        // genuine pretrusted endorsement.
        assert!(
            sys.reputation(NodeId(4)) > sys.reputation(NodeId(2)),
            "boosted colluder {} vs unrated normal {}",
            sys.reputation(NodeId(4)),
            sys.reputation(NodeId(2))
        );
        let pair = sys.reputation(NodeId(3)) + sys.reputation(NodeId(4));
        assert!(
            pair > sys.reputation(NodeId(1)),
            "colluding pair {} vs honest {}",
            pair,
            sys.reputation(NodeId(1))
        );
    }

    #[test]
    fn convergence_is_reported() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        assert!(sys.convergence().is_none(), "no update yet");
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert!(sys.last_iterations() >= 1);
        assert!(sys.last_iterations() < 1000);
        // Converged (not capped), so the final residual is below ε.
        assert!(sys.last_residual() < EigenTrustConfig::default().epsilon);
        let record = sys.convergence().expect("one update done");
        assert_eq!(record.iterations, sys.last_iterations() as u64);
        assert_eq!(record.residual, sys.last_residual());
        assert!(!record.warm_started, "first cycle is a cold start");
        sys.end_cycle();
        assert!(sys.convergence().unwrap().warm_started);
    }

    #[test]
    fn attached_telemetry_reports_convergence() {
        use socialtrust_telemetry::EventSink;

        let telemetry = Telemetry::with_sink(EventSink::in_memory());
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        ReputationSystem::attach_telemetry(&mut sys, &telemetry);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        sys.end_cycle();

        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("eigentrust_cycles_total"), 2);
        assert_eq!(snap.counter("eigentrust_warm_starts_total"), 1);
        assert_eq!(snap.gauge("eigentrust_warm_start"), Some(1.0));
        assert_eq!(
            snap.gauge("eigentrust_iterations"),
            Some(sys.last_iterations() as f64)
        );
        assert_eq!(snap.gauge("eigentrust_residual"), Some(sys.last_residual()));

        let events = telemetry.sink().events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::EigenTrustConvergence {
                cycle: 0,
                warm_start: false,
                ..
            }
        ));
        assert!(matches!(
            &events[1],
            Event::EigenTrustConvergence {
                cycle: 1,
                warm_start: true,
                ..
            }
        ));
    }

    #[test]
    fn reset_node_forgets_both_directions() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        rate(&mut sys, 2, 1, -1.0);
        sys.end_cycle();
        sys.reset_node(NodeId(1));
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(sys.local_satisfaction(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(sys.local_satisfaction(NodeId(2), NodeId(1)), 0.0);
        // After the next cycle, node 1 is back to the unknown-node level.
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) <= sys.reputation(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pretrusted_rejected() {
        EigenTrust::with_defaults(2, &[NodeId(7)]);
    }

    fn cold_config() -> EigenTrustConfig {
        EigenTrustConfig {
            warm_start: false,
            ..EigenTrustConfig::default()
        }
    }

    #[test]
    fn warm_start_matches_cold_start_within_epsilon() {
        let pre = [NodeId(0)];
        let mut warm = EigenTrust::with_defaults(6, &pre);
        let mut cold = EigenTrust::new(6, &pre, cold_config());
        let stream: &[(u32, u32, f64)] = &[
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, -1.0),
            (0, 4, 1.0),
            (4, 5, 1.0),
            (5, 1, 1.0),
        ];
        for chunk in stream.chunks(2) {
            for &(i, j, v) in chunk {
                rate(&mut warm, i, j, v);
                rate(&mut cold, i, j, v);
            }
            warm.end_cycle();
            cold.end_cycle();
            let diff: f64 = warm
                .reputations()
                .iter()
                .zip(cold.reputations())
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(diff < 1e-6, "warm/cold diverged by {diff}");
        }
    }

    #[test]
    fn warm_start_reduces_iterations_in_steady_state() {
        let pre = [NodeId(0)];
        let mut warm = EigenTrust::with_defaults(20, &pre);
        let mut cold = EigenTrust::new(20, &pre, cold_config());
        for sys in [&mut warm, &mut cold] {
            for i in 0..19u32 {
                rate(sys, i, i + 1, 1.0);
                rate(sys, 0, i + 1, 1.0);
            }
            sys.end_cycle();
        }
        // Steady state: one lone rating per cycle barely moves the matrix.
        for _ in 0..3 {
            rate(&mut warm, 3, 4, 1.0);
            rate(&mut cold, 3, 4, 1.0);
            warm.end_cycle();
            cold.end_cycle();
            assert!(
                warm.last_iterations() < cold.last_iterations(),
                "warm {} vs cold {}",
                warm.last_iterations(),
                cold.last_iterations()
            );
        }
    }

    /// A deterministic pseudo-random rating stream (xorshift — no RNG dep).
    fn synth_stream(n: u32, count: usize) -> Vec<(u32, u32, f64)> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| {
                let rater = (step() % n as u64) as u32;
                let ratee = (step() % n as u64) as u32;
                let value = if step() % 4 == 0 { -1.0 } else { 1.0 };
                (rater, ratee, value)
            })
            .collect()
    }

    #[test]
    fn blocked_iteration_is_bit_for_bit_equal_across_block_sizes() {
        // Per-element gather chains never cross block boundaries, so any
        // block size must reproduce the single-block vector exactly (the
        // residual tree can only shift the stop decision when it lands
        // within one ulp of epsilon, which this fixture stays clear of).
        let stream = synth_stream(64, 400);
        let run = |block_size: usize, parallel: bool| {
            let cfg = EigenTrustConfig {
                block_size,
                parallel,
                ..EigenTrustConfig::default()
            };
            let mut sys = EigenTrust::new(64, &[NodeId(0), NodeId(1)], cfg);
            for &(i, j, v) in &stream {
                rate(&mut sys, i, j, v);
            }
            sys.end_cycle();
            (sys.reputations().to_vec(), sys.last_iterations())
        };
        let (base, base_iters) = run(usize::MAX, false);
        for block_size in [1, 7, 16, 63] {
            for parallel in [false, true] {
                let (reps, iters) = run(block_size, parallel);
                assert_eq!(
                    iters, base_iters,
                    "iteration count diverged at block_size={block_size}"
                );
                for (j, (x, y)) in reps.iter().zip(&base).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "t[{j}] diverged at block_size={block_size} parallel={parallel}"
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_stays_consistent_through_reset() {
        let mut sys = EigenTrust::with_defaults(16, &[NodeId(0)]);
        for &(i, j, v) in &synth_stream(16, 120) {
            rate(&mut sys, i, j, v);
        }
        sys.end_cycle();
        sys.reset_node(NodeId(5));
        for i in 0..16u32 {
            for j in 0..16u32 {
                let row = sys.sat[i as usize].get(j);
                let col = sys.cols[j as usize].get(i);
                assert_eq!(row, col, "sat[{i}][{j}] vs cols[{j}][{i}]");
            }
            assert_eq!(sys.local_satisfaction(NodeId(i), NodeId(5)), 0.0);
            assert_eq!(sys.local_satisfaction(NodeId(5), NodeId(i)), 0.0);
        }
    }

    #[test]
    fn bytes_accounts_for_matrix_growth() {
        let mut sys = EigenTrust::with_defaults(8, &[NodeId(0)]);
        let empty = sys.bytes();
        for &(i, j, v) in &synth_stream(8, 40) {
            rate(&mut sys, i, j, v);
        }
        sys.end_cycle();
        assert!(sys.bytes() > empty, "{} !> {empty}", sys.bytes());
    }

    #[test]
    fn reset_node_falls_back_to_pretrust_start() {
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        sys.end_cycle();
        sys.reset_node(NodeId(1));
        // The next cycle must still produce a valid distribution (the
        // iteration restarted from p rather than the stale fixed point).
        sys.end_cycle();
        let sum: f64 = sys.reputations().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(sys.reputations().iter().all(|&v| v >= 0.0));
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), 0.0);
    }
}
