//! EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW'03) — the
//! power-iteration reputation system the paper uses as its primary baseline.
//!
//! Each node `i` accumulates local satisfaction `s_ij` about each node `j`
//! (sum of rating values, `+1` authentic / `-1` inauthentic in the paper's
//! experiments). Local trust is normalized,
//!
//! ```text
//! c_ij = max(s_ij, 0) / Σ_j max(s_ij, 0)
//! ```
//!
//! with rows that have no positive trust defaulting to the pre-trusted
//! distribution `p`. The global trust vector is the fixed point of the
//! damped iteration
//!
//! ```text
//! t⁽ᵏ⁺¹⁾ = (1 − a)·Cᵀ t⁽ᵏ⁾ + a·p
//! ```
//!
//! The paper sets the pre-trusted weight `a = 0.5` in its experiments
//! ("*We set the weight of reputations from pretrusted nodes in EigenTrust
//! to 0.5*").
//!
//! Because ratings from high-reputation raters carry more weight (they are
//! mixed in proportionally to `t_rater`), EigenTrust is exactly the system
//! the paper shows to be vulnerable to mutual-boosting collusion (PCM /
//! MMM) — reproducing that vulnerability requires a faithful
//! implementation, which this is.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;

use crate::normalize::l1_distance;
use crate::rating::Rating;
use crate::system::ReputationSystem;

/// Tunables for the EigenTrust engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EigenTrustConfig {
    /// The damping weight `a` toward the pre-trusted distribution.
    ///
    /// The original EigenTrust paper uses `a ≈ 0.1`; the SocialTrust paper
    /// says it "set the weight of reputations from pretrusted nodes to
    /// 0.5", but its own Figure 8(a) magnitudes (pre-trusted nodes at
    /// ~0.01, *below* the colluders) are only reachable with a small
    /// damping — `a = 0.5` would structurally pin ≥ 0.5 of the total trust
    /// mass on the 9 pre-trusted nodes. We therefore default to the
    /// standard `0.1` and expose the knob.
    pub pretrust_weight: f64,
    /// L1 convergence threshold for the power iteration.
    pub epsilon: f64,
    /// Safety cap on power-iteration steps.
    pub max_iterations: usize,
}

impl Default for EigenTrustConfig {
    fn default() -> Self {
        EigenTrustConfig {
            pretrust_weight: 0.1,
            epsilon: 1e-10,
            max_iterations: 1000,
        }
    }
}

/// The EigenTrust reputation engine.
#[derive(Debug, Clone)]
pub struct EigenTrust {
    config: EigenTrustConfig,
    /// `p`: the pre-trusted distribution (uniform over pre-trusted nodes).
    pretrust: Vec<f64>,
    /// Accumulated local satisfaction sums `s_ij`, sparse per rater.
    sat: Vec<BTreeMap<NodeId, f64>>,
    /// Ratings buffered since the last `end_cycle`.
    buffer: Vec<Rating>,
    /// Global trust vector from the last `end_cycle`.
    reputations: Vec<f64>,
    /// Iterations the last power iteration took (diagnostics).
    last_iterations: usize,
}

impl EigenTrust {
    /// Create an engine over `n` nodes with the given pre-trusted set.
    ///
    /// If `pretrusted` is empty, `p` falls back to the uniform
    /// distribution (as in the original EigenTrust when no pre-trusted
    /// peers exist).
    ///
    /// # Panics
    /// Panics if any pre-trusted id is out of range or `pretrust_weight`
    /// is outside `[0, 1]`.
    pub fn new(n: usize, pretrusted: &[NodeId], config: EigenTrustConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.pretrust_weight),
            "pretrust weight must be in [0,1]"
        );
        let mut pretrust = vec![0.0; n];
        if pretrusted.is_empty() {
            for v in &mut pretrust {
                *v = 1.0 / n as f64;
            }
        } else {
            for &pnode in pretrusted {
                assert!(pnode.index() < n, "pretrusted node {pnode} out of range");
                pretrust[pnode.index()] = 1.0 / pretrusted.len() as f64;
            }
        }
        // The paper: "The initial reputation of each node in the network is
        // 0" — everyone starts level, so cold-start server selection is
        // uniform. The pretrust prior only enters through the first
        // `end_cycle`'s power iteration.
        let reputations = vec![0.0; n];
        EigenTrust {
            config,
            pretrust,
            sat: vec![BTreeMap::new(); n],
            buffer: Vec::new(),
            reputations,
            last_iterations: 0,
        }
    }

    /// With the default configuration (`a = 0.1`, the standard EigenTrust
    /// damping — see [`EigenTrustConfig::pretrust_weight`]).
    pub fn with_defaults(n: usize, pretrusted: &[NodeId]) -> Self {
        EigenTrust::new(n, pretrusted, EigenTrustConfig::default())
    }

    /// The pre-trusted distribution `p`.
    pub fn pretrust(&self) -> &[f64] {
        &self.pretrust
    }

    /// How many iterations the last reputation update took to converge.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Accumulated local satisfaction `s_ij` (0 if never rated).
    pub fn local_satisfaction(&self, rater: NodeId, ratee: NodeId) -> f64 {
        self.sat[rater.index()].get(&ratee).copied().unwrap_or(0.0)
    }

    /// The normalized local trust row `c_i` as a dense vector.
    /// Rows without positive satisfaction default to `p`.
    fn local_trust_row(&self, i: usize) -> Vec<f64> {
        let n = self.pretrust.len();
        let mut row = vec![0.0; n];
        let mut sum = 0.0;
        for (&j, &s) in &self.sat[i] {
            let v = s.max(0.0);
            row[j.index()] = v;
            sum += v;
        }
        if sum > 0.0 {
            for v in &mut row {
                *v /= sum;
            }
            row
        } else {
            self.pretrust.clone()
        }
    }

    /// Run the damped power iteration to the global trust vector.
    fn power_iterate(&mut self) {
        let n = self.pretrust.len();
        if n == 0 {
            return;
        }
        // Materialize C row-by-row once per update; at the simulator's
        // scale (hundreds of nodes) the dense form is fastest and simplest.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| self.local_trust_row(i)).collect();
        let a = self.config.pretrust_weight;
        let mut t = self.pretrust.clone();
        let mut next = vec![0.0; n];
        let mut iters = 0;
        loop {
            // next = (1-a)·Cᵀ t + a·p  ⇔  next_j = (1-a)·Σ_i c_ij t_i + a·p_j
            next.copy_from_slice(&self.pretrust);
            for v in &mut next {
                *v *= a;
            }
            for (i, row) in rows.iter().enumerate() {
                let ti = t[i];
                if ti == 0.0 {
                    continue;
                }
                let w = (1.0 - a) * ti;
                for (j, &cij) in row.iter().enumerate() {
                    if cij != 0.0 {
                        next[j] += w * cij;
                    }
                }
            }
            iters += 1;
            let delta = l1_distance(&next, &t);
            std::mem::swap(&mut t, &mut next);
            if delta < self.config.epsilon || iters >= self.config.max_iterations {
                break;
            }
        }
        self.last_iterations = iters;
        self.reputations = t;
    }
}

impl ReputationSystem for EigenTrust {
    fn node_count(&self) -> usize {
        self.pretrust.len()
    }

    fn record(&mut self, rating: Rating) {
        self.buffer.push(rating);
    }

    fn end_cycle(&mut self) {
        for r in std::mem::take(&mut self.buffer) {
            if r.rater == r.ratee {
                continue; // self-ratings are ignored, as in EigenTrust
            }
            *self.sat[r.rater.index()].entry(r.ratee).or_insert(0.0) += r.value;
        }
        self.power_iterate();
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "EigenTrust".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.sat[node.index()].clear();
        for row in &mut self.sat {
            row.remove(&node);
        }
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(sys: &mut EigenTrust, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value));
    }

    #[test]
    fn no_ratings_yields_pretrust_distribution() {
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0), NodeId(1)]);
        sys.end_cycle();
        assert_eq!(sys.reputations(), &[0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn empty_pretrusted_set_falls_back_to_uniform() {
        let mut sys = EigenTrust::with_defaults(4, &[]);
        sys.end_cycle();
        for &v in sys.reputations() {
            assert!((v - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn two_node_fixed_point_matches_hand_solution() {
        // Node 0 pretrusted, rates node 1 positively. Row 1 defaults to p.
        // With a = 0.5 the fixed point of t = 0.5·Cᵀt + 0.5·p, p = (1,0):
        //   t0 = 0.5·t1 + 0.5 ; t1 = 0.5·t0  ⇒ t = (2/3, 1/3).
        let cfg = EigenTrustConfig {
            pretrust_weight: 0.5,
            ..EigenTrustConfig::default()
        };
        let mut sys = EigenTrust::new(2, &[NodeId(0)], cfg);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        let t = sys.reputations();
        assert!((t[0] - 2.0 / 3.0).abs() < 1e-8, "t0 = {}", t[0]);
        assert!((t[1] - 1.0 / 3.0).abs() < 1e-8, "t1 = {}", t[1]);
    }

    #[test]
    fn reputations_form_a_distribution() {
        let mut sys = EigenTrust::with_defaults(5, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        rate(&mut sys, 2, 3, -1.0);
        rate(&mut sys, 3, 4, 1.0);
        sys.end_cycle();
        let sum: f64 = sys.reputations().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(sys.reputations().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn negative_satisfaction_is_floored_at_zero() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, -1.0);
        rate(&mut sys, 0, 1, -1.0);
        rate(&mut sys, 0, 2, 1.0);
        sys.end_cycle();
        // s_01 = -2 → c_01 = 0; all of node 0's trust goes to node 2.
        assert!(sys.reputation(NodeId(2)) > sys.reputation(NodeId(1)));
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), -2.0);
    }

    #[test]
    fn satisfaction_accumulates_across_cycles() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), 2.0);
    }

    #[test]
    fn self_ratings_are_ignored() {
        let mut sys = EigenTrust::with_defaults(2, &[NodeId(0)]);
        rate(&mut sys, 1, 1, 1.0);
        sys.end_cycle();
        assert_eq!(sys.local_satisfaction(NodeId(1), NodeId(1)), 0.0);
    }

    #[test]
    fn rated_node_outranks_unrated_node() {
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) > sys.reputation(NodeId(2)));
        assert_eq!(sys.reputation(NodeId(2)), sys.reputation(NodeId(3)));
    }

    #[test]
    fn ratings_from_high_trust_raters_count_more() {
        // Pretrusted 0 rates 1; nobody rates 2's booster (node 3).
        // Node 1 (endorsed by the pretrusted node) must outrank node 2
        // (endorsed only by the untrusted node 3).
        let mut sys = EigenTrust::with_defaults(4, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 3, 2, 1.0);
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) > sys.reputation(NodeId(2)));
    }

    #[test]
    fn mutual_boosting_raises_colluders() {
        // The vulnerability SocialTrust exists to fix: two colluders (3, 4)
        // rating each other at high frequency come to dominate an honest
        // node (1) that received a single genuine rating.
        let mut sys = EigenTrust::with_defaults(5, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        for _ in 0..20 {
            rate(&mut sys, 3, 4, 1.0);
            rate(&mut sys, 4, 3, 1.0);
        }
        // Colluders also get a couple of organic positive ratings so their
        // trust row is reachable from the pretrusted component.
        rate(&mut sys, 0, 3, 1.0);
        sys.end_cycle();
        // Node 4 received *zero* organic ratings, yet mutual boosting pulls
        // its reputation above the never-rated normal node 2 — and the
        // colluding pair jointly outranks the honest node that earned a
        // genuine pretrusted endorsement.
        assert!(
            sys.reputation(NodeId(4)) > sys.reputation(NodeId(2)),
            "boosted colluder {} vs unrated normal {}",
            sys.reputation(NodeId(4)),
            sys.reputation(NodeId(2))
        );
        let pair = sys.reputation(NodeId(3)) + sys.reputation(NodeId(4));
        assert!(
            pair > sys.reputation(NodeId(1)),
            "colluding pair {} vs honest {}",
            pair,
            sys.reputation(NodeId(1))
        );
    }

    #[test]
    fn convergence_is_reported() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        sys.end_cycle();
        assert!(sys.last_iterations() >= 1);
        assert!(sys.last_iterations() < 1000);
    }

    #[test]
    fn reset_node_forgets_both_directions() {
        let mut sys = EigenTrust::with_defaults(3, &[NodeId(0)]);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        rate(&mut sys, 2, 1, -1.0);
        sys.end_cycle();
        sys.reset_node(NodeId(1));
        assert_eq!(sys.local_satisfaction(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(sys.local_satisfaction(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(sys.local_satisfaction(NodeId(2), NodeId(1)), 0.0);
        // After the next cycle, node 1 is back to the unknown-node level.
        sys.end_cycle();
        assert!(sys.reputation(NodeId(1)) <= sys.reputation(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pretrusted_rejected() {
        EigenTrust::with_defaults(2, &[NodeId(7)]);
    }
}
