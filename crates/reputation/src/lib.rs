//! # socialtrust-reputation
//!
//! Reputation-system substrates for the SocialTrust reproduction.
//!
//! The paper evaluates SocialTrust as a layer over two baseline reputation
//! systems, both of which are implemented here in full:
//!
//! * [`eigentrust::EigenTrust`] — the EigenTrust algorithm (Kamvar,
//!   Schlosser & Garcia-Molina, WWW'03): normalized local trust values,
//!   a pre-trusted peer distribution, and damped power iteration to the
//!   global trust vector.
//! * [`ebay::EBayModel`] — an eBay-style accumulative reputation: each
//!   rater contributes at most one (sign-of-net) rating per ratee per
//!   cycle ("week"), scores accumulate over time, and global reputations
//!   are the scores normalized onto the probability simplex.
//! * [`average::SimpleAverage`] — a naive mean-rating baseline used in
//!   ablations.
//! * [`feedback_similarity::FeedbackSimilarity`] — a TrustGuard-style
//!   feedback-credibility baseline (raters deviating from the community
//!   consensus lose weight), used as a no-social-information comparator.
//! * [`power_trust::PowerTrust`] — a PowerTrust-style engine whose
//!   teleport distribution follows dynamically-elected power nodes
//!   instead of a static pre-trusted set.
//!
//! All systems implement the [`system::ReputationSystem`] trait: buffer
//! ratings with [`system::ReputationSystem::record`], close an update
//! interval with [`system::ReputationSystem::end_cycle`], read the global
//! reputation vector with [`system::ReputationSystem::reputations`].
//!
//! The [`rating::RatingLedger`] tracks per-pair rating frequencies
//! (`t⁺(i,j)`, `t⁻(i,j)` in the paper's Section 4.3) — the raw signal the
//! SocialTrust layer uses to flag suspected colluders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod average;
pub mod ebay;
pub mod eigentrust;
pub mod feedback_similarity;
pub mod gossip;
pub mod normalize;
pub mod power_trust;
pub mod rating;
pub mod system;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::average::SimpleAverage;
    pub use crate::ebay::EBayModel;
    pub use crate::eigentrust::{EigenTrust, EigenTrustConfig};
    pub use crate::feedback_similarity::FeedbackSimilarity;
    pub use crate::gossip::PushSum;
    pub use crate::power_trust::{PowerTrust, PowerTrustConfig};
    pub use crate::rating::{PairKey, PairStats, Rating, RatingLedger};
    pub use crate::system::ReputationSystem;
}
