//! A PowerTrust-style baseline (Zhou & Hwang, TPDS'07), cited in the
//! paper's related work as *"a robust and scalable reputation system for
//! trusted P2P computing"*.
//!
//! PowerTrust's key idea: P2P feedback networks are power-law — a few
//! *power nodes* accumulate most of the feedback — and the system
//! leverages them dynamically instead of a static pre-trusted set.
//! This implementation keeps the essential structure:
//!
//! * local trust is normalized feedback (like EigenTrust);
//! * the global vector is a damped power iteration whose teleport
//!   distribution is **recomputed every cycle** over the current top-`m`
//!   most reputable nodes (the dynamically-elected power nodes), rather
//!   than a fixed pre-trusted set;
//! * power nodes therefore rotate with the system's opinion — robust to a
//!   static pre-trusted node being compromised, but (as the SocialTrust
//!   paper's argument goes) *not* robust to colluders voting each other
//!   into the power set.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;

use crate::normalize::l1_distance;
use crate::rating::Rating;
use crate::system::ReputationSystem;

/// Tunables for the PowerTrust engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerTrustConfig {
    /// Number of dynamically-elected power nodes `m`.
    pub power_nodes: usize,
    /// Damping weight toward the power-node distribution.
    pub damping: f64,
    /// L1 convergence threshold for the power iteration.
    pub epsilon: f64,
    /// Safety cap on iterations.
    pub max_iterations: usize,
}

impl Default for PowerTrustConfig {
    fn default() -> Self {
        PowerTrustConfig {
            power_nodes: 10,
            damping: 0.15,
            epsilon: 1e-10,
            max_iterations: 1000,
        }
    }
}

/// The PowerTrust-style reputation engine.
#[derive(Debug, Clone)]
pub struct PowerTrust {
    n: usize,
    config: PowerTrustConfig,
    /// Accumulated local satisfaction sums, sparse per rater.
    sat: Vec<BTreeMap<NodeId, f64>>,
    buffer: Vec<Rating>,
    reputations: Vec<f64>,
    power_set: Vec<NodeId>,
}

impl PowerTrust {
    /// An engine over `n` nodes.
    pub fn new(n: usize, config: PowerTrustConfig) -> Self {
        assert!(config.power_nodes >= 1, "need at least one power node");
        assert!((0.0..=1.0).contains(&config.damping));
        PowerTrust {
            n,
            config,
            sat: vec![BTreeMap::new(); n],
            buffer: Vec::new(),
            reputations: vec![0.0; n],
            power_set: Vec::new(),
        }
    }

    /// With default configuration.
    pub fn with_defaults(n: usize) -> Self {
        PowerTrust::new(n, PowerTrustConfig::default())
    }

    /// The power nodes elected at the last update (empty before the first
    /// cycle).
    pub fn power_nodes(&self) -> &[NodeId] {
        &self.power_set
    }

    /// The current teleport distribution: uniform over the elected power
    /// set, or uniform over everyone before any reputations exist.
    fn teleport(&self) -> Vec<f64> {
        let mut q = vec![0.0; self.n];
        if self.power_set.is_empty() {
            for v in &mut q {
                *v = 1.0 / self.n as f64;
            }
        } else {
            for &p in &self.power_set {
                q[p.index()] = 1.0 / self.power_set.len() as f64;
            }
        }
        q
    }

    fn local_trust_row(&self, i: usize) -> Vec<f64> {
        let mut row = vec![0.0; self.n];
        let mut sum = 0.0;
        for (&j, &s) in &self.sat[i] {
            let v = s.max(0.0);
            row[j.index()] = v;
            sum += v;
        }
        if sum > 0.0 {
            for v in &mut row {
                *v /= sum;
            }
        } else {
            // Nodes with no positive opinions spread their trust uniformly.
            // Defaulting to the teleport distribution (as EigenTrust does
            // with its *static* pre-trusted set) would let the first
            // elected power set reinforce itself forever.
            for v in &mut row {
                *v = 1.0 / self.n as f64;
            }
        }
        row
    }

    fn elect_power_nodes(&mut self) {
        let mut ranked: Vec<NodeId> = (0..self.n).map(NodeId::from).collect();
        ranked.sort_by(|a, b| {
            self.reputations[b.index()]
                .partial_cmp(&self.reputations[a.index()])
                .expect("finite")
                .then(a.cmp(b)) // deterministic tie-break
        });
        ranked.truncate(self.config.power_nodes.min(self.n));
        self.power_set = ranked;
    }
}

impl ReputationSystem for PowerTrust {
    fn node_count(&self) -> usize {
        self.n
    }

    fn record(&mut self, rating: Rating) {
        if rating.rater != rating.ratee {
            self.buffer.push(rating);
        }
    }

    fn end_cycle(&mut self) {
        for r in std::mem::take(&mut self.buffer) {
            *self.sat[r.rater.index()].entry(r.ratee).or_insert(0.0) += r.value;
        }
        if self.n == 0 {
            return;
        }
        let teleport = self.teleport();
        let rows: Vec<Vec<f64>> = (0..self.n).map(|i| self.local_trust_row(i)).collect();
        let a = self.config.damping;
        let mut t = teleport.clone();
        let mut next = vec![0.0; self.n];
        let mut iters = 0;
        loop {
            next.copy_from_slice(&teleport);
            for v in &mut next {
                *v *= a;
            }
            for (i, row) in rows.iter().enumerate() {
                let ti = t[i];
                if ti == 0.0 {
                    continue;
                }
                let w = (1.0 - a) * ti;
                for (j, &cij) in row.iter().enumerate() {
                    if cij != 0.0 {
                        next[j] += w * cij;
                    }
                }
            }
            iters += 1;
            let delta = l1_distance(&next, &t);
            std::mem::swap(&mut t, &mut next);
            if delta < self.config.epsilon || iters >= self.config.max_iterations {
                break;
            }
        }
        self.reputations = t;
        // Elect next cycle's power nodes from the fresh reputations.
        self.elect_power_nodes();
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "PowerTrust".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.sat[node.index()].clear();
        for row in &mut self.sat {
            row.remove(&node);
        }
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(sys: &mut PowerTrust, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value));
    }

    #[test]
    fn first_cycle_uses_uniform_teleport() {
        let mut sys = PowerTrust::with_defaults(4);
        sys.end_cycle();
        for &v in sys.reputations() {
            assert!((v - 0.25).abs() < 1e-9);
        }
        assert_eq!(sys.power_nodes().len(), 4);
    }

    #[test]
    fn power_nodes_track_reputation() {
        let mut sys = PowerTrust::new(
            6,
            PowerTrustConfig {
                power_nodes: 2,
                ..PowerTrustConfig::default()
            },
        );
        // Everyone praises nodes 4 and 5.
        for rater in 0..4u32 {
            rate(&mut sys, rater, 4, 1.0);
            rate(&mut sys, rater, 5, 1.0);
        }
        sys.end_cycle();
        let powers = sys.power_nodes().to_vec();
        assert!(
            powers.contains(&NodeId(4)) && powers.contains(&NodeId(5)),
            "{powers:?}"
        );
    }

    #[test]
    fn reputations_form_a_distribution() {
        let mut sys = PowerTrust::with_defaults(5);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 1, 2, 1.0);
        rate(&mut sys, 2, 0, -1.0);
        sys.end_cycle();
        let sum: f64 = sys.reputations().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(sys.reputations().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn no_static_pretrusted_single_point_of_failure() {
        // A node that misbehaves loses its power status in later cycles —
        // unlike a compromised static pre-trusted node in EigenTrust.
        let mut sys = PowerTrust::new(
            5,
            PowerTrustConfig {
                power_nodes: 1,
                ..PowerTrustConfig::default()
            },
        );
        for rater in 1..5u32 {
            rate(&mut sys, rater, 0, 1.0);
        }
        sys.end_cycle();
        assert_eq!(sys.power_nodes(), &[NodeId(0)]);
        // Now everyone condemns node 0 (and praises node 1) for a few
        // cycles — including node 1, so no stale positive opinion of the
        // old power node survives.
        for _ in 0..5 {
            rate(&mut sys, 1, 0, -1.0);
            for rater in 2..5u32 {
                rate(&mut sys, rater, 0, -1.0);
                rate(&mut sys, rater, 1, 1.0);
            }
            sys.end_cycle();
        }
        assert_eq!(sys.power_nodes(), &[NodeId(1)]);
    }

    #[test]
    fn colluders_can_capture_the_power_set() {
        // The vulnerability the SocialTrust paper's argument predicts:
        // a mutually-boosting pair traps the trust that flows into it
        // (honest nodes spread theirs), so the colluders out-rank honest
        // nodes and get elected as power nodes.
        let mut sys = PowerTrust::new(
            6,
            PowerTrustConfig {
                power_nodes: 2,
                ..PowerTrustConfig::default()
            },
        );
        for _ in 0..4 {
            // Honest nodes 0-3 spread their trust across each other…
            for rater in 0..4u32 {
                for ratee in 0..4u32 {
                    if rater != ratee {
                        rate(&mut sys, rater, ratee, 1.0);
                    }
                }
            }
            // …and one honest node occasionally uses colluder 4 (so the
            // collusion cluster has organic inflow to trap).
            rate(&mut sys, 0, 4, 1.0);
            // The colluders rate only each other, at high frequency.
            for _ in 0..30 {
                rate(&mut sys, 4, 5, 1.0);
                rate(&mut sys, 5, 4, 1.0);
            }
            sys.end_cycle();
        }
        let powers = sys.power_nodes();
        assert!(
            powers.contains(&NodeId(4)) || powers.contains(&NodeId(5)),
            "colluders captured no power slot: {powers:?} (reps {:?})",
            sys.reputations()
        );
    }

    #[test]
    fn reset_node_forgets_opinions() {
        let mut sys = PowerTrust::with_defaults(4);
        for rater in 1..4u32 {
            rate(&mut sys, rater, 0, 1.0);
        }
        sys.end_cycle();
        let before = sys.reputation(NodeId(0));
        sys.reset_node(NodeId(0));
        sys.end_cycle();
        assert!(
            sys.reputation(NodeId(0)) < before,
            "a reset identity loses its accumulated standing"
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sys = PowerTrust::with_defaults(6);
            for c in 0..3 {
                rate(&mut sys, c, (c + 1) % 6, 1.0);
                sys.end_cycle();
            }
            sys.reputations().to_vec()
        };
        assert_eq!(run(), run());
    }
}
