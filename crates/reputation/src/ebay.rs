//! The eBay-style accumulative reputation model.
//!
//! The paper's second baseline mirrors eBay's weekly feedback aggregation,
//! and the paper states two rules for it:
//!
//! 1. *"In eBay, a node's reputation increase is only determined by whether
//!    the node offers more authentic files than inauthentic files in each
//!    simulation cycle"* — the **weekly service record**: per cycle, a node
//!    gains `+1` if its transaction-backed feedback nets positive, `−1` if
//!    negative, `0` if balanced or absent. This is why *"nodes with B>0.5
//!    are possible to have good reputation values"*.
//! 2. *"No matter how frequently a node rates the other node in a
//!    simulation cycle, eBay only counts all the ratings as one rating"* —
//!    **per-rater dedup** of rating activity that is not backed by real
//!    transactions (collusion rating spam): each such rater contributes
//!    exactly one rating per cycle, whose value is the *mean* of the
//!    values it submitted. For raw `±1` spam the mean is `±1` — the
//!    paper's "counts all the ratings as one rating"; for
//!    SocialTrust-adjusted (damped toward 0) spam the single counted
//!    rating shrinks proportionally, which is what lets the adjustment
//!    layer bite through the dedup.
//!
//! Per-cycle contributions accumulate into a lifetime score `R_i`; global
//! reputations are the scores scaled to `[0, 1]` by `R_i / Σ_k R_k`
//! (negatives clamped to zero first).
//!
//! Together the two rules reproduce every eBay observation in the paper:
//! `B = 0.6` colluders gain `+2`/cycle (service `+1` + partner `+1`) and
//! overtake normal nodes (`+1`); `B = 0.2` colluders stall at `0`
//! (`−1 + 1`); boosted MCM/MMM nodes gain `+(boosters−1)`; and because a
//! node's score moves by at most a few units per cycle, eBay converges far
//! slower than EigenTrust (Figure 19).

use std::collections::BTreeMap;

use socialtrust_socnet::NodeId;

use crate::normalize::normalize_to_simplex;
use crate::rating::{PairKey, Rating};
use crate::system::ReputationSystem;

/// The eBay-style reputation engine.
#[derive(Debug, Clone)]
pub struct EBayModel {
    /// Accumulated lifetime scores `R_i`.
    scores: Vec<f64>,
    /// Net transaction-backed feedback per node within the current cycle
    /// (the weekly service record).
    service_net: Vec<f64>,
    /// (sum, count) of non-transactional (rating-spam) values per
    /// rater→ratee pair within the current cycle.
    spam_net: BTreeMap<PairKey, (f64, u64)>,
    /// Normalized reputations from the last `end_cycle`.
    reputations: Vec<f64>,
}

impl EBayModel {
    /// An engine over `n` nodes; everyone starts at reputation 0.
    pub fn new(n: usize) -> Self {
        EBayModel {
            scores: vec![0.0; n],
            service_net: vec![0.0; n],
            spam_net: BTreeMap::new(),
            reputations: vec![0.0; n],
        }
    }

    /// The raw accumulated score `R_i` (pre-normalization).
    pub fn raw_score(&self, node: NodeId) -> f64 {
        self.scores[node.index()]
    }
}

impl ReputationSystem for EBayModel {
    fn node_count(&self) -> usize {
        self.scores.len()
    }

    fn record(&mut self, rating: Rating) {
        if rating.rater == rating.ratee {
            return; // self-feedback is ignored
        }
        if rating.transactional {
            self.service_net[rating.ratee.index()] += rating.value;
        } else {
            let entry = self
                .spam_net
                .entry((rating.rater, rating.ratee))
                .or_insert((0.0, 0));
            entry.0 += rating.value;
            entry.1 += 1;
        }
    }

    fn end_cycle(&mut self) {
        // Rule 1: weekly service record, ±1 per node.
        for (i, net) in self.service_net.iter_mut().enumerate() {
            if *net > 0.0 {
                self.scores[i] += 1.0;
            } else if *net < 0.0 {
                self.scores[i] -= 1.0;
            }
            *net = 0.0;
        }
        // Rule 2: per-rater dedup of rating spam — one rating per rater,
        // valued at the rater's mean submitted value.
        for ((_rater, ratee), (sum, count)) in std::mem::take(&mut self.spam_net) {
            if count > 0 {
                self.scores[ratee.index()] += (sum / count as f64).clamp(-1.0, 1.0);
            }
        }
        self.reputations = normalize_to_simplex(&self.scores);
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "eBay".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.scores[node.index()] = 0.0;
        self.service_net[node.index()] = 0.0;
        self.spam_net
            .retain(|&(rater, ratee), _| rater != node && ratee != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(sys: &mut EBayModel, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value));
    }

    fn spam(sys: &mut EBayModel, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value).non_transactional());
    }

    #[test]
    fn initial_reputations_are_zero() {
        let sys = EBayModel::new(3);
        assert_eq!(sys.reputations(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn service_record_is_node_level_sign() {
        let mut sys = EBayModel::new(4);
        // Node 1: 3 positive, 1 negative → +1 regardless of volume.
        service(&mut sys, 0, 1, 1.0);
        service(&mut sys, 2, 1, 1.0);
        service(&mut sys, 3, 1, 1.0);
        service(&mut sys, 0, 1, -1.0);
        // Node 2: net negative → −1.
        service(&mut sys, 0, 2, -1.0);
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), 1.0);
        assert_eq!(sys.raw_score(NodeId(2)), -1.0);
        assert_eq!(sys.raw_score(NodeId(3)), 0.0, "no feedback ⇒ no change");
    }

    #[test]
    fn balanced_service_record_contributes_nothing() {
        let mut sys = EBayModel::new(2);
        service(&mut sys, 0, 1, 1.0);
        service(&mut sys, 0, 1, -1.0);
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), 0.0);
    }

    #[test]
    fn spam_frequency_within_a_cycle_is_deduplicated() {
        let mut sys = EBayModel::new(3);
        for _ in 0..20 {
            spam(&mut sys, 0, 1, 1.0);
        }
        spam(&mut sys, 2, 1, 1.0);
        sys.end_cycle();
        // 20 spam ratings from node 0 count as one: R_1 = 2, not 21.
        assert_eq!(sys.raw_score(NodeId(1)), 2.0);
    }

    #[test]
    fn damped_spam_shrinks_below_one_unit() {
        // SocialTrust multiplies spam values by a near-zero weight; the
        // clamp then passes the tiny net through instead of rounding it
        // back up to ±1.
        let mut sys = EBayModel::new(2);
        for _ in 0..20 {
            spam(&mut sys, 0, 1, 0.001);
        }
        sys.end_cycle();
        assert!((sys.raw_score(NodeId(1)) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn colluder_with_good_behavior_gains_double() {
        // The Figure 8(b) mechanism: B=0.6 colluder earns +1 service +1
        // partner = +2/cycle, while a normal node earns +1.
        let mut sys = EBayModel::new(4);
        for _ in 0..3 {
            service(&mut sys, 0, 1, 1.0); // normal node's good service
            service(&mut sys, 0, 2, 1.0); // colluder's organic good service
            for _ in 0..20 {
                spam(&mut sys, 3, 2, 1.0); // partner boost
            }
            sys.end_cycle();
        }
        assert_eq!(sys.raw_score(NodeId(1)), 3.0);
        assert_eq!(sys.raw_score(NodeId(2)), 6.0);
    }

    #[test]
    fn colluder_with_bad_behavior_stalls() {
        // The Figure 9(b) mechanism: B=0.2 colluder nets −1 service +1
        // partner = 0/cycle, while normals grow.
        let mut sys = EBayModel::new(4);
        for _ in 0..5 {
            service(&mut sys, 0, 1, 1.0);
            service(&mut sys, 0, 2, -1.0); // colluder misbehaves organically
            for _ in 0..20 {
                spam(&mut sys, 3, 2, 1.0);
            }
            sys.end_cycle();
        }
        assert_eq!(sys.raw_score(NodeId(1)), 5.0);
        assert_eq!(sys.raw_score(NodeId(2)), 0.0);
        assert!(sys.reputation(NodeId(2)) < sys.reputation(NodeId(1)));
    }

    #[test]
    fn scores_accumulate_across_cycles() {
        let mut sys = EBayModel::new(2);
        for _ in 0..3 {
            service(&mut sys, 0, 1, 1.0);
            sys.end_cycle();
        }
        assert_eq!(sys.raw_score(NodeId(1)), 3.0);
    }

    #[test]
    fn reputations_are_normalized() {
        let mut sys = EBayModel::new(3);
        service(&mut sys, 0, 1, 1.0);
        spam(&mut sys, 0, 2, 1.0);
        spam(&mut sys, 1, 2, 1.0);
        sys.end_cycle();
        let reps = sys.reputations();
        assert!((reps.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((reps[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((reps[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_scores_clamp_to_zero_reputation() {
        let mut sys = EBayModel::new(2);
        service(&mut sys, 0, 1, -1.0);
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), -1.0);
        assert_eq!(sys.reputation(NodeId(1)), 0.0);
    }

    #[test]
    fn self_feedback_ignored() {
        let mut sys = EBayModel::new(2);
        service(&mut sys, 1, 1, 1.0);
        spam(&mut sys, 1, 1, 1.0);
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), 0.0);
    }

    #[test]
    fn reset_node_wipes_score_and_pending_state() {
        let mut sys = EBayModel::new(3);
        service(&mut sys, 0, 1, -1.0);
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), -1.0);
        // Pending state in the new cycle is wiped too.
        service(&mut sys, 0, 1, -1.0);
        spam(&mut sys, 2, 1, 1.0);
        sys.reset_node(NodeId(1));
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), 0.0, "fresh identity");
    }

    #[test]
    fn convergence_is_bounded_per_cycle() {
        // The Figure 19 mechanism: however loud the feedback, |ΔR| per
        // cycle is at most 1 + number of spamming raters — reputations
        // move slowly.
        let mut sys = EBayModel::new(3);
        for _ in 0..50 {
            service(&mut sys, 0, 1, -1.0);
        }
        for _ in 0..50 {
            spam(&mut sys, 2, 1, -1.0);
        }
        sys.end_cycle();
        assert_eq!(sys.raw_score(NodeId(1)), -2.0, "−1 service − 1 spam rater");
    }
}
