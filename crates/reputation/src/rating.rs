//! Ratings and the rating ledger.
//!
//! A [`Rating`] is one client→server service judgement. The
//! [`RatingLedger`] does the bookkeeping that SocialTrust's detection layer
//! needs (Section 4.3 of the paper): per update interval `T`, the number of
//! positive and negative ratings `t⁺(i,j)` / `t⁻(i,j)` from each rater to
//! each ratee, plus lifetime totals and the system-wide average rating
//! frequency `F̄` used in the `θ·F̄` suspicion threshold.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use socialtrust_socnet::interest::InterestId;
use socialtrust_socnet::NodeId;

/// One service rating from a client (`rater`) about a server (`ratee`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// The client that received the service and issues the judgement.
    pub rater: NodeId,
    /// The server being judged.
    pub ratee: NodeId,
    /// The rating value. The paper's P2P experiments use `+1` (authentic
    /// service) / `-1` (inauthentic); the Overstock trace uses `[-2, +2]`.
    pub value: f64,
    /// The interest category of the requested resource, when known. Used to
    /// maintain request-weighted interest profiles (Eq. (11)).
    pub interest: Option<InterestId>,
    /// `true` when the rating is attached to an actual completed service
    /// transaction (the normal case). Colluders emit *non-transactional*
    /// ratings — rating spam with no real service behind it. The eBay-style
    /// model treats the two differently, as the paper describes: the weekly
    /// service record aggregates transactional feedback at node level,
    /// while repeat ratings from one rater count once. Frequency-weighted
    /// systems (EigenTrust) and detection layers (SocialTrust) do not
    /// distinguish the two.
    pub transactional: bool,
}

impl Rating {
    /// A transactional rating with no interest annotation.
    pub fn new(rater: NodeId, ratee: NodeId, value: f64) -> Self {
        Rating {
            rater,
            ratee,
            value,
            interest: None,
            transactional: true,
        }
    }

    /// A transactional rating annotated with the requested resource's
    /// category.
    pub fn with_interest(rater: NodeId, ratee: NodeId, value: f64, interest: InterestId) -> Self {
        Rating {
            rater,
            ratee,
            value,
            interest: Some(interest),
            transactional: true,
        }
    }

    /// Mark this rating as pure rating activity not backed by a service
    /// transaction (what collusion spam is).
    pub fn non_transactional(mut self) -> Self {
        self.transactional = false;
        self
    }

    /// `true` if the rating is positive (strictly greater than zero).
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.value > 0.0
    }
}

/// Directed rater→ratee pair key.
pub type PairKey = (NodeId, NodeId);

/// Aggregate statistics for one rater→ratee pair within one interval (or
/// over a lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// Number of positive ratings (`t⁺(i,j)` for the current interval).
    pub positive: u64,
    /// Number of negative ratings (`t⁻(i,j)`).
    pub negative: u64,
    /// Sum of rating values.
    pub sum: f64,
}

impl PairStats {
    /// Total number of ratings.
    #[inline]
    pub fn count(&self) -> u64 {
        self.positive + self.negative
    }

    fn absorb(&mut self, value: f64) {
        if value > 0.0 {
            self.positive += 1;
        } else if value < 0.0 {
            self.negative += 1;
        } else {
            // Zero-valued ratings are counted as neither positive nor
            // negative but still contribute to the sum (a no-op).
        }
        self.sum += value;
    }
}

/// Bookkeeping of who rated whom, how often, and how, per update interval.
///
/// The ledger is the detection substrate of SocialTrust: resource managers
/// *"keep track of the rating frequencies and values of other nodes for the
/// nodes [they manage]"* and, at the end of each update interval `T`,
/// compare `t⁺(i,j)` / `t⁻(i,j)` against frequency thresholds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RatingLedger {
    interval: BTreeMap<PairKey, PairStats>,
    lifetime: BTreeMap<PairKey, PairStats>,
    intervals_elapsed: u64,
}

impl RatingLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RatingLedger::default()
    }

    /// Record one rating into the current interval (and the lifetime
    /// totals).
    pub fn record(&mut self, rating: &Rating) {
        let key = (rating.rater, rating.ratee);
        self.interval.entry(key).or_default().absorb(rating.value);
        self.lifetime.entry(key).or_default().absorb(rating.value);
    }

    /// Statistics for `rater → ratee` in the current interval.
    pub fn interval_stats(&self, rater: NodeId, ratee: NodeId) -> PairStats {
        self.interval
            .get(&(rater, ratee))
            .copied()
            .unwrap_or_default()
    }

    /// Lifetime statistics for `rater → ratee`.
    pub fn lifetime_stats(&self, rater: NodeId, ratee: NodeId) -> PairStats {
        self.lifetime
            .get(&(rater, ratee))
            .copied()
            .unwrap_or_default()
    }

    /// Iterate over `(pair, stats)` for every pair that rated in the
    /// current interval, in unspecified order.
    pub fn interval_pairs(&self) -> impl Iterator<Item = (PairKey, PairStats)> + '_ {
        self.interval.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct rater→ratee pairs active in the current interval.
    pub fn active_pair_count(&self) -> usize {
        self.interval.len()
    }

    /// The average per-pair rating frequency `F̄` in the current interval:
    /// mean number of ratings over all active pairs. `0.0` when idle.
    /// SocialTrust flags pairs whose frequency exceeds `θ·F̄` (θ > 1).
    pub fn average_rating_frequency(&self) -> f64 {
        if self.interval.is_empty() {
            return 0.0;
        }
        let total: u64 = self.interval.values().map(|s| s.count()).sum();
        total as f64 / self.interval.len() as f64
    }

    /// Close the current interval: clears per-interval counters (lifetime
    /// totals are kept) and bumps the interval counter.
    pub fn end_interval(&mut self) {
        self.interval.clear();
        self.intervals_elapsed += 1;
    }

    /// How many intervals have been closed so far.
    pub fn intervals_elapsed(&self) -> u64 {
        self.intervals_elapsed
    }

    /// Forget every record involving `node`, in both the current interval
    /// and the lifetime totals — the bookkeeping half of identity reset
    /// (whitewashing).
    pub fn reset_node(&mut self, node: NodeId) {
        self.interval
            .retain(|&(rater, ratee), _| rater != node && ratee != node);
        self.lifetime
            .retain(|&(rater, ratee), _| rater != node && ratee != node);
    }

    /// All distinct ratees node `rater` has rated over its lifetime.
    /// SocialTrust uses this set to compute the rater's personal closeness /
    /// similarity statistics (`Ω̄`, `maxΩ`, `minΩ` in Eqs. (6) and (8)).
    pub fn rated_by(&self, rater: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .lifetime
            .keys()
            .filter(|(r, _)| *r == rater)
            .map(|&(_, ratee)| ratee)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(rater: u32, ratee: u32, value: f64) -> Rating {
        Rating::new(NodeId(rater), NodeId(ratee), value)
    }

    #[test]
    fn record_counts_signs() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 1, 1.0));
        l.record(&r(0, 1, 1.0));
        l.record(&r(0, 1, -1.0));
        let s = l.interval_stats(NodeId(0), NodeId(1));
        assert_eq!(s.positive, 2);
        assert_eq!(s.negative, 1);
        assert_eq!(s.count(), 3);
        assert!((s.sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_valued_ratings_count_as_neither() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 1, 0.0));
        let s = l.interval_stats(NodeId(0), NodeId(1));
        assert_eq!(s.positive, 0);
        assert_eq!(s.negative, 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn pairs_are_directed() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 1, 1.0));
        assert_eq!(l.interval_stats(NodeId(0), NodeId(1)).positive, 1);
        assert_eq!(l.interval_stats(NodeId(1), NodeId(0)).positive, 0);
    }

    #[test]
    fn end_interval_clears_interval_keeps_lifetime() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 1, 1.0));
        l.end_interval();
        assert_eq!(l.interval_stats(NodeId(0), NodeId(1)).count(), 0);
        assert_eq!(l.lifetime_stats(NodeId(0), NodeId(1)).count(), 1);
        assert_eq!(l.intervals_elapsed(), 1);
        assert_eq!(l.active_pair_count(), 0);
    }

    #[test]
    fn average_rating_frequency_is_per_pair_mean() {
        let mut l = RatingLedger::new();
        // Pair (0,1): 3 ratings; pair (2,3): 1 rating. F̄ = 2.
        l.record(&r(0, 1, 1.0));
        l.record(&r(0, 1, 1.0));
        l.record(&r(0, 1, -1.0));
        l.record(&r(2, 3, 1.0));
        assert!((l.average_rating_frequency() - 2.0).abs() < 1e-12);
        assert_eq!(l.active_pair_count(), 2);
    }

    #[test]
    fn average_rating_frequency_idle_is_zero() {
        let l = RatingLedger::new();
        assert_eq!(l.average_rating_frequency(), 0.0);
    }

    #[test]
    fn rated_by_lists_lifetime_ratees() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 2, 1.0));
        l.record(&r(0, 1, -1.0));
        l.end_interval();
        l.record(&r(0, 3, 1.0));
        l.record(&r(5, 4, 1.0));
        assert_eq!(l.rated_by(NodeId(0)), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(l.rated_by(NodeId(5)), vec![NodeId(4)]);
        assert!(l.rated_by(NodeId(9)).is_empty());
    }

    #[test]
    fn interval_pairs_iterates_active_pairs() {
        let mut l = RatingLedger::new();
        l.record(&r(0, 1, 1.0));
        l.record(&r(2, 3, -1.0));
        let mut pairs: Vec<PairKey> = l.interval_pairs().map(|(k, _)| k).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
    }

    #[test]
    fn rating_constructors() {
        let plain = Rating::new(NodeId(1), NodeId(2), -1.0);
        assert!(!plain.is_positive());
        assert!(plain.interest.is_none());
        let tagged = Rating::with_interest(NodeId(1), NodeId(2), 1.0, InterestId(4));
        assert!(tagged.is_positive());
        assert_eq!(tagged.interest, Some(InterestId(4)));
    }
}
