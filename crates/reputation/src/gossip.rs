//! Gossip-based aggregation — the decentralized substrate behind
//! GossipTrust (Zhou & Hwang, TKDE'07), cited in the paper's related work:
//! *"GossipTrust enables peers to share weighted local trust scores with
//! randomly selected neighbors until reaching global consensus on peer
//! reputations."*
//!
//! The core primitive is **push-sum** (Kempe, Dobra & Gehrke, FOCS'03):
//! every node holds a `(value, weight)` pair; each round it keeps half and
//! pushes half to a uniformly random peer; `value/weight` at every node
//! converges exponentially fast to the global average. Aggregating each
//! node's *weighted local trust* about a target this way yields the
//! target's global score without any central collector.
//!
//! The simulation here is synchronous and deterministic under a seeded
//! RNG, which is what the tests and the experiment harness need.

use rand::Rng;

/// State of one push-sum instance over `n` nodes (one scalar per node —
/// run one instance per aggregation target, or reuse by calling
/// [`PushSum::reset`]).
#[derive(Debug, Clone)]
pub struct PushSum {
    values: Vec<f64>,
    weights: Vec<f64>,
    true_average: f64,
    rounds: usize,
}

impl PushSum {
    /// Start an aggregation over the given local values (weight 1 each).
    ///
    /// # Panics
    /// Panics if `local_values` is empty or contains non-finite numbers.
    pub fn new(local_values: &[f64]) -> Self {
        assert!(!local_values.is_empty(), "need at least one node");
        assert!(
            local_values.iter().all(|v| v.is_finite()),
            "local values must be finite"
        );
        let true_average = local_values.iter().sum::<f64>() / local_values.len() as f64;
        PushSum {
            values: local_values.to_vec(),
            weights: vec![1.0; local_values.len()],
            true_average,
            rounds: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.values.len()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The exact average the protocol converges to (for tests/monitoring;
    /// a real deployment doesn't know this).
    pub fn true_average(&self) -> f64 {
        self.true_average
    }

    /// Every node's current estimate `value/weight`.
    pub fn estimates(&self) -> Vec<f64> {
        self.values
            .iter()
            .zip(&self.weights)
            .map(|(&v, &w)| if w > 0.0 { v / w } else { 0.0 })
            .collect()
    }

    /// Worst-case relative error of the current estimates against the true
    /// average (absolute error when the average is ~0).
    pub fn max_error(&self) -> f64 {
        let scale = self.true_average.abs().max(1e-12);
        self.estimates()
            .iter()
            .map(|e| (e - self.true_average).abs() / scale)
            .fold(0.0, f64::max)
    }

    /// Execute one synchronous push-sum round: every node keeps half its
    /// mass and pushes half to a uniformly random other node.
    pub fn round<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.values.len();
        if n == 1 {
            self.rounds += 1;
            return;
        }
        let mut new_values = vec![0.0; n];
        let mut new_weights = vec![0.0; n];
        for i in 0..n {
            let mut target = rng.gen_range(0..n - 1);
            if target >= i {
                target += 1; // uniform over the *other* nodes
            }
            let v_half = self.values[i] / 2.0;
            let w_half = self.weights[i] / 2.0;
            new_values[i] += v_half;
            new_weights[i] += w_half;
            new_values[target] += v_half;
            new_weights[target] += w_half;
        }
        self.values = new_values;
        self.weights = new_weights;
        self.rounds += 1;
    }

    /// Run rounds until every node's estimate is within `tolerance`
    /// (relative) of the average, or `max_rounds` elapse. Returns the
    /// number of rounds executed in this call.
    pub fn run_to_convergence<R: Rng + ?Sized>(
        &mut self,
        tolerance: f64,
        max_rounds: usize,
        rng: &mut R,
    ) -> usize {
        let start = self.rounds;
        while self.max_error() > tolerance && self.rounds - start < max_rounds {
            self.round(rng);
        }
        self.rounds - start
    }

    /// Restart the protocol with fresh local values, keeping the allocation.
    pub fn reset(&mut self, local_values: &[f64]) {
        assert_eq!(local_values.len(), self.values.len(), "node count fixed");
        self.values.copy_from_slice(local_values);
        self.weights.iter_mut().for_each(|w| *w = 1.0);
        self.true_average = local_values.iter().sum::<f64>() / local_values.len() as f64;
        self.rounds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn mass_conservation_every_round() {
        let mut ps = PushSum::new(&[1.0, 5.0, 3.0, 7.0]);
        let total_v: f64 = 16.0;
        let total_w: f64 = 4.0;
        let mut r = rng(1);
        for _ in 0..20 {
            ps.round(&mut r);
            assert!((ps.values.iter().sum::<f64>() - total_v).abs() < 1e-9);
            assert!((ps.weights.iter().sum::<f64>() - total_w).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_to_the_true_average() {
        let locals: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let mut ps = PushSum::new(&locals);
        let mut r = rng(2);
        let rounds = ps.run_to_convergence(1e-6, 500, &mut r);
        assert!(ps.max_error() <= 1e-6, "error {}", ps.max_error());
        assert!(rounds > 0);
        for e in ps.estimates() {
            assert!((e - ps.true_average()).abs() < 1e-5);
        }
    }

    #[test]
    fn convergence_is_logarithmic_ish() {
        // Push-sum converges in O(log n + log 1/ε) rounds; at n = 128 and
        // ε = 1e-4 this should comfortably fit in 100 rounds.
        let locals: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let mut ps = PushSum::new(&locals);
        let mut r = rng(3);
        let rounds = ps.run_to_convergence(1e-4, 1000, &mut r);
        assert!(rounds < 100, "took {rounds} rounds");
    }

    #[test]
    fn single_node_is_trivially_converged() {
        let mut ps = PushSum::new(&[42.0]);
        assert_eq!(ps.max_error(), 0.0);
        let mut r = rng(4);
        assert_eq!(ps.run_to_convergence(1e-9, 10, &mut r), 0);
        assert_eq!(ps.estimates(), vec![42.0]);
    }

    #[test]
    fn reset_reuses_the_instance() {
        let mut ps = PushSum::new(&[1.0, 2.0]);
        let mut r = rng(5);
        ps.run_to_convergence(1e-6, 200, &mut r);
        ps.reset(&[10.0, 30.0]);
        assert_eq!(ps.rounds(), 0);
        assert!((ps.true_average() - 20.0).abs() < 1e-12);
        ps.run_to_convergence(1e-6, 200, &mut r);
        for e in ps.estimates() {
            assert!((e - 20.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gossip_matches_centralized_reputation_aggregation() {
        // The GossipTrust use-case: each node holds its local (already
        // weighted) trust contribution about one target; the decentralized
        // average must match what a central collector would compute.
        let contributions = [0.0, 0.2, 0.9, 0.4, 0.0, 0.1, 0.7, 0.3];
        let central = contributions.iter().sum::<f64>() / contributions.len() as f64;
        let mut ps = PushSum::new(&contributions);
        let mut r = rng(6);
        ps.run_to_convergence(1e-8, 500, &mut r);
        for e in ps.estimates() {
            assert!((e - central).abs() < 1e-7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_input_rejected() {
        PushSum::new(&[]);
    }
}
