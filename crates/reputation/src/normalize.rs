//! Normalization helpers shared by the reputation engines.

/// Project raw scores onto the probability simplex the way the paper does
/// for eBay (*"we scale the reputation of each node to \[0,1\] by
/// `R_i / Σ_k R_k`"*): negative scores are clamped to zero first (a node
/// cannot have negative global reputation), then everything is divided by
/// the sum. If the sum is zero the output is all zeros.
pub fn normalize_to_simplex(scores: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = scores.iter().map(|&s| s.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        return vec![0.0; scores.len()];
    }
    clamped.into_iter().map(|s| s / sum).collect()
}

/// L1 distance between two vectors of equal length — the power-iteration
/// convergence criterion used by EigenTrust.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplex_normalization_sums_to_one() {
        let v = normalize_to_simplex(&[1.0, 3.0, 0.0]);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn negatives_are_clamped_before_normalizing() {
        let v = normalize_to_simplex(&[-5.0, 1.0, 1.0]);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_zero_or_negative_yields_zero_vector() {
        assert_eq!(normalize_to_simplex(&[0.0, -1.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_to_simplex(&[]), Vec::<f64>::new());
    }

    #[test]
    fn l1_distance_basics() {
        assert_eq!(l1_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((l1_distance(&[1.0, 0.0], &[0.0, 1.0]) - 2.0).abs() < 1e-12);
    }
}
