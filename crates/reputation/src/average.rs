//! A naive mean-rating reputation baseline.
//!
//! Not part of the paper's evaluation, but useful in ablations: it has
//! *no* defense against rating frequency at all (every rating counts
//! individually, unweighted), so it bounds how bad collusion can get and
//! shows how much the eBay dedup and EigenTrust weighting already help.

use socialtrust_socnet::NodeId;

use crate::normalize::normalize_to_simplex;
use crate::rating::Rating;
use crate::system::ReputationSystem;

/// Reputation = mean received rating value (clamped at 0), normalized onto
/// the simplex.
#[derive(Debug, Clone)]
pub struct SimpleAverage {
    sums: Vec<f64>,
    counts: Vec<u64>,
    buffer: Vec<Rating>,
    reputations: Vec<f64>,
}

impl SimpleAverage {
    /// An engine over `n` nodes.
    pub fn new(n: usize) -> Self {
        SimpleAverage {
            sums: vec![0.0; n],
            counts: vec![0; n],
            buffer: Vec::new(),
            reputations: vec![0.0; n],
        }
    }

    /// The raw mean rating of `node` (0 when never rated).
    pub fn mean_rating(&self, node: NodeId) -> f64 {
        let c = self.counts[node.index()];
        if c == 0 {
            0.0
        } else {
            self.sums[node.index()] / c as f64
        }
    }
}

impl ReputationSystem for SimpleAverage {
    fn node_count(&self) -> usize {
        self.sums.len()
    }

    fn record(&mut self, rating: Rating) {
        if rating.rater != rating.ratee {
            self.buffer.push(rating);
        }
    }

    fn end_cycle(&mut self) {
        for r in std::mem::take(&mut self.buffer) {
            self.sums[r.ratee.index()] += r.value;
            self.counts[r.ratee.index()] += 1;
        }
        let means: Vec<f64> = (0..self.sums.len())
            .map(|i| self.mean_rating(NodeId::from(i)))
            .collect();
        self.reputations = normalize_to_simplex(&means);
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "SimpleAverage".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.sums[node.index()] = 0.0;
        self.counts[node.index()] = 0;
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_computed_over_all_ratings() {
        let mut sys = SimpleAverage::new(2);
        sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
        sys.record(Rating::new(NodeId(0), NodeId(1), -1.0));
        sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
        sys.end_cycle();
        assert!((sys.mean_rating(NodeId(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_fully_manipulates_the_average() {
        // The property that makes this baseline weak: 20 colluding ratings
        // outvote 1 honest rating with no damping at all.
        let mut sys = SimpleAverage::new(3);
        sys.record(Rating::new(NodeId(0), NodeId(2), -1.0)); // honest
        for _ in 0..20 {
            sys.record(Rating::new(NodeId(1), NodeId(2), 1.0)); // colluder
        }
        sys.end_cycle();
        assert!(sys.mean_rating(NodeId(2)) > 0.8);
    }

    #[test]
    fn reputations_normalized_and_nonnegative() {
        let mut sys = SimpleAverage::new(3);
        sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
        sys.record(Rating::new(NodeId(0), NodeId(2), -1.0));
        sys.end_cycle();
        let reps = sys.reputations();
        assert!((reps.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(reps[2], 0.0);
    }

    #[test]
    fn unrated_nodes_have_zero_mean() {
        let mut sys = SimpleAverage::new(2);
        sys.end_cycle();
        assert_eq!(sys.mean_rating(NodeId(0)), 0.0);
        assert_eq!(sys.reputations(), &[0.0, 0.0]);
    }
}
