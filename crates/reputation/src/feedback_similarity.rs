//! A TrustGuard-style feedback-credibility baseline.
//!
//! The paper's related work describes TrustGuard (Srivatsa, Xiong & Liu,
//! WWW'05) as giving *"more weight to the feedbacks from similar ratings,
//! acting as an effective defense against potential collusive nodes that
//! only give good ratings within the clique and give bad rating to
//! everyone else"*. This module implements that *feedback-similarity*
//! credibility idea as a comparator baseline:
//!
//! * each rater's credibility is derived from how well its ratings agree
//!   with the community consensus about the nodes it rated (root-mean-
//!   square distance between its mean per-ratee rating and the global mean
//!   per-ratee rating);
//! * a node's reputation is the credibility-weighted mean of the ratings
//!   it received, normalized onto the simplex.
//!
//! It needs no social information at all — which is exactly why the
//! comparison with SocialTrust is interesting: feedback similarity fails
//! when colluders also rate honestly outside the clique (their consensus
//! distance stays small), while SocialTrust keys on the social and
//! interest structure of the clique itself.

use std::collections::BTreeMap;

use socialtrust_socnet::NodeId;

use crate::normalize::normalize_to_simplex;
use crate::rating::{PairKey, Rating};
use crate::system::ReputationSystem;

/// The feedback-similarity-weighted reputation engine.
#[derive(Debug, Clone)]
pub struct FeedbackSimilarity {
    n: usize,
    /// Lifetime (sum, count) of ratings per rater→ratee pair.
    pair_totals: BTreeMap<PairKey, (f64, u64)>,
    /// Ratings buffered since the last `end_cycle`.
    buffer: Vec<Rating>,
    /// Normalized reputations from the last `end_cycle`.
    reputations: Vec<f64>,
    /// Last computed per-rater credibility (diagnostics).
    credibility: Vec<f64>,
}

impl FeedbackSimilarity {
    /// An engine over `n` nodes.
    pub fn new(n: usize) -> Self {
        FeedbackSimilarity {
            n,
            pair_totals: BTreeMap::new(),
            buffer: Vec::new(),
            reputations: vec![0.0; n],
            credibility: vec![1.0; n],
        }
    }

    /// The credibility of `rater` from the most recent update, in `(0, 1]`.
    pub fn credibility(&self, rater: NodeId) -> f64 {
        self.credibility[rater.index()]
    }

    /// Global mean rating per ratee over all raters' *mean* opinions (each
    /// rater counts once per ratee, so frequency cannot stuff the
    /// consensus).
    fn consensus(&self) -> BTreeMap<NodeId, (f64, u64)> {
        let mut acc: BTreeMap<NodeId, (f64, u64)> = BTreeMap::new();
        for (&(_, ratee), &(sum, count)) in &self.pair_totals {
            if count > 0 {
                let e = acc.entry(ratee).or_insert((0.0, 0));
                e.0 += sum / count as f64;
                e.1 += 1;
            }
        }
        acc
    }
}

impl ReputationSystem for FeedbackSimilarity {
    fn node_count(&self) -> usize {
        self.n
    }

    fn record(&mut self, rating: Rating) {
        if rating.rater != rating.ratee {
            self.buffer.push(rating);
        }
    }

    fn end_cycle(&mut self) {
        for r in std::mem::take(&mut self.buffer) {
            let e = self
                .pair_totals
                .entry((r.rater, r.ratee))
                .or_insert((0.0, 0));
            e.0 += r.value;
            e.1 += 1;
        }
        // 1. Community consensus per ratee.
        let consensus = self.consensus();
        let mean_of: BTreeMap<NodeId, f64> = consensus
            .iter()
            .map(|(&ratee, &(sum, n))| (ratee, sum / n as f64))
            .collect();
        // 2. Per-rater credibility = 1 / (1 + RMS distance to consensus).
        let mut sq_dist = vec![0.0f64; self.n];
        let mut rated_count = vec![0u64; self.n];
        for (&(rater, ratee), &(sum, count)) in &self.pair_totals {
            if count == 0 {
                continue;
            }
            let my_mean = sum / count as f64;
            let consensus_mean = mean_of.get(&ratee).copied().unwrap_or(0.0);
            sq_dist[rater.index()] += (my_mean - consensus_mean).powi(2);
            rated_count[rater.index()] += 1;
        }
        for i in 0..self.n {
            self.credibility[i] = if rated_count[i] == 0 {
                1.0
            } else {
                1.0 / (1.0 + (sq_dist[i] / rated_count[i] as f64).sqrt())
            };
        }
        // 3. Reputation = credibility-weighted mean received rating
        //    (per-rater mean opinions, weighted by rater credibility).
        let mut weighted = vec![0.0f64; self.n];
        let mut weights = vec![0.0f64; self.n];
        for (&(rater, ratee), &(sum, count)) in &self.pair_totals {
            if count == 0 {
                continue;
            }
            let c = self.credibility[rater.index()];
            weighted[ratee.index()] += c * (sum / count as f64);
            weights[ratee.index()] += c;
        }
        let scores: Vec<f64> = (0..self.n)
            .map(|i| {
                if weights[i] > 0.0 {
                    weighted[i] / weights[i]
                } else {
                    0.0
                }
            })
            .collect();
        self.reputations = normalize_to_simplex(&scores);
    }

    fn reputations(&self) -> &[f64] {
        &self.reputations
    }

    fn name(&self) -> String {
        "FeedbackSimilarity".into()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.pair_totals
            .retain(|&(rater, ratee), _| rater != node && ratee != node);
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
        self.credibility[node.index()] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(sys: &mut FeedbackSimilarity, rater: u32, ratee: u32, value: f64) {
        sys.record(Rating::new(NodeId(rater), NodeId(ratee), value));
    }

    #[test]
    fn agreeing_raters_keep_full_credibility() {
        let mut sys = FeedbackSimilarity::new(4);
        // Everyone agrees node 3 is good.
        rate(&mut sys, 0, 3, 1.0);
        rate(&mut sys, 1, 3, 1.0);
        rate(&mut sys, 2, 3, 1.0);
        sys.end_cycle();
        for r in 0..3u32 {
            assert!((sys.credibility(NodeId(r)) - 1.0).abs() < 1e-9);
        }
        assert!(sys.reputation(NodeId(3)) > 0.9);
    }

    #[test]
    fn dissenting_rater_loses_credibility() {
        let mut sys = FeedbackSimilarity::new(5);
        // Three honest raters say node 4 is bad; node 0 insists it's great.
        rate(&mut sys, 1, 4, -1.0);
        rate(&mut sys, 2, 4, -1.0);
        rate(&mut sys, 3, 4, -1.0);
        rate(&mut sys, 0, 4, 1.0);
        sys.end_cycle();
        assert!(
            sys.credibility(NodeId(0)) < sys.credibility(NodeId(1)),
            "{} vs {}",
            sys.credibility(NodeId(0)),
            sys.credibility(NodeId(1))
        );
    }

    #[test]
    fn frequency_cannot_stuff_the_consensus() {
        let mut sys = FeedbackSimilarity::new(4);
        // One colluder rates 100 times; two honest raters once each. The
        // consensus counts each rater's mean once.
        for _ in 0..100 {
            rate(&mut sys, 0, 3, 1.0);
        }
        rate(&mut sys, 1, 3, -1.0);
        rate(&mut sys, 2, 3, -1.0);
        sys.end_cycle();
        // Consensus mean = (1 - 1 - 1)/3 = -1/3 < 0: the colluder deviates.
        assert!(sys.credibility(NodeId(0)) < sys.credibility(NodeId(1)));
        assert!(sys.reputation(NodeId(3)) < 0.5);
    }

    #[test]
    fn isolated_clique_self_agreement_is_the_known_weakness() {
        // A clique rating only each other agrees with "the consensus" about
        // its own members perfectly — feedback similarity cannot see it.
        let mut sys = FeedbackSimilarity::new(6);
        rate(&mut sys, 0, 1, 1.0); // honest pair
        rate(&mut sys, 1, 0, 1.0);
        rate(&mut sys, 4, 5, 1.0); // colluding pair, no outside raters
        rate(&mut sys, 5, 4, 1.0);
        sys.end_cycle();
        assert!((sys.credibility(NodeId(4)) - 1.0).abs() < 1e-9);
        assert_eq!(sys.reputation(NodeId(4)), sys.reputation(NodeId(0)));
    }

    #[test]
    fn reputations_normalized() {
        let mut sys = FeedbackSimilarity::new(3);
        rate(&mut sys, 0, 1, 1.0);
        rate(&mut sys, 0, 2, 1.0);
        sys.end_cycle();
        let sum: f64 = sys.reputations().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_node_restores_newcomer_state() {
        let mut sys = FeedbackSimilarity::new(4);
        rate(&mut sys, 1, 0, -1.0);
        rate(&mut sys, 2, 0, 1.0);
        rate(&mut sys, 3, 0, 1.0);
        sys.end_cycle();
        assert!(sys.credibility(NodeId(1)) < 1.0);
        sys.reset_node(NodeId(1));
        sys.end_cycle();
        assert!((sys.credibility(NodeId(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cycle_is_harmless() {
        let mut sys = FeedbackSimilarity::new(3);
        sys.end_cycle();
        assert_eq!(sys.reputations(), &[0.0, 0.0, 0.0]);
        assert_eq!(sys.name(), "FeedbackSimilarity");
        assert_eq!(sys.node_count(), 3);
    }
}
