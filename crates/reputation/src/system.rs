//! The `ReputationSystem` trait: the interface every reputation engine in
//! this workspace implements, and the seam where SocialTrust plugs in.
//!
//! The lifecycle mirrors the paper's simulation: clients submit ratings
//! during a simulation cycle ([`ReputationSystem::record`]); at the end of
//! the cycle the system recomputes global reputations
//! ([`ReputationSystem::end_cycle`] — *"each node's global reputation is
//! updated once after each simulation cycle"*).

use serde::{Deserialize, Serialize};
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::Telemetry;

use crate::rating::Rating;

/// How the most recent reputation-update iteration converged. Reported by
/// iterative engines (EigenTrust) through
/// [`ReputationSystem::convergence`]; non-iterative engines report `None`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceRecord {
    /// Iterations until the residual fell below ε (or the cap was hit).
    pub iterations: u64,
    /// Final L1 residual `‖t⁽ᵏ⁾ − t⁽ᵏ⁻¹⁾‖₁` when iteration stopped.
    pub residual: f64,
    /// Whether iteration started from the previous cycle's vector rather
    /// than the pre-trust prior.
    pub warm_started: bool,
}

/// A reputation engine that turns streams of ratings into a global
/// reputation vector.
///
/// Implementations buffer ratings between `end_cycle` calls; reputations
/// are only guaranteed to reflect a rating after the cycle it was recorded
/// in has ended.
pub trait ReputationSystem {
    /// Number of nodes this system tracks.
    fn node_count(&self) -> usize;

    /// Buffer one rating for the current cycle.
    fn record(&mut self, rating: Rating);

    /// Close the current cycle: fold all buffered ratings into the global
    /// reputation vector.
    fn end_cycle(&mut self);

    /// The global reputation of `node`, from the most recent `end_cycle`.
    fn reputation(&self, node: NodeId) -> f64 {
        self.reputations()[node.index()]
    }

    /// The full global reputation vector (indexed by `NodeId::index`).
    fn reputations(&self) -> &[f64];

    /// Human-readable name, used in experiment output ("EigenTrust",
    /// "eBay", "EigenTrust+SocialTrust", …).
    fn name(&self) -> String;

    /// Cumulative count of individual ratings an adjustment layer (such as
    /// SocialTrust) has rescaled. Plain engines report 0.
    fn total_adjusted_ratings(&self) -> u64 {
        0
    }

    /// Cumulative count of suspicions an adjustment layer has flagged.
    /// Plain engines report 0.
    fn total_suspicions(&self) -> u64 {
        0
    }

    /// Forget everything known about `node` — it re-enters the system as a
    /// fresh identity (whitewashing / newcomer modeling). Both the node's
    /// accumulated standing and other nodes' recorded opinions *about* it
    /// are dropped; opinions the node issued about others are dropped too
    /// (they belonged to the old identity). Default: no-op for stateless
    /// engines.
    fn reset_node(&mut self, _node: NodeId) {}

    /// How the most recent `end_cycle`'s reputation update converged.
    /// `None` for engines that are not iterative (or before the first
    /// update). Decorators delegate to their inner engine.
    fn convergence(&self) -> Option<ConvergenceRecord> {
        None
    }

    /// Wire this system (and any wrapped layers) to a telemetry bundle:
    /// registry-backed metric handles replace detached ones and structured
    /// events flow to the bundle's sink. Default: no instrumentation.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}
}

/// Blanket impl so `Box<dyn ReputationSystem>` composes with decorators.
impl<T: ReputationSystem + ?Sized> ReputationSystem for Box<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn record(&mut self, rating: Rating) {
        (**self).record(rating)
    }
    fn end_cycle(&mut self) {
        (**self).end_cycle()
    }
    fn reputation(&self, node: NodeId) -> f64 {
        (**self).reputation(node)
    }
    fn reputations(&self) -> &[f64] {
        (**self).reputations()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn total_adjusted_ratings(&self) -> u64 {
        (**self).total_adjusted_ratings()
    }
    fn total_suspicions(&self) -> u64 {
        (**self).total_suspicions()
    }
    fn reset_node(&mut self, node: NodeId) {
        (**self).reset_node(node)
    }
    fn convergence(&self) -> Option<ConvergenceRecord> {
        (**self).convergence()
    }
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        (**self).attach_telemetry(telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal fake: reputation = count of ratings received, normalized.
    struct CountSystem {
        buf: Vec<Rating>,
        reps: Vec<f64>,
    }

    impl ReputationSystem for CountSystem {
        fn node_count(&self) -> usize {
            self.reps.len()
        }
        fn record(&mut self, rating: Rating) {
            self.buf.push(rating);
        }
        fn end_cycle(&mut self) {
            for r in self.buf.drain(..) {
                self.reps[r.ratee.index()] += 1.0;
            }
        }
        fn reputations(&self) -> &[f64] {
            &self.reps
        }
        fn name(&self) -> String {
            "count".into()
        }
    }

    #[test]
    fn boxed_system_delegates() {
        let mut sys: Box<dyn ReputationSystem> = Box::new(CountSystem {
            buf: vec![],
            reps: vec![0.0; 3],
        });
        sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
        assert_eq!(sys.reputation(NodeId(1)), 0.0, "not folded until end_cycle");
        sys.end_cycle();
        assert_eq!(sys.reputation(NodeId(1)), 1.0);
        assert_eq!(sys.node_count(), 3);
        assert_eq!(sys.name(), "count");
    }
}
