//! Property-based tests for the reputation engines.

use proptest::prelude::*;
use socialtrust_reputation::prelude::*;
use socialtrust_socnet::NodeId;

/// A random batch of ratings among `n` nodes, excluding self-ratings.
fn ratings_strategy(n: u32) -> impl Strategy<Value = Vec<Rating>> {
    proptest::collection::vec(
        (0..n, 0..n, prop_oneof![Just(1.0f64), Just(-1.0f64)]),
        0..120,
    )
    .prop_map(move |triples| {
        triples
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .map(|(a, b, v)| Rating::new(NodeId(a), NodeId(b), v))
            .collect()
    })
}

proptest! {
    #[test]
    fn eigentrust_reputations_are_a_distribution(batch in ratings_strategy(12)) {
        let mut sys = EigenTrust::with_defaults(12, &[NodeId(0), NodeId(1)]);
        for r in batch {
            sys.record(r);
        }
        sys.end_cycle();
        let reps = sys.reputations();
        prop_assert!(reps.iter().all(|&v| v >= -1e-12 && v.is_finite()));
        let sum: f64 = reps.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
    }

    #[test]
    fn eigentrust_is_deterministic(batch in ratings_strategy(10)) {
        let run = || {
            let mut sys = EigenTrust::with_defaults(10, &[NodeId(0)]);
            for r in &batch {
                sys.record(*r);
            }
            sys.end_cycle();
            sys.reputations().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn eigentrust_order_of_ratings_within_cycle_is_irrelevant(batch in ratings_strategy(8)) {
        let mut fwd = EigenTrust::with_defaults(8, &[NodeId(0)]);
        let mut rev = EigenTrust::with_defaults(8, &[NodeId(0)]);
        for r in &batch {
            fwd.record(*r);
        }
        for r in batch.iter().rev() {
            rev.record(*r);
        }
        fwd.end_cycle();
        rev.end_cycle();
        for (a, b) in fwd.reputations().iter().zip(rev.reputations()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Warm-start soundness: across any random multi-cycle rating stream,
    /// a warm-started engine converges to the same trust vector as a
    /// cold-started one, every cycle, within the stopping tolerance. (The
    /// damped iteration is an L1 contraction, so the fixed point is unique
    /// and start-vector independent.)
    #[test]
    fn eigentrust_warm_start_matches_cold_start(
        cycles in proptest::collection::vec(ratings_strategy(10), 1..5),
        reset_raw in 0u32..20,
    ) {
        // Values ≥ 10 mean "no reset" (the vendored proptest has no
        // Option strategy).
        let reset = (reset_raw < 10).then_some(reset_raw);
        let pre = [NodeId(0), NodeId(3)];
        let mut warm = EigenTrust::with_defaults(10, &pre);
        let cold_cfg = EigenTrustConfig { warm_start: false, ..EigenTrustConfig::default() };
        let mut cold = EigenTrust::new(10, &pre, cold_cfg);
        let last = cycles.len() - 1;
        for (c, batch) in cycles.into_iter().enumerate() {
            for r in &batch {
                warm.record(*r);
                cold.record(*r);
            }
            // Optionally whitewash one node mid-stream: both engines must
            // agree through the pretrust fallback too.
            if c == last {
                if let Some(node) = reset {
                    warm.reset_node(NodeId(node));
                    cold.reset_node(NodeId(node));
                }
            }
            warm.end_cycle();
            cold.end_cycle();
            let diff: f64 = warm
                .reputations()
                .iter()
                .zip(cold.reputations())
                .map(|(a, b)| (a - b).abs())
                .sum();
            prop_assert!(diff < 1e-6, "cycle {}: warm/cold L1 gap {}", c, diff);
        }
    }

    /// Blocked-parallel power iteration is a pure scheduling change: for
    /// any rating stream (including mid-stream whitewashing resets) and any
    /// block size, the parallel engine must agree with the serial
    /// single-block engine within 1e-12 every cycle. The blocked gather is
    /// in fact bit-for-bit identical, which this asserts too.
    #[test]
    fn eigentrust_blocked_parallel_matches_serial(
        cycles in proptest::collection::vec(ratings_strategy(11), 1..4),
        block_size in 1usize..16,
        reset_raw in 0u32..22,
    ) {
        let reset = (reset_raw < 11).then_some(reset_raw);
        let pre = [NodeId(0), NodeId(2)];
        let serial_cfg = EigenTrustConfig {
            parallel: false,
            block_size: usize::MAX,
            ..EigenTrustConfig::default()
        };
        let blocked_cfg = EigenTrustConfig {
            parallel: true,
            block_size,
            ..EigenTrustConfig::default()
        };
        let mut serial = EigenTrust::new(11, &pre, serial_cfg);
        let mut blocked = EigenTrust::new(11, &pre, blocked_cfg);
        let last = cycles.len() - 1;
        for (c, batch) in cycles.into_iter().enumerate() {
            for r in &batch {
                serial.record(*r);
                blocked.record(*r);
            }
            if c == last {
                if let Some(node) = reset {
                    serial.reset_node(NodeId(node));
                    blocked.reset_node(NodeId(node));
                }
            }
            serial.end_cycle();
            blocked.end_cycle();
            for (i, (a, b)) in serial
                .reputations()
                .iter()
                .zip(blocked.reputations())
                .enumerate()
            {
                prop_assert!(
                    (a - b).abs() <= 1e-12,
                    "cycle {}, node {}: serial {} vs blocked {}", c, i, a, b
                );
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "cycle {}, node {}: blocked gather not bit-identical", c, i
                );
            }
        }
    }

    #[test]
    fn ebay_reputations_bounded_and_normalized(batch in ratings_strategy(12)) {
        let mut sys = EBayModel::new(12);
        for r in batch {
            sys.record(r);
        }
        sys.end_cycle();
        let reps = sys.reputations();
        prop_assert!(reps.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let sum: f64 = reps.iter().sum();
        prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ebay_cycle_contribution_bounded_by_distinct_raters(batch in ratings_strategy(12)) {
        // Per cycle, |ΔR_i| ≤ number of distinct raters that rated i.
        let mut sys = EBayModel::new(12);
        let mut raters_per_ratee = std::collections::HashMap::<NodeId, std::collections::HashSet<NodeId>>::new();
        for r in &batch {
            sys.record(*r);
            raters_per_ratee.entry(r.ratee).or_default().insert(r.rater);
        }
        sys.end_cycle();
        for i in 0..12u32 {
            let bound = raters_per_ratee
                .get(&NodeId(i))
                .map(|s| s.len() as f64)
                .unwrap_or(0.0);
            prop_assert!(sys.raw_score(NodeId(i)).abs() <= bound + 1e-12);
        }
    }

    #[test]
    fn ledger_totals_match_recorded(batch in ratings_strategy(12)) {
        let mut ledger = RatingLedger::new();
        for r in &batch {
            ledger.record(r);
        }
        let recorded: u64 = ledger.interval_pairs().map(|(_, s)| s.count()).sum();
        prop_assert_eq!(recorded, batch.len() as u64);
        // Positive + negative counts match the batch's signs.
        let pos = batch.iter().filter(|r| r.value > 0.0).count() as u64;
        let posl: u64 = ledger.interval_pairs().map(|(_, s)| s.positive).sum();
        prop_assert_eq!(pos, posl);
    }

    #[test]
    fn ledger_interval_reset_preserves_lifetime(batch in ratings_strategy(8)) {
        let mut ledger = RatingLedger::new();
        for r in &batch {
            ledger.record(r);
        }
        let lifetime_before: Vec<_> = batch
            .iter()
            .map(|r| ledger.lifetime_stats(r.rater, r.ratee))
            .collect();
        ledger.end_interval();
        prop_assert_eq!(ledger.active_pair_count(), 0);
        for (r, before) in batch.iter().zip(lifetime_before) {
            prop_assert_eq!(ledger.lifetime_stats(r.rater, r.ratee), before);
        }
    }

    #[test]
    fn average_baseline_is_frequency_sensitive(k in 2u32..30) {
        // Invariant the ablation relies on: mean rating moves monotonically
        // with colluder rating count.
        let run = |count: u32| {
            let mut sys = SimpleAverage::new(3);
            sys.record(Rating::new(NodeId(0), NodeId(2), -1.0));
            for _ in 0..count {
                sys.record(Rating::new(NodeId(1), NodeId(2), 1.0));
            }
            sys.end_cycle();
            sys.mean_rating(NodeId(2))
        };
        prop_assert!(run(k) >= run(k - 1) - 1e-12);
    }
}
