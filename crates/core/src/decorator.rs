//! `WithSocialTrust<R>` — the decorator that adds SocialTrust to any
//! reputation system.
//!
//! *"SocialTrust is built upon the reputation system of the P2P network and
//! re-scales node reputation values based on user social information to
//! mitigate the adverse influence of collusion."*
//!
//! The decorator buffers the cycle's ratings in its own
//! [`RatingLedger`]; at `end_cycle` it runs the B1–B4
//! [`crate::detector::Detector`] over every active rater→ratee
//! pair, computes a Gaussian adjustment weight (Eqs. (6)/(8)/(9)) for each
//! flagged pair, multiplies the flagged ratings by their weight, and only
//! then forwards everything to the wrapped engine.
//!
//! The social coefficients consulted here are served from **one**
//! epoch-validated [`GraphSnapshot`] acquired per cycle
//! ([`SocialContext::snapshot`]): the detection pass, the parallel
//! Gaussian-baseline pass (which batches each rater's per-ratee closeness
//! sweep into a single BFS via
//! [`GraphSnapshot::closeness_to_all`]), and the hysteresis ghost pairs
//! all read the same frozen CSR view. The snapshot refreshes
//! incrementally from the graph/tracker dirty logs between cycles, so the
//! decorator never assumes (or pays for) a full coefficient recompute per
//! cycle. [`WithSocialTrust::cache_stats`] exposes the coefficient
//! cache's hit/miss/eviction counters for the remaining point-query
//! paths, benchmarks, and diagnostics.

use std::collections::HashMap;
use std::time::Instant;

use socialtrust_reputation::rating::{PairKey, Rating, RatingLedger};
use socialtrust_reputation::system::{ConvergenceRecord, ReputationSystem};
use socialtrust_socnet::snapshot::GraphSnapshot;
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::{
    trace::names as trace_names, Counter, Event, EventSink, Histogram, Telemetry, Tracer,
};

use crate::config::{AdjustmentMode, BaselineMode, SocialTrustConfig};
use crate::context::SharedSocialContext;
use crate::detector::{Detector, DetectorMetrics, Suspicion};
use crate::gaussian::{adjustment_weight, combined_weight};
use crate::stats::OmegaStats;

/// Registry handles the decorator publishes through once
/// [`WithSocialTrust`] is attached to a [`Telemetry`] bundle. Kept in a
/// separate struct (rather than on the decorator directly) so an
/// un-instrumented decorator carries a single `Option` of overhead.
#[derive(Debug, Clone)]
struct DecoratorTelemetry {
    detector: DetectorMetrics,
    /// `gaussian_weight_seconds`: wall time of the per-cycle Gaussian
    /// weight pass (detection + parallel weight computation + hysteresis).
    gaussian_seconds: Histogram,
    /// `reputation_update_seconds`: wall time of the wrapped engine's
    /// `end_cycle` (e.g. EigenTrust power iteration).
    update_seconds: Histogram,
    /// `decorator_rescaled_ratings_total`: ratings multiplied by a
    /// Gaussian weight before being forwarded to the inner engine.
    rescaled: Counter,
    sink: EventSink,
    /// Shared decision-provenance tracer: disabled unless the attached
    /// bundle carries an enabled one.
    tracer: Tracer,
}

impl DecoratorTelemetry {
    fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        DecoratorTelemetry {
            detector: DetectorMetrics::new(telemetry),
            gaussian_seconds: registry.histogram("gaussian_weight_seconds"),
            update_seconds: registry.histogram("reputation_update_seconds"),
            rescaled: registry.counter("decorator_rescaled_ratings_total"),
            sink: telemetry.sink().clone(),
            tracer: telemetry.tracer().clone(),
        }
    }
}

/// A reputation system wrapped with the SocialTrust adjustment layer.
#[derive(Debug)]
pub struct WithSocialTrust<R> {
    inner: R,
    ctx: SharedSocialContext,
    config: SocialTrustConfig,
    detector: Detector,
    ledger: RatingLedger,
    buffer: Vec<Rating>,
    last_suspicions: Vec<Suspicion>,
    last_weights: Vec<(PairKey, f64)>,
    /// Pairs under suspicion hysteresis: flagged recently, still adjusted.
    /// Value = remaining intervals of memory.
    remembered: std::collections::BTreeMap<PairKey, u64>,
    total_adjusted_ratings: u64,
    total_suspicions_flagged: u64,
    /// Completed `end_cycle` count — the cycle index stamped on emitted
    /// detection-verdict events.
    cycles_completed: u64,
    telemetry: Option<DecoratorTelemetry>,
}

impl<R: ReputationSystem> WithSocialTrust<R> {
    /// Wrap `inner` with SocialTrust using the given social context and
    /// configuration.
    pub fn new(inner: R, ctx: SharedSocialContext, config: SocialTrustConfig) -> Self {
        config.validate();
        WithSocialTrust {
            inner,
            ctx,
            config,
            detector: Detector::new(config),
            ledger: RatingLedger::new(),
            buffer: Vec::new(),
            last_suspicions: Vec::new(),
            last_weights: Vec::new(),
            remembered: std::collections::BTreeMap::new(),
            total_adjusted_ratings: 0,
            total_suspicions_flagged: 0,
            cycles_completed: 0,
            telemetry: None,
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &SocialTrustConfig {
        &self.config
    }

    /// The suspicions raised in the most recent `end_cycle`, sorted by
    /// (rater, ratee).
    pub fn last_suspicions(&self) -> &[Suspicion] {
        &self.last_suspicions
    }

    /// The Gaussian weights applied in the most recent `end_cycle`, one per
    /// flagged pair.
    pub fn last_weights(&self) -> &[(PairKey, f64)] {
        &self.last_weights
    }

    /// The detection ledger (read access, for diagnostics and tests).
    pub fn ledger(&self) -> &RatingLedger {
        &self.ledger
    }

    /// Hit/miss/eviction counters of the social-coefficient cache backing
    /// this decorator's context.
    pub fn cache_stats(&self) -> socialtrust_socnet::cache::CacheStats {
        self.ctx.read().cache_stats()
    }
}

/// Per-rater Gaussian baselines: `Ω̄`, `maxΩ`, `minΩ` of the rater's
/// closeness and similarity over the **other** nodes it has rated
/// (lifetime, excluding the currently-judged ratee).
///
/// Excluding the ratee matters: the paper describes `b = Ω̄_ci` as *"the
/// most reasonable social closeness of n_i to other nodes it has
/// rated"*. If the suspect pair's own (extreme) coefficient were
/// included, it would stretch the width `|maxΩ − minΩ|` so far that the
/// weight could never drop below `e^{-1/2} ≈ 0.61` — far too weak to
/// suppress collusion.
///
/// Falls back to the configured empirical statistics when the rater has
/// rated fewer than two *other* distinct nodes (a near-empty
/// distribution has no meaningful spread), when every observed
/// coefficient is non-finite, or always in [`BaselineMode::Empirical`].
///
/// A free function rather than a method so the parallel weight pass in
/// `end_cycle` does not have to capture `&WithSocialTrust<R>` — that would
/// demand `R: Sync` of every wrapped engine for no reason; the computation
/// only needs the config, the ledger, and the cycle's frozen snapshot.
///
/// The closeness sweep over the rater's rated set is batched through
/// [`GraphSnapshot::closeness_to_all`]: all Eq. (4) fallback targets share
/// one capped BFS instead of one traversal per ratee.
fn rater_stats(
    config: &SocialTrustConfig,
    ledger: &RatingLedger,
    snapshot: &GraphSnapshot,
    rater: NodeId,
    exclude_ratee: NodeId,
) -> (OmegaStats, OmegaStats) {
    let empirical = (config.empirical_closeness, config.empirical_similarity);
    if config.baseline_mode == BaselineMode::Empirical {
        return empirical;
    }
    let rated: Vec<NodeId> = ledger
        .rated_by(rater)
        .into_iter()
        .filter(|&j| j != exclude_ratee)
        .collect();
    if rated.len() < 2 {
        return empirical;
    }
    let closeness: Vec<f64> = snapshot.closeness_to_all(rater, &rated);
    let similarity: Vec<f64> = rated
        .iter()
        .map(|&j| snapshot.interest_similarity(rater, j, config.weighted_similarity))
        .collect();
    match (
        OmegaStats::from_values(&closeness),
        OmegaStats::from_values(&similarity),
    ) {
        (Some(stats_c), Some(stats_s)) => (stats_c, stats_s),
        // All-non-finite coefficients (filtered out by `from_values`) leave
        // no personal distribution to centre on.
        _ => empirical,
    }
}

/// The Gaussian kernel inputs behind one computed weight, kept for the
/// provenance trace: the rater's personal baselines (μ = mean, σ derived
/// from `|maxΩ − minΩ|`) per dimension, and which paper equation applied.
struct WeightProvenance {
    /// `"Eq. 6"` (closeness only), `"Eq. 8"` (similarity only), or
    /// `"Eq. 9"` (combined).
    eq: &'static str,
    mean_c: f64,
    width_c: f64,
    mean_s: f64,
    width_s: f64,
}

/// The Gaussian weight for one suspicion plus the kernel inputs that
/// produced it. The weight is bit-identical to [`weight_for`] — same
/// arithmetic path — so the traced value is exactly the applied one.
fn weight_explained(
    config: &SocialTrustConfig,
    ledger: &RatingLedger,
    snapshot: &GraphSnapshot,
    suspicion: &Suspicion,
) -> (f64, WeightProvenance) {
    let (stats_c, stats_s) =
        rater_stats(config, ledger, snapshot, suspicion.rater, suspicion.ratee);
    let stats_c = stats_c.with_width_scale(config.width_scale);
    let stats_s = stats_s.with_width_scale(config.width_scale);
    let (weight, eq) = match config.adjustment_mode {
        AdjustmentMode::ClosenessOnly => (
            adjustment_weight(suspicion.omega_c, &stats_c, config.alpha),
            "Eq. 6",
        ),
        AdjustmentMode::SimilarityOnly => (
            adjustment_weight(suspicion.omega_s, &stats_s, config.alpha),
            "Eq. 8",
        ),
        AdjustmentMode::Combined => (
            combined_weight(
                suspicion.omega_c,
                &stats_c,
                suspicion.omega_s,
                &stats_s,
                config.alpha,
            ),
            "Eq. 9",
        ),
    };
    (
        weight,
        WeightProvenance {
            eq,
            mean_c: stats_c.mean,
            width_c: stats_c.width(),
            mean_s: stats_s.mean,
            width_s: stats_s.width(),
        },
    )
}

/// The Gaussian weight for one suspicion, per the configured adjustment
/// mode. Free function for the same `R: Sync` reason as [`rater_stats`].
fn weight_for(
    config: &SocialTrustConfig,
    ledger: &RatingLedger,
    snapshot: &GraphSnapshot,
    suspicion: &Suspicion,
) -> f64 {
    weight_explained(config, ledger, snapshot, suspicion).0
}

/// Lookup in a pair-sorted weight list. The cycle's weights live in a
/// sorted `Vec` rather than a map: the list is built once per cycle, read
/// many times (once per buffered rating), and then *becomes*
/// `last_weights` — no per-cycle map allocation, no rehash, no final
/// drain-and-sort copy.
#[inline]
fn weight_of(weights: &[(PairKey, f64)], pair: PairKey) -> Option<f64> {
    weights
        .binary_search_by_key(&pair, |&(k, _)| k)
        .ok()
        .map(|idx| weights[idx].1)
}

impl<R: ReputationSystem> ReputationSystem for WithSocialTrust<R> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn record(&mut self, rating: Rating) {
        self.ledger.record(&rating);
        self.buffer.push(rating);
    }

    fn end_cycle(&mut self) {
        // A clone of the attached tracer (disabled when unattached): child
        // spans land under the engine's cycle root when one is open.
        let tracer = self
            .telemetry
            .as_ref()
            .map(|t| t.tracer.clone())
            .unwrap_or_default();
        let (suspicions, weights) = {
            let ctx = self.ctx.read();
            let mut detect_span = tracer.child(trace_names::DETECT);
            // The detector reads the pre-update trust vector straight from
            // the inner engine — nothing in this read-only block mutates
            // it, so there is no need for the defensive copy this used to
            // take (8 MB per cycle at 1M nodes).
            let suspicions = self.detector.detect_all_with_observability(
                &ctx,
                &self.ledger,
                self.inner.reputations(),
                self.telemetry.as_ref().map(|t| &t.detector),
                detect_span.as_ref(),
            );
            if let Some(span) = detect_span.as_mut() {
                span.set_attr("suspicions", suspicions.len());
            }
            drop(detect_span);
            let gaussian_start = Instant::now();
            let gaussian_span = tracer.child(trace_names::GAUSSIAN);
            // Gaussian weights for flagged pairs are independent of each
            // other, so compute them in parallel; suspicions hold distinct
            // (rater, ratee) keys, so the collected list has unique keys.
            // The whole pass reads the same frozen snapshot the detector
            // just used (no mutation happened in between, so this is an
            // epoch-validated Arc clone, not a rebuild).
            use rayon::prelude::*;
            let snapshot = ctx.snapshot(self.config.closeness);
            let (config, ledger) = (&self.config, &self.ledger);
            // When this cycle's trace records, the same parallel pass also
            // keeps the kernel inputs (`WeightProvenance`) per pair, so the
            // span-recording loop below never redoes coefficient work; the
            // weight comes off the identical arithmetic path either way.
            let recording = gaussian_span.is_some();
            let mut provenance: HashMap<PairKey, WeightProvenance> = HashMap::new();
            // Weights live in a pair-sorted Vec rather than a map: built
            // once, probed by binary search in the rescale pass below, and
            // handed to `last_weights` at cycle end without the
            // drain-and-sort copy a map would force.
            let mut weights: Vec<(PairKey, f64)> = if recording {
                let explained: Vec<(PairKey, f64, WeightProvenance)> = suspicions
                    .par_iter()
                    .map(|s| {
                        let (w, prov) = weight_explained(config, ledger, &snapshot, s);
                        ((s.rater, s.ratee), w, prov)
                    })
                    .collect();
                explained
                    .into_iter()
                    .map(|(pair, w, prov)| {
                        provenance.insert(pair, prov);
                        (pair, w)
                    })
                    .collect()
            } else {
                suspicions
                    .par_iter()
                    .map(|s| ((s.rater, s.ratee), weight_for(config, ledger, &snapshot, s)))
                    .collect()
            };
            weights.sort_unstable_by_key(|&(k, _)| k);
            // Suspicion hysteresis: pairs flagged in recent intervals keep
            // being adjusted even if this interval's conditions lapsed
            // (e.g. the ratee's reputation briefly crossed T_R). The weight
            // is recomputed from the pair's *current* coefficients.
            let mut ghosts: Vec<Suspicion> = Vec::new();
            if self.config.suspicion_memory > 0 {
                // Lookups only consult the flagged prefix (sorted above);
                // ghost entries append past it and the list re-sorts once
                // at the end.
                let flagged_len = weights.len();
                for &(rater, ratee) in self.remembered.keys() {
                    if weight_of(&weights[..flagged_len], (rater, ratee)).is_some() {
                        continue;
                    }
                    // Only adjust if the pair actually rated this interval.
                    if self.ledger.interval_stats(rater, ratee).count() == 0 {
                        continue;
                    }
                    let ghost = Suspicion {
                        rater,
                        ratee,
                        reasons: Vec::new(),
                        omega_c: snapshot.closeness(rater, ratee),
                        omega_s: snapshot.interest_similarity(
                            rater,
                            ratee,
                            self.config.weighted_similarity,
                        ),
                    };
                    if recording {
                        let (w, prov) = weight_explained(config, ledger, &snapshot, &ghost);
                        weights.push(((rater, ratee), w));
                        provenance.insert((rater, ratee), prov);
                    } else {
                        weights.push((
                            (rater, ratee),
                            weight_for(config, ledger, &snapshot, &ghost),
                        ));
                    }
                    ghosts.push(ghost);
                }
                if weights.len() > flagged_len {
                    weights.sort_unstable_by_key(|&(k, _)| k);
                }
            }
            // Provenance: one `gaussian_weight` child per adjusted pair,
            // read back from the parallel pass above. Only paid when this
            // cycle's trace records.
            if let Some(parent) = gaussian_span.as_ref() {
                let flagged = suspicions.iter().map(|s| (s, false));
                let remembered = ghosts.iter().map(|g| (g, true));
                for (s, is_ghost) in flagged.chain(remembered) {
                    let pair = (s.rater, s.ratee);
                    let (Some(weight), Some(prov)) =
                        (weight_of(&weights, pair), provenance.get(&pair))
                    else {
                        continue;
                    };
                    let mut span = parent.child(trace_names::WEIGHT);
                    span.set_attr("rater", s.rater.index());
                    span.set_attr("ratee", s.ratee.index());
                    span.set_attr("ghost", is_ghost);
                    span.set_attr("eq", prov.eq);
                    span.set_attr("omega_c", s.omega_c);
                    span.set_attr("omega_s", s.omega_s);
                    span.set_attr("mean_c", prov.mean_c);
                    span.set_attr("width_c", prov.width_c);
                    span.set_attr("mean_s", prov.mean_s);
                    span.set_attr("width_s", prov.width_s);
                    span.set_attr("alpha", config.alpha);
                    span.set_attr("weight", weight);
                }
            }
            drop(gaussian_span);
            if let Some(t) = &self.telemetry {
                t.gaussian_seconds
                    .observe(gaussian_start.elapsed().as_secs_f64());
            }
            (suspicions, weights)
        };
        let mut rescaled_this_cycle = 0u64;
        let rescale_span = tracer.child(trace_names::RESCALE);
        for mut rating in std::mem::take(&mut self.buffer) {
            if let Some(w) = weight_of(&weights, (rating.rater, rating.ratee)) {
                if let Some(parent) = rescale_span.as_ref() {
                    let mut span = parent.child(trace_names::RESCALED_RATING);
                    span.set_attr("rater", rating.rater.index());
                    span.set_attr("ratee", rating.ratee.index());
                    span.set_attr("original", rating.value);
                    span.set_attr("weight", w);
                    span.set_attr("adjusted", rating.value * w);
                }
                rating.value *= w;
                self.total_adjusted_ratings += 1;
                rescaled_this_cycle += 1;
            }
            self.inner.record(rating);
        }
        drop(rescale_span);
        let update_start = Instant::now();
        // Scoped: the inner engine's own spans (e.g. `eigentrust_update`)
        // nest under this one.
        let update_span = tracer.child(trace_names::UPDATE);
        self.inner.end_cycle();
        drop(update_span);
        if let Some(t) = &self.telemetry {
            t.update_seconds
                .observe(update_start.elapsed().as_secs_f64());
            t.rescaled.add(rescaled_this_cycle);
            if t.sink.is_enabled() {
                for s in &suspicions {
                    t.sink.emit(Event::DetectionVerdict {
                        cycle: self.cycles_completed,
                        rater: s.rater.index() as u32,
                        ratee: s.ratee.index() as u32,
                        behaviors: s.reasons.iter().map(|r| r.code().to_string()).collect(),
                        omega_c: s.omega_c,
                        omega_s: s.omega_s,
                    });
                }
            }
        }
        self.ledger.end_interval();
        self.total_suspicions_flagged += suspicions.len() as u64;
        // Age the hysteresis memory and refresh it with this interval's
        // fresh suspicions.
        if self.config.suspicion_memory > 0 {
            self.remembered.retain(|_, ttl| {
                *ttl -= 1;
                *ttl > 0
            });
            for s in &suspicions {
                self.remembered
                    .insert((s.rater, s.ratee), self.config.suspicion_memory);
            }
        }
        self.last_suspicions = suspicions;
        // Already pair-sorted; becomes the cycle's published weight list
        // with a move instead of a drain-and-sort.
        self.last_weights = weights;
        self.cycles_completed += 1;
    }

    fn reputations(&self) -> &[f64] {
        self.inner.reputations()
    }

    fn name(&self) -> String {
        format!("{}+SocialTrust", self.inner.name())
    }

    fn total_adjusted_ratings(&self) -> u64 {
        self.total_adjusted_ratings
    }

    fn total_suspicions(&self) -> u64 {
        self.total_suspicions_flagged
    }

    fn reset_node(&mut self, node: NodeId) {
        self.ledger.reset_node(node);
        self.buffer.retain(|r| r.rater != node && r.ratee != node);
        self.remembered
            .retain(|&(rater, ratee), _| rater != node && ratee != node);
        self.inner.reset_node(node);
    }

    fn convergence(&self) -> Option<ConvergenceRecord> {
        self.inner.convergence()
    }

    /// Instruments every layer this decorator touches: detector trigger
    /// counters and latency, the Gaussian/update span histograms, the
    /// social context's coefficient cache, and the wrapped engine itself.
    /// Idempotent — re-attaching to the same bundle replaces handles with
    /// equivalents.
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = Some(DecoratorTelemetry::new(telemetry));
        self.ctx.write().attach_telemetry(telemetry);
        self.inner.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SocialContext;
    use socialtrust_reputation::prelude::{EBayModel, EigenTrust};
    use socialtrust_socnet::interest::InterestId;
    use socialtrust_socnet::relationship::Relationship;

    /// 8 nodes. 0 is pretrusted. 2,3 are "colluders": tight clique edge,
    /// heavy interaction, disjoint interests from each other. Everyone
    /// else has organic, moderate behavior with shared interests.
    fn context() -> SharedSocialContext {
        let mut ctx = SocialContext::new(8, 10);
        for pair in [(0u32, 1u32), (1, 4), (4, 5), (5, 0), (6, 7)] {
            ctx.graph_mut().add_relationship(
                NodeId(pair.0),
                NodeId(pair.1),
                Relationship::friendship(),
            );
        }
        // Organic interactions.
        for pair in [(0u32, 1u32), (1, 4), (4, 5), (5, 0), (6, 7)] {
            ctx.record_interaction(NodeId(pair.0), NodeId(pair.1), 2.0);
            ctx.record_interaction(NodeId(pair.1), NodeId(pair.0), 2.0);
        }
        // Shared interests among honest nodes.
        for n in [0u32, 1, 4, 5, 6, 7] {
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(1));
            ctx.profile_mut(NodeId(n))
                .declared_mut()
                .insert(InterestId(2));
        }
        // Colluders: heavily linked clique pair with huge interaction, no
        // declared interests in common with each other.
        for _ in 0..4 {
            ctx.graph_mut()
                .add_relationship(NodeId(2), NodeId(3), Relationship::friendship());
        }
        ctx.record_interaction(NodeId(2), NodeId(3), 50.0);
        ctx.record_interaction(NodeId(3), NodeId(2), 50.0);
        ctx.profile_mut(NodeId(2))
            .declared_mut()
            .insert(InterestId(8));
        ctx.profile_mut(NodeId(3))
            .declared_mut()
            .insert(InterestId(9));
        SharedSocialContext::new(SocialContext::new(0, 0)); // exercise ctor
        SharedSocialContext::new(ctx)
    }

    /// Organic traffic: honest pairs rate each other 1-2 times; the
    /// colluders additionally rate a couple of honest servers (so their
    /// rated sets have ≥ 2 entries and EigenTrust rows are non-trivial).
    fn organic(sys: &mut impl ReputationSystem) {
        for (a, b) in [(0u32, 1u32), (1, 4), (4, 5), (5, 0), (6, 7), (7, 6)] {
            sys.record(Rating::new(NodeId(a), NodeId(b), 1.0));
            sys.record(Rating::new(NodeId(a), NodeId(b), 1.0));
        }
        sys.record(Rating::new(NodeId(2), NodeId(1), 1.0));
        sys.record(Rating::new(NodeId(3), NodeId(4), 1.0));
        // Colluders receive one organic endorsement so EigenTrust can reach
        // them at all.
        sys.record(Rating::new(NodeId(0), NodeId(2), 1.0));
    }

    fn collusion(sys: &mut impl ReputationSystem, count: usize) {
        for _ in 0..count {
            sys.record(Rating::new(NodeId(2), NodeId(3), 1.0).non_transactional());
            sys.record(Rating::new(NodeId(3), NodeId(2), 1.0).non_transactional());
        }
    }

    #[test]
    fn flags_colluding_pair_and_not_honest_pairs() {
        let ctx = context();
        let mut sys = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
        );
        organic(&mut sys);
        collusion(&mut sys, 30);
        sys.end_cycle();
        let raters: Vec<NodeId> = sys.last_suspicions().iter().map(|s| s.rater).collect();
        assert!(raters.contains(&NodeId(2)), "suspicions: {raters:?}");
        assert!(raters.contains(&NodeId(3)));
        assert!(
            raters.iter().all(|r| r.index() >= 2 && r.index() <= 3),
            "honest raters must not be flagged: {raters:?}"
        );
    }

    #[test]
    fn adjustment_lowers_colluder_reputation_vs_unprotected() {
        let ctx = context();
        let mut plain = EigenTrust::with_defaults(8, &[NodeId(0)]);
        let mut guarded = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
        );
        for cycle in 0..3 {
            let _ = cycle;
            organic(&mut plain);
            collusion(&mut plain, 30);
            plain.end_cycle();
            organic(&mut guarded);
            collusion(&mut guarded, 30);
            guarded.end_cycle();
        }
        assert!(
            guarded.reputation(NodeId(3)) < plain.reputation(NodeId(3)),
            "guarded {} vs plain {}",
            guarded.reputation(NodeId(3)),
            plain.reputation(NodeId(3))
        );
        assert!(guarded.total_adjusted_ratings() > 0);
    }

    #[test]
    fn weights_are_recorded_and_bounded() {
        let ctx = context();
        let mut sys = WithSocialTrust::new(EBayModel::new(8), ctx, SocialTrustConfig::default());
        organic(&mut sys);
        collusion(&mut sys, 30);
        sys.end_cycle();
        assert!(!sys.last_weights().is_empty());
        for &(_, w) in sys.last_weights() {
            assert!((0.0..=1.0).contains(&w), "weight {w} out of [0,α]");
        }
    }

    #[test]
    fn honest_traffic_passes_untouched() {
        let ctx = context();
        let mut guarded =
            WithSocialTrust::new(EBayModel::new(8), ctx, SocialTrustConfig::default());
        let mut plain = EBayModel::new(8);
        organic(&mut guarded);
        organic(&mut plain);
        guarded.end_cycle();
        plain.end_cycle();
        assert_eq!(guarded.reputations(), plain.reputations());
        assert_eq!(guarded.total_adjusted_ratings(), 0);
        assert!(guarded.last_suspicions().is_empty());
    }

    #[test]
    fn name_reflects_wrapping() {
        let ctx = context();
        let sys = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
        );
        assert_eq!(sys.name(), "EigenTrust+SocialTrust");
        assert_eq!(sys.node_count(), 8);
    }

    #[test]
    fn ebay_with_socialtrust_shrinks_colluder_contribution() {
        let ctx = context();
        let mut guarded =
            WithSocialTrust::new(EBayModel::new(8), ctx, SocialTrustConfig::default());
        organic(&mut guarded);
        collusion(&mut guarded, 30);
        guarded.end_cycle();
        let mut plain = EBayModel::new(8);
        organic(&mut plain);
        collusion(&mut plain, 30);
        plain.end_cycle();
        assert!(
            guarded.inner().raw_score(NodeId(3)) < plain.raw_score(NodeId(3)),
            "guarded {} vs plain {}",
            guarded.inner().raw_score(NodeId(3)),
            plain.raw_score(NodeId(3))
        );
    }

    #[test]
    fn reset_node_clears_ledger_and_memory() {
        let ctx = context();
        let mut sys = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
        );
        organic(&mut sys);
        collusion(&mut sys, 30);
        sys.end_cycle();
        assert!(!sys.ledger().rated_by(NodeId(2)).is_empty());
        sys.reset_node(NodeId(2));
        assert!(sys.ledger().rated_by(NodeId(2)).is_empty());
        assert_eq!(sys.inner().local_satisfaction(NodeId(2), NodeId(3)), 0.0);
    }

    /// Fake inner engine: everyone at reputation 0 until the first cycle
    /// completes, then everyone at 0.5 — lets a test force B2's
    /// "low-reputed ratee" condition to lapse on cue.
    struct StepInner {
        reps: Vec<f64>,
        cycles: usize,
    }

    impl ReputationSystem for StepInner {
        fn node_count(&self) -> usize {
            self.reps.len()
        }
        fn record(&mut self, _rating: Rating) {}
        fn end_cycle(&mut self) {
            self.cycles += 1;
            let v = if self.cycles >= 1 { 0.5 } else { 0.0 };
            self.reps.iter_mut().for_each(|r| *r = v);
        }
        fn reputations(&self) -> &[f64] {
            &self.reps
        }
        fn name(&self) -> String {
            "step".into()
        }
    }

    /// Drive one cycle of collusion-only traffic between the clique pair
    /// (2, 3), plus light organic noise to keep F̄ realistic.
    fn hysteresis_cycle(sys: &mut WithSocialTrust<StepInner>) {
        organic(sys);
        for _ in 0..30 {
            sys.record(Rating::new(NodeId(2), NodeId(3), 1.0).non_transactional());
        }
        sys.end_cycle();
    }

    fn step_system(memory: u64) -> WithSocialTrust<StepInner> {
        // Context: colluders 2, 3 are a heavy clique pair — but share the
        // SAME declared interest so neither B1 nor B3 can fire; only B2
        // (close + low-reputed ratee) detects them, and it lapses the
        // moment the inner engine reports high reputations.
        let shared = context();
        {
            let mut ctx = shared.write();
            ctx.profile_mut(NodeId(2))
                .declared_mut()
                .insert(InterestId(9));
            ctx.profile_mut(NodeId(3))
                .declared_mut()
                .insert(InterestId(8));
        }
        let cfg = SocialTrustConfig {
            suspicion_memory: memory,
            ..SocialTrustConfig::default()
        };
        WithSocialTrust::new(
            StepInner {
                reps: vec![0.0; 8],
                cycles: 0,
            },
            shared,
            cfg,
        )
    }

    #[test]
    fn hysteresis_keeps_adjusting_after_b2_lapses() {
        // With memory: cycle 1 flags via B2 (everyone at rep 0); cycle 2 —
        // reputations at 0.5, B2 lapsed — the pair is STILL adjusted.
        let mut with_memory = step_system(3);
        hysteresis_cycle(&mut with_memory);
        assert!(
            with_memory
                .last_suspicions()
                .iter()
                .any(|s| s.rater == NodeId(2)),
            "cycle 1 must flag: {:?}",
            with_memory.last_suspicions()
        );
        hysteresis_cycle(&mut with_memory);
        assert!(
            with_memory
                .last_weights()
                .iter()
                .any(|((r, _), _)| *r == NodeId(2)),
            "hysteresis must keep adjusting the remembered pair: {:?}",
            with_memory.last_weights()
        );

        // Without memory and with B2 lapsed (rep 0.5 > T_R) the only
        // adjustments left are from behaviors that still match; B2-only
        // pairs escape. (2, 3) shares one interest here so B3 can still
        // fire; check the asymmetry through the remembered map instead:
        let mut without = step_system(0);
        hysteresis_cycle(&mut without);
        hysteresis_cycle(&mut without);
        let with_n = with_memory.last_weights().len();
        let without_n = without.last_weights().len();
        assert!(
            with_n >= without_n,
            "memory can only add adjustments: {with_n} vs {without_n}"
        );
    }

    #[test]
    fn hysteresis_expires_after_its_ttl() {
        let mut sys = step_system(2);
        hysteresis_cycle(&mut sys); // flags, remembers with TTL 2
                                    // Two quiet cycles: the memory ages out (quiet pairs are never
                                    // ghost-adjusted).
        organic(&mut sys);
        sys.end_cycle();
        organic(&mut sys);
        sys.end_cycle();
        // Pair rates once more, below the frequency threshold: no fresh
        // flag, and the memory is gone — no adjustment of this pair.
        organic(&mut sys);
        sys.record(Rating::new(NodeId(2), NodeId(3), 1.0).non_transactional());
        sys.end_cycle();
        assert!(
            !sys.last_weights()
                .iter()
                .any(|((r, t), _)| *r == NodeId(2) && *t == NodeId(3)),
            "{:?}",
            sys.last_weights()
        );
    }

    #[test]
    fn attached_telemetry_instruments_full_stack() {
        let telemetry = Telemetry::with_sink(EventSink::in_memory());
        let ctx = context();
        let mut sys = WithSocialTrust::new(
            EigenTrust::with_defaults(8, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
        );
        sys.attach_telemetry(&telemetry);
        organic(&mut sys);
        collusion(&mut sys, 30);
        sys.end_cycle();

        let snap = telemetry.registry().snapshot();
        assert!(snap.counter("detector_suspicions_total") > 0);
        assert_eq!(
            snap.counter("decorator_rescaled_ratings_total"),
            sys.total_adjusted_ratings(),
            "per-cycle rescale counter must mirror the lifetime total"
        );
        for name in ["gaussian_weight_seconds", "reputation_update_seconds"] {
            let hist = snap.histogram(name).expect(name);
            assert_eq!(hist.count, 1, "{name}: one cycle, one observation");
        }
        // The cycle's social reads were served from one CSR snapshot: the
        // first acquisition is a full rebuild, and the detector + Gaussian
        // passes share it (no second build for an unchanged context).
        assert_eq!(snap.counter("snapshot_rebuilds_total"), 1);
        assert_eq!(snap.counter("snapshot_patches_total"), 0);
        assert_eq!(
            snap.histogram("snapshot_rebuild_seconds")
                .expect("timed")
                .count,
            1
        );
        // EigenTrust convergence flows through the same bundle, and the
        // decorator surfaces the inner engine's record.
        let record = sys.convergence().expect("inner EigenTrust converged");
        assert_eq!(
            snap.gauge("eigentrust_iterations"),
            Some(record.iterations as f64)
        );

        // Detection verdicts were emitted with cycle index 0 and the
        // colluding raters' behavior codes.
        let verdicts: Vec<_> = telemetry
            .sink()
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::DetectionVerdict {
                    cycle,
                    rater,
                    behaviors,
                    ..
                } => Some((cycle, rater, behaviors)),
                _ => None,
            })
            .collect();
        assert_eq!(verdicts.len(), sys.last_suspicions().len());
        for (cycle, rater, behaviors) in &verdicts {
            assert_eq!(*cycle, 0);
            assert!(*rater == 2 || *rater == 3, "rater {rater}");
            assert!(!behaviors.is_empty());
            assert!(behaviors.iter().all(|b| b.starts_with('B')));
        }
    }

    #[test]
    fn ablation_modes_produce_weights() {
        for mode in [
            AdjustmentMode::ClosenessOnly,
            AdjustmentMode::SimilarityOnly,
            AdjustmentMode::Combined,
        ] {
            let ctx = context();
            let cfg = SocialTrustConfig {
                adjustment_mode: mode,
                ..SocialTrustConfig::default()
            };
            let mut sys = WithSocialTrust::new(EBayModel::new(8), ctx, cfg);
            organic(&mut sys);
            collusion(&mut sys, 30);
            sys.end_cycle();
            assert!(
                !sys.last_weights().is_empty(),
                "mode {mode:?} should flag the colluders"
            );
        }
    }
}
