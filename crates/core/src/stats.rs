//! Per-rater statistics over social coefficients.
//!
//! The Gaussian filter (Eqs. (6), (8), (9)) is centred on `Ω̄_i` — the
//! *average* closeness/similarity of rater `i` to the nodes it has rated —
//! with width `|maxΩ_i − minΩ_i|`. [`OmegaStats`] carries those three
//! numbers.

use serde::{Deserialize, Serialize};

/// Mean, maximum and minimum of a rater's social coefficient (closeness or
/// similarity) over the set of nodes it has rated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmegaStats {
    /// `Ω̄_i` — the centre of the Gaussian (the rater's "normal" value).
    pub mean: f64,
    /// `maxΩ_i`.
    pub max: f64,
    /// `minΩ_i`.
    pub min: f64,
}

impl OmegaStats {
    /// Compute stats from a slice of coefficient values.
    ///
    /// Non-finite values (NaN, ±∞) are skipped: a single NaN would
    /// otherwise poison the mean, and `f64::min`/`f64::max` silently drop
    /// NaN operands, so the mean and the range would disagree about which
    /// values they summarize. Returns `None` when no finite value remains
    /// (a rater with no usable history has no "normal" value; callers fall
    /// back to empirical system-wide stats).
    pub fn from_values(values: &[f64]) -> Option<OmegaStats> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count: usize = 0;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
            sum += v;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some(OmegaStats {
            mean: sum / count as f64,
            max,
            min,
        })
    }

    /// Build stats directly (e.g. the paper's empirical Overstock values:
    /// average/max/min interest similarity 0.423 / 1 / 0.13).
    pub fn new(mean: f64, max: f64, min: f64) -> OmegaStats {
        assert!(
            min <= mean && mean <= max,
            "require min ≤ mean ≤ max, got {min} / {mean} / {max}"
        );
        OmegaStats { mean, max, min }
    }

    /// The Gaussian width parameter `c = |maxΩ − minΩ|`.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max - self.min).abs()
    }

    /// A copy with the width shrunk by `scale` around the same mean.
    ///
    /// The paper sets `c = |maxΩ − minΩ|` — the full **range** of observed
    /// values. A Gaussian whose σ equals the full range is nearly flat over
    /// the data (a value at the extreme deviates by at most 1σ, weight
    /// ≥ e^(−1/2) ≈ 0.61), which would make the low-closeness /
    /// low-similarity behaviors (B1, B3) and the B4 competitor check almost
    /// free for colluders. The statistical range rule (`range ≈ 4σ`)
    /// recovers a usable σ; [`crate::config::SocialTrustConfig::width_scale`]
    /// (default 0.25) applies it.
    pub fn with_width_scale(&self, scale: f64) -> OmegaStats {
        assert!(scale > 0.0 && scale <= 1.0, "width scale must be in (0,1]");
        OmegaStats {
            mean: self.mean,
            max: self.mean + (self.max - self.mean) * scale,
            min: self.mean - (self.mean - self.min) * scale,
        }
    }

    /// The paper's empirical Overstock interest-similarity statistics for a
    /// pair of transaction peers: average 0.423, max 1, min 0.13
    /// (Section 4.2). Used when a rater has no history of its own.
    pub fn overstock_similarity() -> OmegaStats {
        OmegaStats::new(0.423, 1.0, 0.13)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_computes_mean_max_min() {
        let s = OmegaStats::from_values(&[0.2, 0.8, 0.5]).unwrap();
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert_eq!(s.max, 0.8);
        assert_eq!(s.min, 0.2);
        assert!((s.width() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn from_values_empty_is_none() {
        assert!(OmegaStats::from_values(&[]).is_none());
    }

    #[test]
    fn from_values_skips_non_finite() {
        // A stray NaN (e.g. from a degenerate upstream division) must not
        // poison the whole distribution.
        let clean = OmegaStats::from_values(&[0.2, 0.8]).unwrap();
        let noisy =
            OmegaStats::from_values(&[0.2, f64::NAN, 0.8, f64::INFINITY, f64::NEG_INFINITY])
                .unwrap();
        assert_eq!(noisy, clean);
        assert!(noisy.mean.is_finite() && noisy.width().is_finite());
    }

    #[test]
    fn from_values_all_non_finite_is_none() {
        assert!(OmegaStats::from_values(&[f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_value_has_zero_width() {
        let s = OmegaStats::from_values(&[0.7]).unwrap();
        assert_eq!(s.mean, 0.7);
        assert_eq!(s.width(), 0.0);
    }

    #[test]
    fn overstock_defaults_are_consistent() {
        let s = OmegaStats::overstock_similarity();
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    #[should_panic(expected = "min ≤ mean ≤ max")]
    fn new_rejects_inconsistent_order() {
        OmegaStats::new(0.5, 0.4, 0.6);
    }

    #[test]
    fn width_scale_shrinks_around_mean() {
        let s = OmegaStats::new(0.4, 1.0, 0.2);
        let scaled = s.with_width_scale(0.25);
        assert_eq!(scaled.mean, 0.4);
        assert!((scaled.width() - s.width() * 0.25).abs() < 1e-12);
        assert!((scaled.max - 0.55).abs() < 1e-12);
        assert!((scaled.min - 0.35).abs() < 1e-12);
        // Identity at scale 1.
        let same = s.with_width_scale(1.0);
        assert_eq!(same, s);
    }

    #[test]
    fn width_scale_preserves_ordering_invariant() {
        let s = OmegaStats::new(0.4, 0.4, 0.4);
        let scaled = s.with_width_scale(0.5);
        assert!(scaled.min <= scaled.mean && scaled.mean <= scaled.max);
        assert_eq!(scaled.width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "width scale")]
    fn width_scale_rejects_zero() {
        OmegaStats::new(0.4, 1.0, 0.0).with_width_scale(0.0);
    }
}
