//! The Gaussian reputation filter — Equations (5), (6), (8) and (9).
//!
//! The paper filters ratings from suspected colluders with the Gaussian
//! kernel
//!
//! ```text
//! Eq. (5):  f(x) = a · exp( −(x − b)² / (2c²) )
//! ```
//!
//! instantiated with `a = α` (the function parameter, set to 1 in the
//! evaluation), `b = Ω̄_i` (the rater's average coefficient over its rated
//! set — its "normal" value) and `c = |maxΩ_i − minΩ_i|` (its largest
//! observed spread). Ratings whose closeness/similarity deviates far from
//! the rater's normal value are damped toward zero; ratings at the normal
//! value pass through at weight `α`.
//!
//! Eq. (6) applies the filter on social closeness, Eq. (8) on interest
//! similarity, and Eq. (9) multiplies both exponents into one
//! two-dimensional filter (Figure 6): pairs in the extreme corners —
//! (high, high), (high, low), (low, high), (low, low) — are damped most.

use crate::stats::OmegaStats;

/// The raw Gaussian kernel of Eq. (5): `a·exp(−(x−b)²/(2c²))`.
///
/// Degenerate width (`c == 0`) is defined by the limit: `a` when `x == b`,
/// `0` otherwise. (A rater whose observed coefficients never varied treats
/// any deviation as maximally abnormal.)
pub fn gaussian(x: f64, a: f64, b: f64, c: f64) -> f64 {
    if c == 0.0 {
        return if x == b { a } else { 0.0 };
    }
    a * (-(x - b).powi(2) / (2.0 * c * c)).exp()
}

/// The one-dimensional adjustment weight of Eqs. (6)/(8):
/// `α·exp(−(Ω − Ω̄)²/(2·|maxΩ−minΩ|²))`.
///
/// The result is in `[0, α]`; multiply the suspected rating by it.
pub fn adjustment_weight(omega: f64, stats: &OmegaStats, alpha: f64) -> f64 {
    gaussian(omega, alpha, stats.mean, stats.width())
}

/// The two-dimensional combined weight of Eq. (9):
/// `α·exp(−[(Ωc−Ω̄c)²/(2wc²) + (Ωs−Ω̄s)²/(2ws²)])`.
///
/// Note this is *not* the product of two independent Eq. (6)/(8) weights
/// with separate `α`s — `α` is applied once, the exponents add.
pub fn combined_weight(
    omega_c: f64,
    stats_c: &OmegaStats,
    omega_s: f64,
    stats_s: &OmegaStats,
    alpha: f64,
) -> f64 {
    let term = |omega: f64, stats: &OmegaStats| -> f64 {
        let w = stats.width();
        if w == 0.0 {
            if omega == stats.mean {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (omega - stats.mean).powi(2) / (2.0 * w * w)
        }
    };
    let exponent = term(omega_c, stats_c) + term(omega_s, stats_s);
    if exponent.is_infinite() {
        0.0
    } else {
        alpha * (-exponent).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_peaks_at_center() {
        assert_eq!(gaussian(0.5, 1.0, 0.5, 0.2), 1.0);
        assert!(gaussian(0.4, 1.0, 0.5, 0.2) < 1.0);
        assert!(gaussian(0.6, 1.0, 0.5, 0.2) < 1.0);
    }

    #[test]
    fn kernel_is_symmetric_about_center() {
        let l = gaussian(0.3, 1.0, 0.5, 0.2);
        let r = gaussian(0.7, 1.0, 0.5, 0.2);
        assert!((l - r).abs() < 1e-12);
    }

    #[test]
    fn kernel_matches_closed_form() {
        // exp(-(0.9-0.5)²/(2·0.2²)) = exp(-0.16/0.08) = e^-2
        let v = gaussian(0.9, 1.0, 0.5, 0.2);
        assert!((v - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn kernel_scales_with_alpha() {
        let v1 = gaussian(0.6, 1.0, 0.5, 0.2);
        let v2 = gaussian(0.6, 2.0, 0.5, 0.2);
        assert!((v2 - 2.0 * v1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_width_is_indicator() {
        assert_eq!(gaussian(0.5, 1.0, 0.5, 0.0), 1.0);
        assert_eq!(gaussian(0.6, 1.0, 0.5, 0.0), 0.0);
    }

    #[test]
    fn adjustment_weight_uses_rater_stats() {
        let stats = OmegaStats::new(0.5, 0.9, 0.1); // width 0.8
        let at_mean = adjustment_weight(0.5, &stats, 1.0);
        assert_eq!(at_mean, 1.0);
        let deviant = adjustment_weight(0.0, &stats, 1.0);
        assert!(deviant < at_mean);
        assert!((deviant - (-(0.25f64) / (2.0 * 0.64)).exp()).abs() < 1e-12);
    }

    #[test]
    fn weight_monotonically_decreases_with_deviation() {
        let stats = OmegaStats::new(0.5, 1.0, 0.0);
        let mut prev = adjustment_weight(0.5, &stats, 1.0);
        for step in 1..=10 {
            let omega = 0.5 + step as f64 * 0.05;
            let w = adjustment_weight(omega, &stats, 1.0);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn weight_bounded_by_alpha() {
        let stats = OmegaStats::new(0.4, 0.8, 0.1);
        for i in 0..50 {
            let omega = i as f64 * 0.05;
            let w = adjustment_weight(omega, &stats, 1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn combined_weight_is_product_of_exponentials() {
        let sc = OmegaStats::new(0.5, 1.0, 0.0);
        let ss = OmegaStats::new(0.4, 0.9, 0.1); // width 0.8
        let w = combined_weight(0.8, &sc, 0.1, &ss, 1.0);
        let expected = (-((0.3f64).powi(2) / 2.0 + (0.3f64).powi(2) / (2.0 * 0.64))).exp();
        assert!((w - expected).abs() < 1e-12);
    }

    #[test]
    fn combined_weight_peaks_at_both_means() {
        let sc = OmegaStats::new(0.5, 1.0, 0.0);
        let ss = OmegaStats::new(0.4, 0.9, 0.1);
        assert_eq!(combined_weight(0.5, &sc, 0.4, &ss, 1.0), 1.0);
    }

    #[test]
    fn combined_weight_corners_are_damped_most() {
        // Figure 6: (Hc,Hs), (Hc,Ls), (Lc,Hs), (Lc,Ls) corners are reduced
        // most strongly.
        let sc = OmegaStats::new(0.5, 1.0, 0.0);
        let ss = OmegaStats::new(0.5, 1.0, 0.0);
        let centre = combined_weight(0.5, &sc, 0.5, &ss, 1.0);
        let edge = combined_weight(1.0, &sc, 0.5, &ss, 1.0);
        let corner = combined_weight(1.0, &sc, 1.0, &ss, 1.0);
        assert!(centre > edge);
        assert!(edge > corner);
    }

    #[test]
    fn combined_weight_degenerate_widths() {
        let degenerate = OmegaStats::new(0.5, 0.5, 0.5);
        let normal = OmegaStats::new(0.5, 1.0, 0.0);
        // At the degenerate mean, only the normal dimension matters.
        assert_eq!(combined_weight(0.5, &degenerate, 0.5, &normal, 1.0), 1.0);
        // Off the degenerate mean, the weight collapses to 0.
        assert_eq!(combined_weight(0.6, &degenerate, 0.5, &normal, 1.0), 0.0);
    }
}
