//! A Chord-style consistent-hash ring — the DHT substrate the paper's
//! reputation baselines assume (*"EigenTrust and PowerTrust depend on the
//! distributed hash tables to collect reputation ratings"*).
//!
//! The distributed SocialTrust deployment assigns each node's reputation
//! bookkeeping to a resource manager; with a DHT that assignment is
//! "successor of the node's key on the ring", and reaching the manager
//! costs O(log n) routing hops through finger tables. This module
//! implements exactly that slice of Chord:
//!
//! * keys: 64-bit hashes of node ids (SplitMix64);
//! * [`ChordRing::successor`] — the manager responsible for a key;
//! * [`ChordRing::lookup`] — greedy finger routing with a hop count, so
//!   the experiment harness can report realistic lookup costs.

use socialtrust_socnet::NodeId;

/// SplitMix64 — deterministic well-distributed key hash.
fn hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Clockwise distance from `a` to `b` on the 2^64 ring.
fn ring_distance(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

/// One ring member with its finger table.
#[derive(Debug, Clone)]
struct Member {
    key: u64,
    node: NodeId,
    /// `fingers[k]` = index (into the sorted member list) of the successor
    /// of `key + 2^k`.
    fingers: Vec<usize>,
}

/// A Chord-style ring over a set of manager nodes.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// Members sorted by ring key.
    members: Vec<Member>,
}

impl ChordRing {
    /// Build a ring from the manager node ids (finger tables included).
    ///
    /// # Panics
    /// Panics if `managers` is empty or contains duplicates.
    pub fn new(managers: &[NodeId]) -> Self {
        assert!(!managers.is_empty(), "a ring needs at least one member");
        let mut members: Vec<Member> = managers
            .iter()
            .map(|&node| Member {
                key: hash(node.0 as u64),
                node,
                fingers: Vec::new(),
            })
            .collect();
        members.sort_by_key(|m| m.key);
        for w in members.windows(2) {
            assert!(
                w[0].key != w[1].key,
                "hash collision between ring members {} and {}",
                w[0].node,
                w[1].node
            );
        }
        let keys: Vec<u64> = members.iter().map(|m| m.key).collect();
        for member in &mut members {
            let mut fingers = Vec::with_capacity(64);
            for k in 0..64u32 {
                let target = member.key.wrapping_add(1u64 << k);
                fingers.push(Self::successor_index(&keys, target));
            }
            member.fingers = fingers;
        }
        ChordRing { members }
    }

    /// Number of ring members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Index of the first member whose key is ≥ `key` (wrapping).
    fn successor_index(sorted_keys: &[u64], key: u64) -> usize {
        match sorted_keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                if i == sorted_keys.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// The manager responsible for `node`'s reputation record: the
    /// successor of `hash(node)` on the ring.
    pub fn successor(&self, node: NodeId) -> NodeId {
        let key = hash(node.0 as u64);
        let keys: Vec<u64> = self.members.iter().map(|m| m.key).collect();
        self.members[Self::successor_index(&keys, key)].node
    }

    /// Route a lookup for `target`'s record starting from ring member
    /// `from`, using greedy finger routing. Returns the responsible
    /// manager and the number of routing hops taken.
    ///
    /// # Panics
    /// Panics if `from` is not a ring member.
    pub fn lookup(&self, from: NodeId, target: NodeId) -> (NodeId, usize) {
        let key = hash(target.0 as u64);
        let keys: Vec<u64> = self.members.iter().map(|m| m.key).collect();
        let destination = Self::successor_index(&keys, key);
        let mut current = self
            .members
            .iter()
            .position(|m| m.node == from)
            .expect("lookup must start at a ring member");
        let mut hops = 0;
        // Greedy: jump through the finger that gets closest to (but not
        // past) the key's predecessor, then step to the successor.
        while current != destination {
            let cur_key = self.members[current].key;
            // If the destination is our direct successor region, one hop.
            let mut best = (current + 1) % self.members.len();
            let mut best_gain = ring_distance(cur_key, self.members[best].key);
            for &f in &self.members[current].fingers {
                let fk = self.members[f].key;
                let gain = ring_distance(cur_key, fk);
                // Must not overshoot the key (stay within (cur, key]).
                if gain != 0 && gain <= ring_distance(cur_key, key) && gain > best_gain {
                    best = f;
                    best_gain = gain;
                }
            }
            // Direct successor also must not overshoot unless it IS the
            // destination.
            current =
                if ring_distance(cur_key, self.members[best].key) <= ring_distance(cur_key, key) {
                    best
                } else {
                    destination // adjacent: final step
                };
            hops += 1;
            if hops > self.members.len() {
                unreachable!("routing loop: greedy Chord must terminate");
            }
            if current == destination {
                break;
            }
            // If we've reached the key's region, finish.
            if Self::successor_index(&keys, self.members[current].key) == destination
                && ring_distance(self.members[current].key, key) == 0
            {
                current = destination;
            }
        }
        (self.members[destination].node, hops)
    }

    /// Average lookup hops over every (member, target) pair in a sample —
    /// the metric the experiment harness reports.
    pub fn average_lookup_hops(&self, targets: &[NodeId]) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for m in &self.members {
            for &t in targets {
                total += self.lookup(m.node, t).1;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> ChordRing {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        ChordRing::new(&members)
    }

    #[test]
    fn successor_matches_linear_scan() {
        let r = ring(16);
        for t in 0..200u32 {
            let target = NodeId(t);
            let key = hash(t as u64);
            // Linear reference: member with minimal clockwise distance
            // from key.
            let expect = (0..16u32)
                .map(NodeId)
                .min_by_key(|m| ring_distance(key, hash(m.0 as u64)))
                .unwrap();
            assert_eq!(r.successor(target), expect, "target {t}");
        }
    }

    #[test]
    fn lookup_always_reaches_the_responsible_manager() {
        let r = ring(32);
        for from in 0..32u32 {
            for t in (0..100u32).step_by(7) {
                let (owner, _) = r.lookup(NodeId(from), NodeId(t));
                assert_eq!(owner, r.successor(NodeId(t)));
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let r = ring(128);
        let targets: Vec<NodeId> = (0..64u32).map(|i| NodeId(i * 13 + 5)).collect();
        let avg = r.average_lookup_hops(&targets);
        // log2(128) = 7; greedy finger routing should average well under
        // that and far under the linear 64.
        assert!(avg <= 8.0, "average hops {avg}");
        assert!(avg > 0.0);
    }

    #[test]
    fn lookup_from_owner_is_free() {
        let r = ring(8);
        let target = NodeId(77);
        let owner = r.successor(target);
        let (found, hops) = r.lookup(owner, target);
        assert_eq!(found, owner);
        assert_eq!(hops, 0);
    }

    #[test]
    fn single_member_owns_everything() {
        let r = ChordRing::new(&[NodeId(3)]);
        assert_eq!(r.member_count(), 1);
        for t in 0..10u32 {
            assert_eq!(r.successor(NodeId(t)), NodeId(3));
            assert_eq!(r.lookup(NodeId(3), NodeId(t)), (NodeId(3), 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ring_rejected() {
        ChordRing::new(&[]);
    }

    #[test]
    #[should_panic(expected = "ring member")]
    fn lookup_from_non_member_rejected() {
        let r = ring(4);
        r.lookup(NodeId(99), NodeId(0));
    }
}
