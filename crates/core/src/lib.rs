//! # socialtrust-core
//!
//! The SocialTrust mechanism itself — the primary contribution of
//! *Leveraging Social Networks to Combat Collusion in Reputation Systems
//! for Peer-to-Peer Networks* (Li, Shen & Sapra, IEEE TC 2012 / IPPS 2011).
//!
//! SocialTrust is a rating-adjustment layer over an arbitrary reputation
//! system. Per reputation-update interval it:
//!
//! 1. watches rating frequencies (`t⁺(i,j)`, `t⁻(i,j)`) through the
//!    [`socialtrust_reputation::rating::RatingLedger`],
//! 2. flags rater→ratee pairs matching the suspicious behaviors **B1–B4**
//!    learned from the Overstock trace ([`detector`]),
//! 3. rescales suspected ratings with a Gaussian filter centred on the
//!    rater's *normal* social closeness / interest similarity
//!    ([`gaussian`], Equations (5)–(9)),
//! 4. feeds the adjusted ratings to the wrapped reputation engine
//!    ([`decorator::WithSocialTrust`]).
//!
//! The [`manager`] module implements the paper's distributed execution
//! model (Section 4.3): per-node resource managers that track rating
//! frequencies for the nodes they manage and exchange social information
//! on demand, with message-overhead accounting.
//!
//! ## Example: wrapping EigenTrust
//!
//! ```
//! use socialtrust_core::prelude::*;
//! use socialtrust_reputation::prelude::*;
//! use socialtrust_socnet::prelude::*;
//!
//! let n = 4;
//! let ctx = SharedSocialContext::new(SocialContext::new(n, 4));
//! let inner = EigenTrust::with_defaults(n, &[NodeId(0)]);
//! let mut sys = WithSocialTrust::new(inner, ctx.clone(), SocialTrustConfig::default());
//!
//! // Colluders 2 and 3 hammer each other with positive ratings...
//! for _ in 0..30 {
//!     sys.record(Rating::new(NodeId(2), NodeId(3), 1.0));
//!     sys.record(Rating::new(NodeId(3), NodeId(2), 1.0));
//! }
//! // ...while an honest client rates its server once.
//! sys.record(Rating::new(NodeId(0), NodeId(1), 1.0));
//! sys.end_cycle();
//!
//! // The colluders' mutual ratings were damped: socially-distant,
//! // zero-interest-overlap, high-frequency pairs match behavior B1/B3.
//! assert!(sys.reputation(NodeId(3)) < sys.reputation(NodeId(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod decorator;
pub mod detector;
pub mod dht;
pub mod gaussian;
pub mod manager;
pub mod report;
pub mod stats;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::config::SocialTrustConfig;
    pub use crate::context::{SharedSocialContext, SocialContext};
    pub use crate::decorator::WithSocialTrust;
    pub use crate::detector::{Detector, Suspicion, SuspicionReason};
    pub use crate::dht::ChordRing;
    pub use crate::gaussian::{adjustment_weight, combined_weight, gaussian};
    pub use crate::manager::{ManagerNetwork, ManagerStats};
    pub use crate::report::{CycleReport, FlaggedPair};
    pub use crate::stats::OmegaStats;
}
