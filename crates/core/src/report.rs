//! Human-readable reporting of SocialTrust's detection activity.
//!
//! A reputation operator needs to see *why* a rating was adjusted; this
//! module turns one update interval's suspicions and weights into a
//! structured, printable [`CycleReport`] — per-behavior counts, the
//! most-damped pairs, and per-node involvement — without exposing internal
//! types.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use socialtrust_reputation::rating::PairKey;
use socialtrust_reputation::system::ReputationSystem;
use socialtrust_socnet::NodeId;

use crate::decorator::WithSocialTrust;
use crate::detector::{Suspicion, SuspicionReason};

/// One flagged pair in the report, with its applied weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlaggedPair {
    /// The suspected rater.
    pub rater: NodeId,
    /// The ratee of the suspect ratings.
    pub ratee: NodeId,
    /// Matched behaviors (B1–B4); empty for hysteresis-only adjustments.
    pub reasons: Vec<SuspicionReason>,
    /// Closeness at detection time.
    pub omega_c: f64,
    /// Similarity at detection time.
    pub omega_s: f64,
    /// The Gaussian weight applied to the pair's ratings this interval.
    pub weight: f64,
}

/// A summary of one reputation-update interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// All flagged pairs, hardest-damped first.
    pub pairs: Vec<FlaggedPair>,
    /// Count of matches per behavior pattern.
    pub behavior_counts: BTreeMap<String, usize>,
    /// Pairs adjusted purely through hysteresis (no fresh behavior match).
    pub hysteresis_only: usize,
}

impl CycleReport {
    /// Build a report from an interval's suspicions and applied weights.
    pub fn from_parts(suspicions: &[Suspicion], weights: &[(PairKey, f64)]) -> CycleReport {
        let by_pair: BTreeMap<PairKey, &Suspicion> =
            suspicions.iter().map(|s| ((s.rater, s.ratee), s)).collect();
        let mut pairs: Vec<FlaggedPair> = weights
            .iter()
            .map(
                |&((rater, ratee), weight)| match by_pair.get(&(rater, ratee)) {
                    Some(s) => FlaggedPair {
                        rater,
                        ratee,
                        reasons: s.reasons.clone(),
                        omega_c: s.omega_c,
                        omega_s: s.omega_s,
                        weight,
                    },
                    None => FlaggedPair {
                        rater,
                        ratee,
                        reasons: Vec::new(),
                        omega_c: f64::NAN,
                        omega_s: f64::NAN,
                        weight,
                    },
                },
            )
            .collect();
        pairs.sort_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"));
        let mut behavior_counts: BTreeMap<String, usize> = BTreeMap::new();
        for s in suspicions {
            for r in &s.reasons {
                *behavior_counts.entry(label(*r).to_string()).or_insert(0) += 1;
            }
        }
        let hysteresis_only = pairs.iter().filter(|p| p.reasons.is_empty()).count();
        CycleReport {
            pairs,
            behavior_counts,
            hysteresis_only,
        }
    }

    /// Build a report directly from a decorator's last interval.
    pub fn from_decorator<R: ReputationSystem>(sys: &WithSocialTrust<R>) -> CycleReport {
        CycleReport::from_parts(sys.last_suspicions(), sys.last_weights())
    }

    /// Total flagged pairs.
    pub fn flagged_count(&self) -> usize {
        self.pairs.len()
    }

    /// All distinct nodes appearing as suspected raters.
    pub fn suspected_raters(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.pairs.iter().map(|p| p.rater).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Short label for a behavior pattern.
fn label(reason: SuspicionReason) -> &'static str {
    match reason {
        SuspicionReason::B1DistantFrequentPositive => "B1 distant-frequent-positive",
        SuspicionReason::B2CloseLowReputed => "B2 close-low-reputed",
        SuspicionReason::B3DissimilarFrequentPositive => "B3 dissimilar-frequent-positive",
        SuspicionReason::B4SimilarFrequentNegative => "B4 similar-frequent-negative",
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SocialTrust interval report: {} flagged pair(s), {} via hysteresis",
            self.flagged_count(),
            self.hysteresis_only
        )?;
        for (behavior, count) in &self.behavior_counts {
            writeln!(f, "  {behavior}: {count}")?;
        }
        for p in self.pairs.iter().take(10) {
            if p.reasons.is_empty() {
                writeln!(
                    f,
                    "  {} -> {}: weight {:.6} (hysteresis)",
                    p.rater, p.ratee, p.weight
                )?;
            } else {
                let reasons: Vec<&str> = p.reasons.iter().map(|&r| label(r)).collect();
                writeln!(
                    f,
                    "  {} -> {}: weight {:.6} — {} (Ωc {:.2}, Ωs {:.2})",
                    p.rater,
                    p.ratee,
                    p.weight,
                    reasons.join(" + "),
                    p.omega_c,
                    p.omega_s
                )?;
            }
        }
        if self.pairs.len() > 10 {
            writeln!(f, "  … and {} more", self.pairs.len() - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suspicion(rater: u32, ratee: u32, reasons: Vec<SuspicionReason>) -> Suspicion {
        Suspicion {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            reasons,
            omega_c: 2.0,
            omega_s: 0.0,
        }
    }

    #[test]
    fn report_sorts_by_weight_and_counts_behaviors() {
        let suspicions = vec![
            suspicion(1, 2, vec![SuspicionReason::B1DistantFrequentPositive]),
            suspicion(
                3,
                4,
                vec![
                    SuspicionReason::B2CloseLowReputed,
                    SuspicionReason::B3DissimilarFrequentPositive,
                ],
            ),
        ];
        let weights = vec![
            ((NodeId(1), NodeId(2)), 0.5),
            ((NodeId(3), NodeId(4)), 0.001),
        ];
        let report = CycleReport::from_parts(&suspicions, &weights);
        assert_eq!(report.flagged_count(), 2);
        assert_eq!(report.pairs[0].rater, NodeId(3), "hardest-damped first");
        assert_eq!(report.behavior_counts["B2 close-low-reputed"], 1);
        assert_eq!(report.behavior_counts["B3 dissimilar-frequent-positive"], 1);
        assert_eq!(report.hysteresis_only, 0);
        assert_eq!(report.suspected_raters(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn hysteresis_adjustments_are_marked() {
        // A weight with no matching suspicion = hysteresis carry-over.
        let weights = vec![((NodeId(5), NodeId(6)), 0.01)];
        let report = CycleReport::from_parts(&[], &weights);
        assert_eq!(report.hysteresis_only, 1);
        assert!(report.pairs[0].reasons.is_empty());
        assert!(report.to_string().contains("hysteresis"));
    }

    #[test]
    fn display_is_complete_and_truncates() {
        let suspicions: Vec<Suspicion> = (0..15u32)
            .map(|i| suspicion(i, i + 20, vec![SuspicionReason::B4SimilarFrequentNegative]))
            .collect();
        let weights: Vec<(PairKey, f64)> = suspicions
            .iter()
            .map(|s| ((s.rater, s.ratee), 0.1))
            .collect();
        let report = CycleReport::from_parts(&suspicions, &weights);
        let text = report.to_string();
        assert!(text.contains("15 flagged pair(s)"));
        assert!(text.contains("B4 similar-frequent-negative: 15"));
        assert!(text.contains("… and 5 more"));
    }

    #[test]
    fn empty_interval_reports_cleanly() {
        let report = CycleReport::from_parts(&[], &[]);
        assert_eq!(report.flagged_count(), 0);
        assert!(report.suspected_raters().is_empty());
        assert!(report.to_string().contains("0 flagged"));
    }
}
