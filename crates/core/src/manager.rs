//! The distributed execution model of Section 4.3.
//!
//! *"In a reputation system, one or a number of trustworthy node(s)
//! function as resource manager(s). Each resource manager is responsible
//! for collecting the ratings and calculating the global reputation of
//! certain nodes."*
//!
//! A rating `r(i,j)` is routed to `M_j`, the manager of the ratee, which
//! tracks `t⁺(i,j)` / `t⁻(i,j)`. When `M_j` flags a rater `n_i` whose
//! social information it does not hold, it contacts `n_i`'s manager `M_i`
//! — one inter-manager message per cross-managed suspicion.
//!
//! The distributed execution is *result-equivalent* to the centralized one
//! (both see the same ratings and the same social information; only the
//! bookkeeping is partitioned), so [`ManagedSocialTrust`] delegates the
//! actual adjustment to [`WithSocialTrust`] and layers routing and
//! message-overhead accounting on top. This mirrors the paper, which
//! presents one mechanism with two deployment modes.

use serde::{Deserialize, Serialize};
use socialtrust_reputation::rating::Rating;
use socialtrust_reputation::system::{ConvergenceRecord, ReputationSystem};
use socialtrust_socnet::NodeId;
use socialtrust_telemetry::Telemetry;

use crate::config::SocialTrustConfig;
use crate::context::SharedSocialContext;
use crate::decorator::WithSocialTrust;
use crate::detector::Suspicion;

/// Identifier of a resource manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ManagerId(pub u32);

/// Cumulative overhead statistics of the distributed deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Ratings routed to managers (one route per rating).
    pub ratings_routed: u64,
    /// Inter-manager messages: `M_j → M_i` social-information requests for
    /// suspicions whose rater is managed elsewhere.
    pub info_request_messages: u64,
    /// Suspicions whose rater happened to be co-managed with the ratee
    /// (no message needed).
    pub local_suspicions: u64,
}

/// Static assignment of nodes to resource managers.
///
/// Assignment is by a DHT-style deterministic hash of the node id, so the
/// same node always maps to the same manager — exactly how a structured
/// P2P overlay would place reputation responsibility.
#[derive(Debug, Clone)]
pub struct ManagerNetwork {
    manager_count: usize,
    assignment: Vec<ManagerId>,
}

impl ManagerNetwork {
    /// Assign `node_count` nodes to `manager_count` managers.
    ///
    /// # Panics
    /// Panics if `manager_count == 0`.
    pub fn new(node_count: usize, manager_count: usize) -> Self {
        assert!(manager_count > 0, "need at least one manager");
        let assignment = (0..node_count)
            .map(|i| ManagerId((Self::hash(i as u64) % manager_count as u64) as u32))
            .collect();
        ManagerNetwork {
            manager_count,
            assignment,
        }
    }

    /// SplitMix64 — a tiny, well-distributed deterministic hash.
    fn hash(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// Number of managers.
    pub fn manager_count(&self) -> usize {
        self.manager_count
    }

    /// The manager responsible for `node`.
    pub fn manager_of(&self, node: NodeId) -> ManagerId {
        self.assignment[node.index()]
    }

    /// How many nodes each manager is responsible for.
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.manager_count];
        for m in &self.assignment {
            load[m.0 as usize] += 1;
        }
        load
    }

    /// Count the inter-manager messages a suspicion batch costs: one per
    /// suspicion whose rater and ratee live on different managers.
    pub fn cross_manager_suspicions(&self, suspicions: &[Suspicion]) -> (u64, u64) {
        let mut cross = 0;
        let mut local = 0;
        for s in suspicions {
            if self.manager_of(s.rater) != self.manager_of(s.ratee) {
                cross += 1;
            } else {
                local += 1;
            }
        }
        (cross, local)
    }
}

/// SocialTrust in its distributed deployment: same results as
/// [`WithSocialTrust`], plus manager routing and overhead accounting.
#[derive(Debug)]
pub struct ManagedSocialTrust<R> {
    inner: WithSocialTrust<R>,
    managers: ManagerNetwork,
    stats: ManagerStats,
}

impl<R: ReputationSystem> ManagedSocialTrust<R> {
    /// Wrap `engine` with SocialTrust, deployed over `manager_count`
    /// resource managers.
    pub fn new(
        engine: R,
        ctx: SharedSocialContext,
        config: SocialTrustConfig,
        manager_count: usize,
    ) -> Self {
        let node_count = engine.node_count();
        ManagedSocialTrust {
            inner: WithSocialTrust::new(engine, ctx, config),
            managers: ManagerNetwork::new(node_count, manager_count),
            stats: ManagerStats::default(),
        }
    }

    /// Cumulative overhead statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The manager assignment.
    pub fn managers(&self) -> &ManagerNetwork {
        &self.managers
    }

    /// The underlying centralized-equivalent decorator.
    pub fn socialtrust(&self) -> &WithSocialTrust<R> {
        &self.inner
    }
}

impl<R: ReputationSystem> ReputationSystem for ManagedSocialTrust<R> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn record(&mut self, rating: Rating) {
        // The rating is routed to the ratee's manager.
        self.stats.ratings_routed += 1;
        self.inner.record(rating);
    }

    fn end_cycle(&mut self) {
        self.inner.end_cycle();
        let (cross, local) = self
            .managers
            .cross_manager_suspicions(self.inner.last_suspicions());
        self.stats.info_request_messages += cross;
        self.stats.local_suspicions += local;
    }

    fn reputations(&self) -> &[f64] {
        self.inner.reputations()
    }

    fn name(&self) -> String {
        format!("{} (distributed)", self.inner.name())
    }

    fn total_adjusted_ratings(&self) -> u64 {
        self.inner.total_adjusted_ratings()
    }

    fn total_suspicions(&self) -> u64 {
        self.inner.total_suspicions()
    }

    fn reset_node(&mut self, node: NodeId) {
        self.inner.reset_node(node);
    }

    fn convergence(&self) -> Option<ConvergenceRecord> {
        self.inner.convergence()
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.inner.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SocialContext;
    use socialtrust_reputation::prelude::EigenTrust;
    use socialtrust_socnet::interest::InterestId;
    use socialtrust_socnet::relationship::Relationship;

    #[test]
    fn assignment_is_deterministic_and_total() {
        let m1 = ManagerNetwork::new(100, 7);
        let m2 = ManagerNetwork::new(100, 7);
        for i in 0..100u32 {
            assert_eq!(m1.manager_of(NodeId(i)), m2.manager_of(NodeId(i)));
            assert!((m1.manager_of(NodeId(i)).0 as usize) < 7);
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let m = ManagerNetwork::new(1000, 10);
        let load = m.load();
        assert_eq!(load.iter().sum::<usize>(), 1000);
        for &l in &load {
            assert!(
                (50..=200).contains(&l),
                "manager load {l} badly imbalanced: {load:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one manager")]
    fn zero_managers_rejected() {
        ManagerNetwork::new(10, 0);
    }

    #[test]
    fn cross_manager_counting() {
        let m = ManagerNetwork::new(10, 10);
        // Find one cross pair and one... with 10 managers for 10 nodes,
        // collisions are possible but unlikely to be total; just verify the
        // counts add up.
        let suspicions: Vec<Suspicion> = (0..5u32)
            .map(|i| Suspicion {
                rater: NodeId(i),
                ratee: NodeId(9 - i),
                reasons: vec![],
                omega_c: 0.0,
                omega_s: 0.0,
            })
            .collect();
        let (cross, local) = m.cross_manager_suspicions(&suspicions);
        assert_eq!(cross + local, 5);
    }

    /// Distributed deployment must produce bit-identical reputations to the
    /// centralized one.
    #[test]
    fn distributed_equals_centralized() {
        let build_ctx = || {
            let mut ctx = SocialContext::new(6, 10);
            ctx.graph_mut()
                .add_relationship(NodeId(0), NodeId(1), Relationship::friendship());
            ctx.record_interaction(NodeId(0), NodeId(1), 2.0);
            for n in [0u32, 1] {
                ctx.profile_mut(NodeId(n))
                    .declared_mut()
                    .insert(InterestId(1));
            }
            SharedSocialContext::new(ctx)
        };
        let feed = |sys: &mut dyn ReputationSystem| {
            for (a, b) in [(0u32, 1u32), (1, 0), (0, 4), (4, 5), (5, 4)] {
                sys.record(Rating::new(NodeId(a), NodeId(b), 1.0));
            }
            for _ in 0..25 {
                sys.record(Rating::new(NodeId(2), NodeId(3), 1.0));
                sys.record(Rating::new(NodeId(3), NodeId(2), 1.0));
            }
            sys.end_cycle();
        };
        let mut central = WithSocialTrust::new(
            EigenTrust::with_defaults(6, &[NodeId(0)]),
            build_ctx(),
            SocialTrustConfig::default(),
        );
        let mut distributed = ManagedSocialTrust::new(
            EigenTrust::with_defaults(6, &[NodeId(0)]),
            build_ctx(),
            SocialTrustConfig::default(),
            4,
        );
        feed(&mut central);
        feed(&mut distributed);
        assert_eq!(central.reputations(), distributed.reputations());
        assert_eq!(distributed.stats().ratings_routed, 55);
    }

    #[test]
    fn overhead_accounting_counts_suspicions() {
        let ctx = SharedSocialContext::new(SocialContext::new(6, 10));
        let mut sys = ManagedSocialTrust::new(
            EigenTrust::with_defaults(6, &[NodeId(0)]),
            ctx,
            SocialTrustConfig::default(),
            3,
        );
        // Organic + flood: colluders 2→3 have zero closeness & similarity
        // in the empty context ⇒ B1+B3 once frequency trips.
        for (a, b) in [(0u32, 1u32), (1, 0), (0, 4), (4, 5), (5, 4)] {
            sys.record(Rating::new(NodeId(a), NodeId(b), 1.0));
        }
        for _ in 0..25 {
            sys.record(Rating::new(NodeId(2), NodeId(3), 1.0));
            sys.record(Rating::new(NodeId(3), NodeId(2), 1.0));
        }
        sys.end_cycle();
        let st = sys.stats();
        assert_eq!(
            st.info_request_messages + st.local_suspicions,
            sys.socialtrust().last_suspicions().len() as u64
        );
        assert!(st.info_request_messages + st.local_suspicions >= 2);
        assert!(sys.name().contains("distributed"));
    }
}
